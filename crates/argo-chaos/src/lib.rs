//! # argo-chaos — deterministic fault injection for the toolflow
//!
//! The store's degradation contract ("every failure is a counted miss,
//! never a panic, never wrong data") and the daemon's isolation
//! contract ("every request ends in correct bytes or a structured
//! error frame") are only worth stating if something *injects* the
//! failures. This crate provides that something: a seeded, std-only
//! fault layer over `argo-store`'s injectable [`IoBackend`], so chaos
//! tests and the `e13_chaos` driver can replay real traffic while the
//! live I/O path fails underneath it — reproducibly.
//!
//! ## Determinism
//!
//! A [`FaultPlan`] is pure data: a seed plus per-mille rates for each
//! fault class. [`ChaosIo`] decides whether the *n*-th operation of a
//! given class on a given path faults by hashing
//! `(seed, class, path, n)` — no RNG state, no wall clock — so the
//! same plan over the same operation sequence injects the same faults,
//! and a failing chaos run reproduces from its seed alone. Under
//! concurrency the per-path operation counter still makes the *set* of
//! decisions per path deterministic even when thread interleaving
//! varies.
//!
//! ## Fault classes
//!
//! | class | injected as | store must degrade to |
//! |---|---|---|
//! | write error | `write_file` fails (create/write/fsync) | dropped write (`write_errors`) |
//! | torn write  | `write_file` silently persists a prefix | corrupt miss on next read, self-heal |
//! | rename error | publish `rename` fails | dropped write (`write_errors`) |
//! | read error  | `read` fails | plain miss, entry left intact |
//! | latency     | `read`/`write_file` sleep first | slower op, nothing else |
//! | panic       | `read` panics | caught at an isolation boundary (worker `catch_unwind`) |
//!
//! The panic class simulates a *bug* (not an I/O error) surfacing mid-
//! request; it exists to exercise the daemon's and the explorer's
//! panic isolation end-to-end, and is the one class the store itself
//! does not absorb. Plans used in store-level tests keep it at zero.
//!
//! Every injected fault is counted — locally (snapshot via
//! [`ChaosIo::injected`]) and on the process-global
//! [`argo_trace::metrics`] registry (`argo_chaos_*_injected_total`),
//! so a daemon's `metrics` request surfaces what chaos did to it.

use argo_store::{DirEntryInfo, IoBackend, RealIo};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A seeded, declarative fault-injection plan. Rates are per-mille
/// (0..=1000): `250` faults roughly every fourth decision. All-zero
/// rates make [`ChaosIo`] a counting passthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every fault decision; two plans with different
    /// seeds fault different operations at the same rates.
    pub seed: u64,
    /// Per-mille rate of failed writes (create/write/fsync errors).
    pub write_error: u16,
    /// Per-mille rate of torn writes: the file silently persists only
    /// a prefix of the bytes (a lying disk / power cut mid-write).
    pub torn_write: u16,
    /// Per-mille rate of failed publishes (`rename` errors).
    pub rename_error: u16,
    /// Per-mille rate of failed reads.
    pub read_error: u16,
    /// Per-mille rate of induced latency on reads and writes.
    pub latency: u16,
    /// How long an induced-latency operation sleeps.
    pub latency_sleep: Duration,
    /// Per-mille rate of injected panics on reads (simulated bugs, for
    /// exercising `catch_unwind` isolation — not absorbed by the
    /// store).
    pub panic: u16,
}

impl FaultPlan {
    /// A plan that injects nothing (counting passthrough).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            write_error: 0,
            torn_write: 0,
            rename_error: 0,
            read_error: 0,
            latency: 0,
            latency_sleep: Duration::from_millis(1),
            panic: 0,
        }
    }

    /// A moderate all-class I/O storm (no panics): every class at
    /// `rate` per mille. The shape chaos store-tests use.
    pub fn io_storm(seed: u64, rate: u16) -> FaultPlan {
        FaultPlan {
            write_error: rate,
            torn_write: rate,
            rename_error: rate,
            read_error: rate,
            latency: rate,
            ..FaultPlan::quiet(seed)
        }
    }
}

/// Snapshot of faults a [`ChaosIo`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedCounts {
    /// Failed writes injected.
    pub write_errors: u64,
    /// Torn (prefix-only) writes injected.
    pub torn_writes: u64,
    /// Failed renames injected.
    pub rename_errors: u64,
    /// Failed reads injected.
    pub read_errors: u64,
    /// Operations delayed.
    pub latencies: u64,
    /// Panics injected.
    pub panics: u64,
}

impl InjectedCounts {
    /// Total injected faults of every class.
    pub fn total(&self) -> u64 {
        self.write_errors
            + self.torn_writes
            + self.rename_errors
            + self.read_errors
            + self.latencies
            + self.panics
    }
}

/// Fault classes, used as decision-hash domains. Distinct tags keep
/// the classes' decisions independent: the same operation may draw a
/// latency but not a read error, and vice versa.
#[derive(Debug, Clone, Copy)]
enum Class {
    WriteError = 1,
    TornWrite = 2,
    RenameError = 3,
    ReadError = 4,
    Latency = 5,
    Panic = 6,
}

/// An [`IoBackend`] that injects the faults of a [`FaultPlan`] in
/// front of [`RealIo`]. See the [module docs](self) for the
/// determinism scheme and the per-class semantics.
#[derive(Debug)]
pub struct ChaosIo {
    plan: FaultPlan,
    inner: RealIo,
    /// Per-(class, path) operation counters: the *n*-th decision for a
    /// (class, path) pair is a pure function of `(seed, class, path,
    /// n)`.
    ops: Mutex<std::collections::HashMap<(u8, PathBuf), u64>>,
    write_errors: AtomicU64,
    torn_writes: AtomicU64,
    rename_errors: AtomicU64,
    read_errors: AtomicU64,
    latencies: AtomicU64,
    panics: AtomicU64,
}

fn fnv1a_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ChaosIo {
    /// A chaos backend executing `plan` over the real filesystem.
    pub fn new(plan: FaultPlan) -> ChaosIo {
        ChaosIo {
            plan,
            inner: RealIo,
            ops: Mutex::new(std::collections::HashMap::new()),
            write_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            rename_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            latencies: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// The plan this backend executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of everything injected so far.
    pub fn injected(&self) -> InjectedCounts {
        InjectedCounts {
            write_errors: self.write_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            rename_errors: self.rename_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            latencies: self.latencies.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    /// The stable identity a fault decision is keyed on. Entry files
    /// have content-derived, run-stable names; in-flight tmp files
    /// carry a process-global sequence number that would differ
    /// between otherwise identical runs, so they all collapse to one
    /// key — the per-key operation counter supplies the variation.
    fn decision_key(path: &Path) -> PathBuf {
        if path.extension().is_some_and(|e| e == "tmp") {
            PathBuf::from("tmp")
        } else {
            path.file_name().map(PathBuf::from).unwrap_or_default()
        }
    }

    /// Deterministic fault decision: does the next operation of
    /// `class` on `path` fault at `rate` per mille?
    fn decide(&self, class: Class, path: &Path, rate: u16) -> bool {
        if rate == 0 {
            return false;
        }
        let key = Self::decision_key(path);
        let n = {
            let mut ops = self.ops.lock().unwrap();
            let n = ops.entry((class as u8, key.clone())).or_insert(0);
            *n += 1;
            *n - 1
        };
        let mut h = fnv1a_step(0xcbf2_9ce4_8422_2325, &self.plan.seed.to_le_bytes());
        h = fnv1a_step(h, &[class as u8]);
        h = fnv1a_step(h, key.as_os_str().as_encoded_bytes());
        h = fnv1a_step(h, &n.to_le_bytes());
        h % 1000 < u64::from(rate)
    }

    fn injected_err(&self, what: &str, counter: &AtomicU64, metric: &str) -> io::Error {
        counter.fetch_add(1, Ordering::Relaxed);
        argo_trace::metrics().counter(metric).inc();
        io::Error::other(format!("chaos: injected {what}"))
    }

    fn maybe_sleep(&self, path: &Path) {
        if self.decide(Class::Latency, path, self.plan.latency) {
            self.latencies.fetch_add(1, Ordering::Relaxed);
            argo_trace::metrics()
                .counter("argo_chaos_latency_injected_total")
                .inc();
            std::thread::sleep(self.plan.latency_sleep);
        }
    }
}

impl IoBackend for ChaosIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.decide(Class::Panic, path, self.plan.panic) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            argo_trace::metrics()
                .counter("argo_chaos_panic_injected_total")
                .inc();
            panic!("chaos: injected panic reading {}", path.display());
        }
        self.maybe_sleep(path);
        if self.decide(Class::ReadError, path, self.plan.read_error) {
            return Err(self.injected_err(
                "read error",
                &self.read_errors,
                "argo_chaos_read_errors_injected_total",
            ));
        }
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.maybe_sleep(path);
        if self.decide(Class::WriteError, path, self.plan.write_error) {
            // Leave the partial residue a real failed write leaves.
            let _ = self.inner.write_file(path, &bytes[..bytes.len() / 3]);
            return Err(self.injected_err(
                "write/fsync error",
                &self.write_errors,
                "argo_chaos_write_errors_injected_total",
            ));
        }
        if self.decide(Class::TornWrite, path, self.plan.torn_write) {
            // A lying disk: report success, persist only a prefix.
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            argo_trace::metrics()
                .counter("argo_chaos_torn_writes_injected_total")
                .inc();
            return self.inner.write_file(path, &bytes[..bytes.len() * 2 / 3]);
        }
        self.inner.write_file(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.decide(Class::RenameError, to, self.plan.rename_error) {
            return Err(self.injected_err(
                "rename error",
                &self.rename_errors,
                "argo_chaos_rename_errors_injected_total",
            ));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        self.inner.read_dir(path)
    }

    fn set_modified(&self, path: &Path, t: std::time::SystemTime) -> io::Result<()> {
        self.inner.set_modified(path, t)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::Fingerprint;
    use argo_store::Store;
    use std::sync::Arc;

    static TEST_SEQ: AtomicU64 = AtomicU64::new(0);

    struct TestDir(PathBuf);

    impl TestDir {
        fn new() -> TestDir {
            let seq = TEST_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("argo-chaos-test-{}-{seq}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn payload(i: u64) -> Vec<u64> {
        (0..32).map(|j| i * 1000 + j).collect()
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let td = TestDir::new();
        let io = Arc::new(ChaosIo::new(FaultPlan::quiet(1)));
        let store = Store::open_with_io(&td.0, io.clone()).unwrap();
        for i in 0..16u64 {
            store.put_value("unit", Fingerprint(i), &payload(i));
        }
        for i in 0..16u64 {
            assert_eq!(
                store.get_value::<Vec<u64>>("unit", Fingerprint(i)),
                Some(payload(i))
            );
        }
        assert_eq!(io.injected().total(), 0);
        assert_eq!(store.counters().misses, 0);
    }

    /// The core contract: under an all-class I/O storm, every read
    /// returns either the exact original bytes or a miss — never wrong
    /// data, never a panic — and every injected fault shows up as a
    /// counted degradation, not silence.
    #[test]
    fn every_injected_fault_degrades_to_a_counted_miss() {
        let td = TestDir::new();
        let io = Arc::new(ChaosIo::new(FaultPlan::io_storm(42, 200)));
        let store = Store::open_with_io(&td.0, io.clone()).unwrap();
        let keys = 200u64;
        for i in 0..keys {
            store.put_value("unit", Fingerprint(i), &payload(i));
        }
        let mut hits = 0u64;
        let mut misses = 0u64;
        for i in 0..keys {
            match store.get_value::<Vec<u64>>("unit", Fingerprint(i)) {
                Some(v) => {
                    assert_eq!(v, payload(i), "wrong data for key {i}");
                    hits += 1;
                }
                None => misses += 1,
            }
        }
        let injected = io.injected();
        assert!(injected.write_errors > 0, "{injected:?}");
        assert!(injected.torn_writes > 0, "{injected:?}");
        assert!(injected.rename_errors > 0, "{injected:?}");
        assert!(injected.read_errors > 0, "{injected:?}");
        assert!(injected.latencies > 0, "{injected:?}");
        assert_eq!(injected.panics, 0);
        let c = store.counters();
        // Dropped writes were counted; torn writes surfaced as corrupt
        // misses and self-healed; read errors as plain misses.
        assert_eq!(
            c.write_errors,
            injected.write_errors + injected.rename_errors,
            "{c:?} vs {injected:?}"
        );
        assert!(c.corrupt > 0, "{c:?}");
        assert_eq!(hits + misses, keys);
        assert_eq!(c.hits, hits);
        assert!(misses > 0 && hits > 0, "{hits} hits / {misses} misses");
    }

    /// After a faulty run, a clean handle over the same directory sees
    /// only byte-identical survivors: chaos may lose entries, never
    /// alter them.
    #[test]
    fn survivors_replay_byte_identical_on_a_clean_handle() {
        let td = TestDir::new();
        {
            let io = Arc::new(ChaosIo::new(FaultPlan::io_storm(7, 300)));
            let store = Store::open_with_io(&td.0, io).unwrap();
            for i in 0..100u64 {
                store.put_value("unit", Fingerprint(i), &payload(i));
            }
            // Reads under chaos already self-heal torn survivors.
            for i in 0..100u64 {
                let _ = store.get_value::<Vec<u64>>("unit", Fingerprint(i));
            }
        }
        let clean = Store::open(&td.0).unwrap();
        let mut survivors = 0;
        for i in 0..100u64 {
            if let Some(v) = clean.get_value::<Vec<u64>>("unit", Fingerprint(i)) {
                assert_eq!(v, payload(i), "key {i} replayed wrong bytes");
                survivors += 1;
            }
        }
        assert!(survivors > 0, "storm at 30% should leave survivors");
        // Anything corrupt was already healed under chaos; the clean
        // handle may still sweep entries torn on their *first* read.
        let tmp_orphans = std::fs::read_dir(td.0.join("tmp")).unwrap().count();
        assert_eq!(clean.fsck(false).problems() as usize, tmp_orphans);
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let td = TestDir::new();
            let io = Arc::new(ChaosIo::new(FaultPlan::io_storm(seed, 250)));
            let store = Store::open_with_io(&td.0, io.clone()).unwrap();
            for i in 0..64u64 {
                store.put_value("unit", Fingerprint(i), &payload(i));
                let _ = store.get_value::<Vec<u64>>("unit", Fingerprint(i));
            }
            io.injected()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed, same operation sequence, same faults");
        let c = run(12);
        assert_ne!(a, c, "different seed faults differently");
    }

    #[test]
    fn injected_panic_reaches_the_caller() {
        let td = TestDir::new();
        let plan = FaultPlan {
            panic: 1000,
            ..FaultPlan::quiet(3)
        };
        let store = Store::open_with_io(&td.0, Arc::new(ChaosIo::new(plan))).unwrap();
        store.put_value("unit", Fingerprint(1), &payload(1));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.get_value::<Vec<u64>>("unit", Fingerprint(1))
        }));
        let err = caught.expect_err("panic class must not be absorbed");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("chaos: injected panic"), "{msg}");
    }

    #[test]
    fn latency_class_slows_reads_down() {
        let td = TestDir::new();
        let plan = FaultPlan {
            latency: 1000,
            latency_sleep: Duration::from_millis(5),
            ..FaultPlan::quiet(4)
        };
        let io = Arc::new(ChaosIo::new(plan));
        let store = Store::open_with_io(&td.0, io.clone()).unwrap();
        store.put_value("unit", Fingerprint(1), &payload(1));
        let t0 = std::time::Instant::now();
        assert_eq!(
            store.get_value::<Vec<u64>>("unit", Fingerprint(1)),
            Some(payload(1))
        );
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert!(io.injected().latencies >= 2, "write and read both slept");
    }
}
