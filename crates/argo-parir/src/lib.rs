//! # argo-parir — explicitly parallel program model
//!
//! "The result of the scheduling/mapping stage is used to transform the
//! initial program representation into an explicit parallel program model,
//! in which the synchronizations are made explicit, and the final memory
//! address mapping of the variables and the buffers is obtained." (paper
//! § II-C)
//!
//! A [`ParallelProgram`] bundles:
//!
//! * per-core [`CorePlan`]s — ordered task executions interleaved with
//!   explicit [`Step::Signal`]/[`Step::Wait`] operations, one signal per
//!   cross-core dependence edge;
//! * the final [`argo_adl::MemoryMap`] assigning every variable to a
//!   memory space and address ([`mem_assign`]);
//! * the privatized-scalar set the executor must honour.
//!
//! The platform simulator (`argo-sim`) executes this object; the
//! system-level WCET analysis (`argo-wcet`) analyses it. [`emit`] renders
//! it as per-core pseudo-C for inspection.

pub mod emit;
pub mod mem_assign;

use argo_adl::{CoreId, MemoryMap, Platform};
use argo_htg::Htg;
use argo_ir::ast::Program;
use argo_sched::{Schedule, TaskGraph};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a synchronization signal (one per cross-core edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub usize);

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig{}", self.0)
    }
}

/// One step of a core's static plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute task `task` (index into the [`TaskGraph`]).
    Exec {
        /// Task index.
        task: usize,
    },
    /// Block until `signal` has been raised.
    Wait {
        /// The signal to wait for.
        signal: SignalId,
        /// The task whose completion this signal conveys (for reports).
        producer: usize,
    },
    /// Raise `signal` (after the producing task finished and its data is
    /// visible).
    Signal {
        /// The signal to raise.
        signal: SignalId,
        /// The consuming task (for reports).
        consumer: usize,
    },
}

/// The static plan of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorePlan {
    /// The core this plan runs on.
    pub core: CoreId,
    /// Ordered steps.
    pub steps: Vec<Step>,
}

/// A fully constructed explicitly parallel program.
#[derive(Debug, Clone)]
pub struct ParallelProgram {
    /// The (transformed) IR the tasks refer to.
    pub program: Program,
    /// Entry function name.
    pub entry: String,
    /// The task graph that was scheduled.
    pub graph: TaskGraph,
    /// The schedule (mapping + times).
    pub schedule: Schedule,
    /// Per-core plans with explicit synchronization.
    pub plans: Vec<CorePlan>,
    /// Final variable placement.
    pub memory_map: MemoryMap,
    /// Scalars the executor must privatize per task (reset to their
    /// program-initial value before each task executes).
    pub privatized: BTreeSet<String>,
    /// Statement ids of each task (indexed like [`ParallelProgram::graph`]).
    pub task_stmts: Vec<Vec<argo_ir::StmtId>>,
    /// Total number of signals allocated.
    pub signal_count: usize,
}

/// Error from parallel-model construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ParirError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel model error: {}", self.msg)
    }
}

impl std::error::Error for ParirError {}

impl ParallelProgram {
    /// Builds the explicit parallel model from the scheduling artefacts.
    ///
    /// One signal is allocated per dependence edge whose endpoints are on
    /// different cores; the producer raises it immediately after the task,
    /// the consumer waits immediately before. The memory map is built by
    /// [`mem_assign::assign`].
    ///
    /// # Errors
    ///
    /// Returns [`ParirError`] if the schedule and graph disagree, or if
    /// memory assignment overflows the platform.
    pub fn build(
        program: Program,
        htg: &Htg,
        graph: TaskGraph,
        schedule: Schedule,
        platform: &Platform,
    ) -> Result<ParallelProgram, ParirError> {
        if schedule.assignment.len() != graph.len() {
            return Err(ParirError {
                msg: format!(
                    "schedule covers {} tasks but graph has {}",
                    schedule.assignment.len(),
                    graph.len()
                ),
            });
        }
        let entry = htg.function.clone();
        // Signals for cross-core edges.
        let mut signals: Vec<(usize, usize, SignalId)> = Vec::new(); // (from, to, id)
        for &(f, t, _) in &graph.edges {
            if schedule.assignment[f] != schedule.assignment[t] {
                let id = SignalId(signals.len());
                signals.push((f, t, id));
            }
        }
        // Per-core ordered tasks.
        let mut plans = Vec::with_capacity(platform.core_count());
        for c in 0..platform.core_count() {
            let core = CoreId(c);
            let mut steps = Vec::new();
            for t in schedule.tasks_on(core) {
                // Waits first (one per incoming cross-core edge).
                for &(f, to, id) in &signals {
                    if to == t {
                        steps.push(Step::Wait {
                            signal: id,
                            producer: f,
                        });
                    }
                }
                steps.push(Step::Exec { task: t });
                for &(from, to, id) in &signals {
                    if from == t {
                        steps.push(Step::Signal {
                            signal: id,
                            consumer: to,
                        });
                    }
                }
            }
            plans.push(CorePlan { core, steps });
        }
        let memory_map = mem_assign::assign(&program, htg, &graph, &schedule, platform)
            .map_err(|e| ParirError { msg: e })?;
        let task_stmts = graph
            .htg_ids
            .iter()
            .map(|&tid| htg.task(tid).stmts.clone())
            .collect();
        Ok(ParallelProgram {
            program,
            entry,
            graph,
            schedule,
            plans,
            memory_map,
            privatized: htg.privatizable.clone(),
            task_stmts,
            signal_count: signals.len(),
        })
    }

    /// Checks plan sanity: every task appears exactly once, every signal
    /// is raised exactly once and awaited exactly once.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut exec_seen = vec![0usize; self.graph.len()];
        let mut raised = vec![0usize; self.signal_count];
        let mut awaited = vec![0usize; self.signal_count];
        for plan in &self.plans {
            for s in &plan.steps {
                match s {
                    Step::Exec { task } => exec_seen[*task] += 1,
                    Step::Signal { signal, .. } => raised[signal.0] += 1,
                    Step::Wait { signal, .. } => awaited[signal.0] += 1,
                }
            }
        }
        for (t, &n) in exec_seen.iter().enumerate() {
            if n != 1 {
                return Err(format!("task {t} executed {n} times"));
            }
        }
        for s in 0..self.signal_count {
            if raised[s] != 1 || awaited[s] != 1 {
                return Err(format!(
                    "signal {s} raised {} times, awaited {} times",
                    raised[s], awaited[s]
                ));
            }
        }
        Ok(())
    }

    /// The number of cross-core synchronizations — a headline metric of
    /// the parallelization ("the number of shared resource contenders …
    /// is reduced during parallelization", § II).
    pub fn sync_count(&self) -> usize {
        self.signal_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_htg::{extract::extract, Granularity};
    use argo_ir::parse::parse_program;
    use argo_sched::list::ListScheduler;
    use argo_sched::{SchedCtx, Scheduler};
    use std::collections::BTreeMap;

    const PIPE: &str = r#"
        void main(real a[64], real b[64], real c[64], real d[64]) {
            int i;
            for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
            for (i = 0; i < 64; i = i + 1) { c[i] = a[i] + 1.0; }
            for (i = 0; i < 64; i = i + 1) { d[i] = b[i] + c[i]; }
        }
    "#;

    fn build_pipe(cores: usize) -> ParallelProgram {
        let program = parse_program(PIPE).unwrap();
        let htg = extract(&program, "main", Granularity::Loop).unwrap();
        let costs: BTreeMap<_, _> = htg.top_level.iter().map(|&t| (t, 1000u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = argo_adl::Platform::xentium_manycore(cores);
        let ctx = SchedCtx::new(&platform);
        let schedule = ListScheduler::new().schedule(&graph, &ctx);
        ParallelProgram::build(program, &htg, graph, schedule, &platform).unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let pp = build_pipe(2);
        pp.validate().unwrap();
        assert_eq!(pp.plans.len(), 2);
    }

    #[test]
    fn single_core_has_no_signals() {
        let pp = build_pipe(1);
        pp.validate().unwrap();
        assert_eq!(pp.sync_count(), 0);
        let execs: Vec<usize> = pp.plans[0]
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Exec { task } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(execs.len(), pp.graph.len());
    }

    #[test]
    fn cross_core_edges_get_signals() {
        let pp = build_pipe(2);
        let cross = pp
            .graph
            .edges
            .iter()
            .filter(|&&(f, t, _)| pp.schedule.assignment[f] != pp.schedule.assignment[t])
            .count();
        assert_eq!(pp.sync_count(), cross);
    }

    #[test]
    fn induction_variable_is_privatized() {
        let pp = build_pipe(2);
        assert!(pp.privatized.contains("i"));
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        let program = parse_program(PIPE).unwrap();
        let htg = extract(&program, "main", Granularity::Loop).unwrap();
        let costs: BTreeMap<_, _> = htg.top_level.iter().map(|&t| (t, 10u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = argo_adl::Platform::xentium_manycore(2);
        let bad = Schedule {
            assignment: vec![CoreId(0)],
            start: vec![0],
            finish: vec![10],
        };
        assert!(ParallelProgram::build(program, &htg, graph, bad, &platform).is_err());
    }
}
