//! Final memory address mapping of variables and buffers (§ II-C).
//!
//! Placement policy:
//!
//! * scalars live in core-local storage ([`MemSpace::Local`]) — they are
//!   either task-local, privatized, or communicated through signal
//!   payloads;
//! * arrays accessed by tasks on **more than one core** must be visible
//!   everywhere: they go to [`MemSpace::Shared`] (contended);
//! * arrays accessed from exactly **one** core are scratchpad candidates
//!   for that core; the WCET-directed knapsack (`argo-transform::spm`,
//!   paper ref \[6\]) selects the subset maximising saved worst-case cycles,
//!   the rest spills to shared memory;
//! * every placed variable gets a base address (bump allocation per
//!   space) so the cache model has concrete addresses.

use argo_adl::{CoreId, MemSpace, MemoryMap, Placement, Platform};
use argo_htg::accesses::AnnotateCtx;
use argo_htg::Htg;
use argo_ir::ast::Program;
use argo_ir::validate::symbol_table;
use argo_sched::{Schedule, TaskGraph};
use argo_transform::spm::{allocate_exact, SpmCandidate};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the memory map for a scheduled program.
///
/// # Errors
///
/// Returns a message if placements overflow the platform capacities
/// (cannot normally happen: spills go to shared memory, which is checked
/// last).
pub fn assign(
    program: &Program,
    htg: &Htg,
    graph: &TaskGraph,
    schedule: &Schedule,
    platform: &Platform,
) -> Result<MemoryMap, String> {
    let f = program
        .function(&htg.function)
        .ok_or_else(|| format!("no function `{}`", htg.function))?;
    let symbols = symbol_table(f);

    // Which cores touch each array? Use task read/write sets.
    let mut cores_of: BTreeMap<&str, BTreeSet<CoreId>> = BTreeMap::new();
    for (idx, &tid) in graph.htg_ids.iter().enumerate() {
        let task = htg.task(tid);
        let core = schedule.assignment[idx];
        for v in task.reads.union(&task.writes) {
            if symbols.get(v).is_some_and(|t| t.is_array()) {
                cores_of.entry(v.as_str()).or_default().insert(core);
            }
        }
    }
    // When the graph carries no HTG ids (synthetic), fall back to all
    // arrays shared.
    if graph.htg_ids.is_empty() {
        for (v, ty) in &symbols {
            if ty.is_array() {
                cores_of.entry(v.as_str()).or_default().insert(CoreId(0));
            }
        }
    }

    // Worst-case access counts per array per core (gain estimation).
    let mut access_gain: BTreeMap<(&str, CoreId), u64> = BTreeMap::new();
    {
        // Ensure annotation exists; re-annotate into a scratch HTG if the
        // caller did not run the pass (counts default to footprint).
        let mut counts_available = htg.tasks.iter().any(|t| !t.access_counts.is_empty());
        let scratch;
        let htg_ref: &Htg = if counts_available {
            htg
        } else {
            let mut h = htg.clone();
            argo_htg::accesses::annotate(&mut h, program, &AnnotateCtx::with_default_bound(16));
            scratch = h;
            counts_available = true;
            &scratch
        };
        let _ = counts_available;
        for (idx, &tid) in graph.htg_ids.iter().enumerate() {
            let task = htg_ref.task(tid);
            let core = schedule.assignment[idx];
            for (v, n) in &task.access_counts {
                if symbols.get(v).is_some_and(|t| t.is_array()) {
                    *access_gain
                        .entry((leak_name(v, &symbols), core))
                        .or_insert(0) += n;
                }
            }
        }
    }

    let mut map = MemoryMap::new();
    let mut shared_cursor = 0u64;

    // Partition arrays into single-core (SPM candidates per core) and
    // multi-core (shared).
    let mut spm_candidates: BTreeMap<CoreId, Vec<SpmCandidate>> = BTreeMap::new();
    let mut shared_arrays: Vec<&str> = Vec::new();
    for (v, ty) in &symbols {
        if !ty.is_array() {
            continue; // scalars default to Local via MemoryMap::space_of
        }
        let owners = cores_of.get(v.as_str()).cloned().unwrap_or_default();
        if owners.len() == 1 {
            let core = *owners.iter().next().expect("len 1");
            let accesses = access_gain.get(&(v.as_str(), core)).copied().unwrap_or(1);
            let shared_cost = platform.worst_case_shared_access(core, platform.core_count());
            let spm_cost = platform.core(core).spm_latency;
            let gain = accesses.saturating_mul(shared_cost.saturating_sub(spm_cost));
            spm_candidates.entry(core).or_default().push(SpmCandidate {
                name: v.clone(),
                size_bytes: ty.size_bytes(),
                gain_cycles: gain,
            });
        } else {
            // Multi-core (or untouched) arrays go to shared memory.
            shared_arrays.push(v);
        }
    }

    for (core, cands) in &spm_candidates {
        let capacity = platform.core(*core).spm_bytes;
        let chosen = allocate_exact(cands, capacity);
        let chosen_set: BTreeSet<&String> = chosen.chosen.iter().collect();
        let mut spm_cursor = 0u64;
        for c in cands {
            let ty = &symbols[&c.name];
            if chosen_set.contains(&c.name) {
                map.insert(
                    c.name.clone(),
                    Placement {
                        space: MemSpace::Spm(*core),
                        base_addr: spm_cursor,
                        size_bytes: ty.size_bytes(),
                    },
                );
                spm_cursor += ty.size_bytes();
            } else {
                map.insert(
                    c.name.clone(),
                    Placement {
                        space: MemSpace::Shared,
                        base_addr: shared_cursor,
                        size_bytes: ty.size_bytes(),
                    },
                );
                shared_cursor += ty.size_bytes();
            }
        }
    }
    for v in shared_arrays {
        let ty = &symbols[v];
        map.insert(
            v,
            Placement {
                space: MemSpace::Shared,
                base_addr: shared_cursor,
                size_bytes: ty.size_bytes(),
            },
        );
        shared_cursor += ty.size_bytes();
    }

    map.check_capacity(platform)?;
    Ok(map)
}

// BTreeMap key borrowing helper: the candidate name string lives in
// `symbols`; return a reference with the map's lifetime.
fn leak_name<'a>(v: &str, symbols: &'a argo_ir::validate::SymbolTable) -> &'a str {
    symbols
        .keys()
        .find(|k| k.as_str() == v)
        .map(|k| k.as_str())
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_htg::{extract::extract, Granularity, TaskId};
    use argo_ir::parse::parse_program;
    use argo_sched::evaluate_assignment;
    use argo_sched::SchedCtx;

    /// Two loops touching different arrays; mapped to different cores the
    /// arrays are single-core and should land in SPMs.
    const TWO_KERNELS: &str = r#"
        void main(real a[128], real b[128]) {
            int i;
            for (i = 0; i < 128; i = i + 1) { a[i] = a[i] * 2.0; }
            for (i = 0; i < 128; i = i + 1) { b[i] = b[i] + 1.0; }
        }
    "#;

    fn setup(cores: usize, split: bool) -> (Program, Htg, TaskGraph, Schedule, Platform) {
        let program = parse_program(TWO_KERNELS).unwrap();
        let mut htg = extract(&program, "main", Granularity::Loop).unwrap();
        argo_htg::accesses::annotate(&mut htg, &program, &AnnotateCtx::with_default_bound(16));
        let costs: BTreeMap<TaskId, u64> = htg.top_level.iter().map(|&t| (t, 500u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = Platform::xentium_manycore(cores);
        let ctx = SchedCtx::new(&platform);
        // Manual assignment: loop tasks on separate cores when split.
        let assignment: Vec<CoreId> = (0..graph.len())
            .map(|t| {
                if split && graph.names[t].starts_with("for") && t >= 2 {
                    CoreId(1)
                } else {
                    CoreId(0)
                }
            })
            .collect();
        let schedule = evaluate_assignment(&graph, &ctx, &assignment);
        (program, htg, graph, schedule, platform)
    }

    #[test]
    fn single_core_arrays_go_to_spm() {
        let (program, htg, graph, schedule, platform) = setup(2, true);
        let map = assign(&program, &htg, &graph, &schedule, &platform).unwrap();
        // a touched only by core 0's loop, b only by core 1's.
        assert_eq!(map.space_of("a"), MemSpace::Spm(CoreId(0)));
        assert_eq!(map.space_of("b"), MemSpace::Spm(CoreId(1)));
    }

    #[test]
    fn scalars_stay_local() {
        let (program, htg, graph, schedule, platform) = setup(2, true);
        let map = assign(&program, &htg, &graph, &schedule, &platform).unwrap();
        assert_eq!(map.space_of("i"), MemSpace::Local);
    }

    #[test]
    fn oversized_arrays_spill_to_shared() {
        let src = r#"
            void main(real big[4096]) {
                int i;
                for (i = 0; i < 4096; i = i + 1) { big[i] = 0.0; }
            }
        "#;
        // 4096 reals = 32 KiB > 16 KiB SPM.
        let program = parse_program(src).unwrap();
        let htg = extract(&program, "main", Granularity::Loop).unwrap();
        let costs: BTreeMap<TaskId, u64> = htg.top_level.iter().map(|&t| (t, 1u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = Platform::xentium_manycore(1);
        let ctx = SchedCtx::new(&platform);
        let schedule = evaluate_assignment(&graph, &ctx, &vec![CoreId(0); graph.len()]);
        let map = assign(&program, &htg, &graph, &schedule, &platform).unwrap();
        assert_eq!(map.space_of("big"), MemSpace::Shared);
    }

    #[test]
    fn multi_core_arrays_are_shared() {
        let src = r#"
            void main(real shared_buf[64], real out0[64], real out1[64]) {
                int i;
                for (i = 0; i < 64; i = i + 1) { out0[i] = shared_buf[i] * 2.0; }
                for (i = 0; i < 64; i = i + 1) { out1[i] = shared_buf[i] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let htg = extract(&program, "main", Granularity::Loop).unwrap();
        let costs: BTreeMap<TaskId, u64> = htg.top_level.iter().map(|&t| (t, 1u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&platform);
        // Put the two loops on different cores.
        let assignment: Vec<CoreId> = (0..graph.len())
            .map(|t| if t >= 2 { CoreId(1) } else { CoreId(0) })
            .collect();
        let schedule = evaluate_assignment(&graph, &ctx, &assignment);
        let map = assign(&program, &htg, &graph, &schedule, &platform).unwrap();
        assert_eq!(map.space_of("shared_buf"), MemSpace::Shared);
    }

    #[test]
    fn addresses_do_not_overlap_within_a_space() {
        let (program, htg, graph, schedule, platform) = setup(1, false);
        let map = assign(&program, &htg, &graph, &schedule, &platform).unwrap();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (_, p) in map.iter() {
            if p.space == MemSpace::Shared {
                spans.push((p.base_addr, p.base_addr + p.size_bytes));
            }
        }
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping shared placements");
        }
    }
}
