//! Per-core pseudo-C emission of the parallel program model.
//!
//! "… generate C code following the WCET-aware programming model for the
//! target platforms" (§ II-C). The emitter renders each core's plan as a
//! C-like listing with explicit `argo_wait`/`argo_signal` calls and a
//! memory-placement header — the human-inspectable artefact of the flow.

use crate::{ParallelProgram, Step};
use argo_adl::MemSpace;
use std::fmt::Write as _;

/// Renders the whole parallel program as per-core pseudo-C.
pub fn emit_pseudo_c(pp: &ParallelProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* ARGO parallel program model — entry `{}` */",
        pp.entry
    );
    let _ = writeln!(
        out,
        "/* {} tasks, {} cores, {} signals */",
        pp.graph.len(),
        pp.plans.len(),
        pp.signal_count
    );
    out.push('\n');

    // Memory placement header.
    let _ = writeln!(out, "/* memory map */");
    for (var, p) in pp.memory_map.iter() {
        let space = match p.space {
            MemSpace::Local => "local".to_string(),
            MemSpace::Spm(c) => format!("spm({c})"),
            MemSpace::Shared => "shared".to_string(),
        };
        let _ = writeln!(
            out,
            "/*   {var:<16} -> {space:<12} @0x{:04x} ({} B) */",
            p.base_addr, p.size_bytes
        );
    }
    if !pp.privatized.is_empty() {
        let vars: Vec<&str> = pp.privatized.iter().map(|s| s.as_str()).collect();
        let _ = writeln!(out, "/* privatized scalars: {} */", vars.join(", "));
    }
    out.push('\n');

    for plan in &pp.plans {
        let _ = writeln!(out, "void core{}_main(void) {{", plan.core.0);
        for step in &plan.steps {
            match step {
                Step::Exec { task } => {
                    let _ = writeln!(
                        out,
                        "    task_{task}(); /* {} : [{}, {}) */",
                        pp.graph.names[*task], pp.schedule.start[*task], pp.schedule.finish[*task]
                    );
                }
                Step::Wait { signal, producer } => {
                    let _ = writeln!(
                        out,
                        "    argo_wait({signal}); /* data from task {producer} */"
                    );
                }
                Step::Signal { signal, consumer } => {
                    let _ = writeln!(out, "    argo_signal({signal}); /* -> task {consumer} */");
                }
            }
        }
        out.push_str("}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_htg::{extract::extract, Granularity};
    use argo_ir::parse::parse_program;
    use argo_sched::list::ListScheduler;
    use argo_sched::{SchedCtx, Scheduler, TaskGraph};
    use std::collections::BTreeMap;

    #[test]
    fn emits_plans_and_memory_map() {
        let src = r#"
            void main(real a[64], real b[64], real c[64]) {
                int i;
                for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
                for (i = 0; i < 64; i = i + 1) { c[i] = b[i] + 1.0; }
            }
        "#;
        let program = parse_program(src).unwrap();
        let htg = extract(&program, "main", Granularity::Loop).unwrap();
        let costs: BTreeMap<_, _> = htg.top_level.iter().map(|&t| (t, 100u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let platform = argo_adl::Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&platform);
        let schedule = ListScheduler::new().schedule(&graph, &ctx);
        let pp = crate::ParallelProgram::build(program, &htg, graph, schedule, &platform).unwrap();
        let text = emit_pseudo_c(&pp);
        assert!(text.contains("core0_main"));
        assert!(text.contains("core1_main"));
        assert!(text.contains("memory map"));
        // Every task appears exactly once.
        for t in 0..pp.graph.len() {
            assert_eq!(text.matches(&format!("task_{t}()")).count(), 1);
        }
        // Signals appear iff cross-core edges exist.
        if pp.signal_count > 0 {
            assert!(text.contains("argo_wait"));
            assert!(text.contains("argo_signal"));
        }
    }
}
