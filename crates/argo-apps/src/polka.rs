//! POLKA polarization camera pipeline (paper § IV-B).
//!
//! "POLKA uses a novel sensor that measures the polarization of light to
//! detect residual stress in glass containers." The kernel implements the
//! standard division-of-focal-plane pipeline: each 2×2 superpixel carries
//! four analyser orientations (0°, 45°, 90°, 135°); from these the Stokes
//! parameters S0/S1/S2 are computed, then the degree and angle of linear
//! polarization (DoLP/AoLP), a 3×3 smoothing of the DoLP map, and a
//! threshold producing the stress-defect mask used by in-line inspection.
//!
//! Synthetic substitution: camera frames are replaced by seeded images of
//! a uniform background with embedded high-DoLP "stress" blobs — the same
//! superpixel layout and arithmetic as real frames.

use crate::UseCase;
use argo_ir::interp::{ArgVal, ArrayData};
use argo_ir::parse::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw sensor width/height (pixels); superpixel grid is half this.
pub const RAW: usize = 32;
/// Superpixel grid side.
pub const SP: usize = RAW / 2;

/// The POLKA kernel in mini-C.
///
/// `raw` is the RAW×RAW mosaic (row-major, orientation pattern
/// `[0° 45° / 90° 135°]` per 2×2 superpixel). Outputs: DoLP map, AoLP
/// map, smoothed DoLP and the binary stress mask (SP×SP each,
/// flattened).
pub const SOURCE: &str = r#"
void polka(real raw[1024], real dolp[256], real aolp[256],
           real smooth[256], real mask[256]) {
    int r; int c;
    // Stokes parameters per 2x2 superpixel, then DoLP/AoLP.
    for (r = 0; r < 16; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            real i0; real i45; real i90; real i135;
            i0   = raw[(2*r) * 32 + (2*c)];
            i45  = raw[(2*r) * 32 + (2*c + 1)];
            i90  = raw[(2*r + 1) * 32 + (2*c)];
            i135 = raw[(2*r + 1) * 32 + (2*c + 1)];
            real s0; real s1; real s2;
            s0 = (i0 + i45 + i90 + i135) * 0.5;
            s1 = i0 - i90;
            s2 = i45 - i135;
            real d;
            d = sqrt(s1 * s1 + s2 * s2) / (s0 + 0.0001);
            dolp[r * 16 + c] = d;
            aolp[r * 16 + c] = 0.5 * atan2(s2, s1 + 0.0001);
        }
    }
    // 3x3 box smoothing of the DoLP map (clamped borders).
    for (r = 0; r < 16; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            real acc; int dr; int dc;
            acc = 0.0;
            for (dr = 0; dr < 3; dr = dr + 1) {
                for (dc = 0; dc < 3; dc = dc + 1) {
                    int rr; int cc;
                    rr = imax(0, imin(r + dr - 1, 15));
                    cc = imax(0, imin(c + dc - 1, 15));
                    acc = acc + dolp[rr * 16 + cc];
                }
            }
            smooth[r * 16 + c] = acc / 9.0;
        }
    }
    // Stress threshold.
    for (r = 0; r < 16; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            if (smooth[r * 16 + c] > 0.25) {
                mask[r * 16 + c] = 1.0;
            } else {
                mask[r * 16 + c] = 0.0;
            }
        }
    }
}
"#;

/// Synthetic polarization mosaic: unpolarized background plus `blobs`
/// polarized stress spots.
pub fn synthetic_frame(seed: u64, blobs: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-superpixel polarization state.
    let mut dolp = vec![0.02f64; SP * SP];
    let mut aolp = vec![0.0f64; SP * SP];
    for _ in 0..blobs {
        let cr = rng.gen_range(2..SP - 2) as i64;
        let cc = rng.gen_range(2..SP - 2) as i64;
        let strength = rng.gen_range(0.5..0.9);
        let angle = rng.gen_range(0.0..std::f64::consts::PI);
        for r in 0..SP as i64 {
            for c in 0..SP as i64 {
                let d2 = ((r - cr).pow(2) + (c - cc).pow(2)) as f64;
                let w = (-d2 / 4.0).exp();
                let idx = (r * SP as i64 + c) as usize;
                dolp[idx] = dolp[idx].max(strength * w);
                if w > 0.3 {
                    aolp[idx] = angle;
                }
            }
        }
    }
    // Render mosaic: Malus-law intensities per analyser orientation.
    let mut raw = vec![0.0f64; RAW * RAW];
    for r in 0..SP {
        for c in 0..SP {
            let s0 = 1000.0 + rng.gen_range(-20.0..20.0);
            let d = dolp[r * SP + c];
            let th = aolp[r * SP + c];
            let inten = |analyser: f64| 0.5 * s0 * (1.0 + d * (2.0 * (th - analyser)).cos());
            raw[(2 * r) * RAW + 2 * c] = inten(0.0);
            raw[(2 * r) * RAW + 2 * c + 1] = inten(std::f64::consts::FRAC_PI_4);
            raw[(2 * r + 1) * RAW + 2 * c] = inten(std::f64::consts::FRAC_PI_2);
            raw[(2 * r + 1) * RAW + 2 * c + 1] = inten(3.0 * std::f64::consts::FRAC_PI_4);
        }
    }
    raw
}

/// Builds the packaged use case (two stress blobs).
///
/// # Panics
///
/// Panics if the embedded source fails to parse (bug; covered by tests).
pub fn use_case(seed: u64) -> UseCase {
    let program = parse_program(SOURCE).expect("POLKA source parses");
    UseCase {
        name: "polka",
        program,
        entry: "polka",
        args: vec![
            ArgVal::Array(ArrayData::from_reals(&synthetic_frame(seed, 2))),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{Interp, NullHook};

    fn run(blobs: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let program = parse_program(SOURCE).unwrap();
        let mut interp = Interp::new(&program);
        let args = vec![
            ArgVal::Array(ArrayData::from_reals(&synthetic_frame(seed, blobs))),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; SP * SP])),
        ];
        let out = interp.call_full("polka", args, &mut NullHook).unwrap();
        let get = |n: &str| {
            out.arrays
                .iter()
                .find(|(name, _)| name == n)
                .unwrap()
                .1
                .to_reals()
        };
        (get("dolp"), get("mask"))
    }

    #[test]
    fn clean_glass_has_no_stress_detections() {
        let (_, mask) = run(0, 11);
        assert!(
            mask.iter().all(|&m| m == 0.0),
            "false positives on clean frame"
        );
    }

    #[test]
    fn stressed_glass_is_detected() {
        let (dolp, mask) = run(3, 11);
        assert!(mask.contains(&1.0), "missed stress blobs");
        // DoLP peaks where the mask fires.
        let best = dolp.iter().cloned().fold(0.0f64, f64::max);
        assert!(best > 0.4);
    }

    #[test]
    fn dolp_is_physical() {
        let (dolp, _) = run(2, 7);
        assert!(dolp.iter().all(|&d| (0.0..=1.2).contains(&d)));
    }

    #[test]
    fn more_blobs_more_detections() {
        let count = |blobs| run(blobs, 9).1.iter().filter(|&&m| m == 1.0).count();
        assert!(count(4) >= count(1));
        assert!(count(1) >= 1);
    }
}
