//! Enhanced Ground Proximity Warning System (paper § IV-A).
//!
//! "EGPWS combines high resolution terrain databases, GPS and other
//! sensors to provide feedback to pilots." The kernel scans a predicted
//! flight path over a terrain-elevation grid, computes the clearance at
//! each look-ahead point via bilinear interpolation, derives closure
//! rates, and classifies alert levels — the classic terrain-awareness
//! pipeline.
//!
//! Synthetic substitution: the proprietary terrain database is replaced
//! by a seeded value-noise heightmap (same grid lookup and interpolation
//! structure); the flight path by a parametric descent trajectory.

use crate::UseCase;
use argo_ir::interp::{ArgVal, ArrayData};
use argo_ir::parse::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Terrain grid side (GRID×GRID elevations).
pub const GRID: usize = 64;
/// Number of look-ahead points along the predicted path.
pub const PATH: usize = 128;

/// The EGPWS kernel in mini-C.
///
/// Inputs: flattened terrain grid, path coordinates and altitudes.
/// Outputs: per-point clearance and alert level (0 none, 1 caution,
/// 2 warning, 3 pull-up).
pub const SOURCE: &str = r#"
void egpws(real terrain[4096], real path_x[128], real path_y[128],
           real path_alt[128], real clearance[128], real alert[128]) {
    int i;
    // Clearance scan: bilinear terrain interpolation under each point.
    for (i = 0; i < 128; i = i + 1) {
        real x; real y;
        x = path_x[i];
        y = path_y[i];
        int gx; int gy;
        gx = (int) x;
        gy = (int) y;
        gx = imax(0, imin(gx, 62));
        gy = imax(0, imin(gy, 62));
        real fx; real fy;
        fx = x - (real) gx;
        fy = y - (real) gy;
        real h00; real h01; real h10; real h11;
        h00 = terrain[gy * 64 + gx];
        h01 = terrain[gy * 64 + gx + 1];
        h10 = terrain[(gy + 1) * 64 + gx];
        h11 = terrain[(gy + 1) * 64 + gx + 1];
        real h0; real h1; real h;
        h0 = h00 + fx * (h01 - h00);
        h1 = h10 + fx * (h11 - h10);
        h = h0 + fy * (h1 - h0);
        clearance[i] = path_alt[i] - h;
    }
    // Alert classification with look-ahead closure rate.
    for (i = 0; i < 128; i = i + 1) {
        real c; real cnext; real closure;
        c = clearance[i];
        cnext = clearance[imin(i + 1, 127)];
        closure = c - cnext;
        real level;
        level = 0.0;
        if (c < 100.0) {
            level = 3.0;
        } else if (c < 300.0 && closure > 5.0) {
            level = 2.0;
        } else if (c < 600.0 && closure > 0.0) {
            level = 1.0;
        } else { }
        alert[i] = level;
    }
}
"#;

/// Generates the seeded synthetic terrain (smooth value noise built from
/// a coarse random lattice, bilinearly upsampled — ridge-like terrain).
pub fn synthetic_terrain(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    const COARSE: usize = 9;
    let lattice: Vec<f64> = (0..COARSE * COARSE)
        .map(|_| rng.gen_range(0.0..2500.0))
        .collect();
    let mut out = Vec::with_capacity(GRID * GRID);
    let scale = (COARSE - 1) as f64 / (GRID - 1) as f64;
    for y in 0..GRID {
        for x in 0..GRID {
            let fx = x as f64 * scale;
            let fy = y as f64 * scale;
            let (ix, iy) = (fx as usize, fy as usize);
            let (dx, dy) = (fx - ix as f64, fy - iy as f64);
            let at = |r: usize, c: usize| lattice[r.min(COARSE - 1) * COARSE + c.min(COARSE - 1)];
            let h0 = at(iy, ix) * (1.0 - dx) + at(iy, ix + 1) * dx;
            let h1 = at(iy + 1, ix) * (1.0 - dx) + at(iy + 1, ix + 1) * dx;
            out.push(h0 * (1.0 - dy) + h1 * dy);
        }
    }
    out
}

/// Generates a descending approach path diagonally across the grid.
pub fn synthetic_path(seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let x0 = rng.gen_range(2.0..8.0);
    let y0 = rng.gen_range(2.0..8.0);
    let alt0 = rng.gen_range(3500.0..5000.0);
    let mut xs = Vec::with_capacity(PATH);
    let mut ys = Vec::with_capacity(PATH);
    let mut alts = Vec::with_capacity(PATH);
    for i in 0..PATH {
        let t = i as f64 / (PATH - 1) as f64;
        xs.push(x0 + t * (GRID as f64 - 12.0));
        ys.push(y0 + t * (GRID as f64 - 12.0) * 0.8);
        alts.push(alt0 - t * 2200.0);
    }
    (xs, ys, alts)
}

/// Builds the packaged use case.
///
/// # Panics
///
/// Panics if the embedded source fails to parse (bug; covered by tests).
pub fn use_case(seed: u64) -> UseCase {
    let program = parse_program(SOURCE).expect("EGPWS source parses");
    let (xs, ys, alts) = synthetic_path(seed);
    UseCase {
        name: "egpws",
        program,
        entry: "egpws",
        args: vec![
            ArgVal::Array(ArrayData::from_reals(&synthetic_terrain(seed))),
            ArgVal::Array(ArrayData::from_reals(&xs)),
            ArgVal::Array(ArrayData::from_reals(&ys)),
            ArgVal::Array(ArrayData::from_reals(&alts)),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; PATH])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; PATH])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{Interp, NullHook};

    fn run(seed: u64) -> (Vec<f64>, Vec<f64>) {
        let uc = use_case(seed);
        let mut interp = Interp::new(&uc.program);
        let out = interp.call_full(uc.entry, uc.args, &mut NullHook).unwrap();
        let clearance = out.arrays.iter().find(|(n, _)| n == "clearance").unwrap();
        let alert = out.arrays.iter().find(|(n, _)| n == "alert").unwrap();
        (clearance.1.to_reals(), alert.1.to_reals())
    }

    #[test]
    fn produces_clearances_and_alerts() {
        let (clearance, alert) = run(42);
        assert_eq!(clearance.len(), PATH);
        // Descending into terrain: clearance shrinks overall.
        assert!(clearance[PATH - 1] < clearance[0]);
        // Alert levels are valid classes.
        assert!(alert.iter().all(|&a| [0.0, 1.0, 2.0, 3.0].contains(&a)));
    }

    #[test]
    fn low_clearance_raises_pull_up() {
        // Force a path 50 ft above the terrain everywhere: every point
        // must be a pull-up (level 3).
        let uc = use_case(1);
        let terrain = synthetic_terrain(1);
        let (xs, ys, _) = synthetic_path(1);
        // Altitude = terrain under the path + 50 via nearest lookup.
        let alts: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| {
                let gx = (x as usize).min(GRID - 1);
                let gy = (y as usize).min(GRID - 1);
                terrain[gy * GRID + gx] + 50.0
            })
            .collect();
        let mut interp = Interp::new(&uc.program);
        let args = vec![
            ArgVal::Array(ArrayData::from_reals(&terrain)),
            ArgVal::Array(ArrayData::from_reals(&xs)),
            ArgVal::Array(ArrayData::from_reals(&ys)),
            ArgVal::Array(ArrayData::from_reals(&alts)),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; PATH])),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; PATH])),
        ];
        let out = interp.call_full("egpws", args, &mut NullHook).unwrap();
        let alert = out
            .arrays
            .iter()
            .find(|(n, _)| n == "alert")
            .unwrap()
            .1
            .to_reals();
        let pull_ups = alert.iter().filter(|&&a| a == 3.0).count();
        assert!(
            pull_ups > PATH / 2,
            "flying 50ft over terrain must trigger mostly pull-ups, got {pull_ups}"
        );
    }

    #[test]
    fn terrain_is_smooth() {
        let t = synthetic_terrain(3);
        // Neighbouring cells differ by less than the global range.
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.iter().cloned().fold(f64::MAX, f64::min);
        let range = max - min;
        for y in 0..GRID {
            for x in 1..GRID {
                let d = (t[y * GRID + x] - t[y * GRID + x - 1]).abs();
                assert!(d < range * 0.35, "terrain jumps too hard at ({x},{y})");
            }
        }
    }
}
