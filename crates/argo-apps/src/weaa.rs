//! Wake Encounter Avoidance and Advisory system (paper § IV-A).
//!
//! "WEAA predicts wake vortices, performs conflict detection and generates
//! evasion trajectories." The kernel advects a set of decaying wake-vortex
//! pairs left by a leading aircraft, evaluates the induced roll-moment
//! hazard along the own-ship trajectory (conflict detection), and scores a
//! set of lateral/vertical evasion candidates, picking the lowest-hazard
//! one — the "tactical small-scale evasion" of the paper.
//!
//! Synthetic substitution: recorded wake data is replaced by a seeded
//! vortex-pair field with Burnham–Hallock-style induced velocity and
//! exponential circulation decay — the same arithmetic structure
//! (distance computations, rational kernels, exponentials) as the real
//! predictor.

use crate::UseCase;
use argo_ir::interp::{ArgVal, ArrayData};
use argo_ir::parse::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of vortex pairs tracked.
pub const VORTICES: usize = 16;
/// Own-ship trajectory points.
pub const TRAJ: usize = 64;
/// Number of evasion candidates scored.
pub const CANDIDATES: usize = 8;

/// The WEAA kernel in mini-C.
///
/// Vortex state arrays hold per-vortex `(y, z)` position, circulation and
/// age; the trajectory holds `(y, z)` per point. Outputs: hazard along
/// the nominal trajectory, per-candidate scores, and the chosen evasion
/// offset index in `best[0]`.
pub const SOURCE: &str = r#"
real induced(real dy, real dz, real gamma) {
    real r2; real rc2;
    r2 = dy * dy + dz * dz;
    rc2 = 4.0;
    return gamma * r2 / ((r2 + rc2) * (r2 + rc2) + 1.0);
}

void weaa(real vy[16], real vz[16], real gamma[16], real age[16],
          real ty[64], real tz[64],
          real hazard[64], real scores[8], real best[1]) {
    int i; int j; int c;
    // Conflict detection: worst induced hazard at each trajectory point.
    for (i = 0; i < 64; i = i + 1) {
        real h;
        h = 0.0;
        for (j = 0; j < 16; j = j + 1) {
            real decay; real contrib;
            decay = exp(0.0 - age[j] * 0.05);
            contrib = induced(ty[i] - vy[j], tz[i] - vz[j], gamma[j] * decay);
            h = fmax(h, fabs(contrib));
        }
        hazard[i] = h;
    }
    // Evasion scoring: lateral/vertical offset candidates.
    for (c = 0; c < 8; c = c + 1) {
        real dy_off; real dz_off; real worst;
        dy_off = ((real) (c % 4)) * 15.0 - 22.5;
        dz_off = ((real) (c / 4)) * 30.0 - 15.0;
        worst = 0.0;
        for (i = 0; i < 64; i = i + 1) {
            real hc;
            hc = 0.0;
            for (j = 0; j < 16; j = j + 1) {
                real decay2; real contrib2;
                decay2 = exp(0.0 - age[j] * 0.05);
                contrib2 = induced(ty[i] + dy_off - vy[j],
                                   tz[i] + dz_off - vz[j],
                                   gamma[j] * decay2);
                hc = fmax(hc, fabs(contrib2));
            }
            worst = fmax(worst, hc);
        }
        scores[c] = worst;
    }
    // Pick the lowest-hazard candidate.
    real bestscore; real bestidx;
    bestscore = scores[0];
    bestidx = 0.0;
    for (c = 1; c < 8; c = c + 1) {
        if (scores[c] < bestscore) {
            bestscore = scores[c];
            bestidx = (real) c;
        } else { }
    }
    best[0] = bestidx;
}
"#;

/// The synthetic scene arrays: vortex `(y, z, circulation, age)` plus the
/// own-ship trajectory `(y, z)` samples.
pub type SceneArrays = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// Seeded synthetic vortex field and own-ship trajectory.
pub fn synthetic_scene(seed: u64) -> SceneArrays {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vy = Vec::new();
    let mut vz = Vec::new();
    let mut gamma = Vec::new();
    let mut age = Vec::new();
    for p in 0..VORTICES / 2 {
        // Counter-rotating pairs drifting down behind the leader.
        let cy = rng.gen_range(-40.0..40.0);
        let cz = rng.gen_range(-25.0..5.0) - p as f64 * 0.5;
        let g = rng.gen_range(300.0..600.0);
        let a = rng.gen_range(0.0..30.0);
        vy.push(cy - 10.0);
        vz.push(cz);
        gamma.push(g);
        age.push(a);
        vy.push(cy + 10.0);
        vz.push(cz);
        gamma.push(-g);
        age.push(a);
    }
    let mut ty = Vec::new();
    let mut tz = Vec::new();
    for i in 0..TRAJ {
        let t = i as f64 / (TRAJ - 1) as f64;
        ty.push(-60.0 + 120.0 * t + rng.gen_range(-0.5..0.5));
        tz.push(-5.0 + 2.0 * (t * 6.0).sin());
    }
    (vy, vz, gamma, age, ty, tz)
}

/// Builds the packaged use case.
///
/// # Panics
///
/// Panics if the embedded source fails to parse (bug; covered by tests).
pub fn use_case(seed: u64) -> UseCase {
    let program = parse_program(SOURCE).expect("WEAA source parses");
    let (vy, vz, gamma, age, ty, tz) = synthetic_scene(seed);
    UseCase {
        name: "weaa",
        program,
        entry: "weaa",
        args: vec![
            ArgVal::Array(ArrayData::from_reals(&vy)),
            ArgVal::Array(ArrayData::from_reals(&vz)),
            ArgVal::Array(ArrayData::from_reals(&gamma)),
            ArgVal::Array(ArrayData::from_reals(&age)),
            ArgVal::Array(ArrayData::from_reals(&ty)),
            ArgVal::Array(ArrayData::from_reals(&tz)),
            ArgVal::Array(ArrayData::from_reals(&vec![0.0; TRAJ])),
            ArgVal::Array(ArrayData::from_reals(&[0.0; CANDIDATES])),
            ArgVal::Array(ArrayData::from_reals(&[0.0])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{Interp, NullHook};

    fn run(seed: u64) -> (Vec<f64>, Vec<f64>, f64) {
        let uc = use_case(seed);
        let mut interp = Interp::new(&uc.program);
        let out = interp.call_full(uc.entry, uc.args, &mut NullHook).unwrap();
        let get = |n: &str| {
            out.arrays
                .iter()
                .find(|(name, _)| name == n)
                .unwrap()
                .1
                .to_reals()
        };
        (get("hazard"), get("scores"), get("best")[0])
    }

    #[test]
    fn computes_hazard_and_picks_best_candidate() {
        let (hazard, scores, best) = run(42);
        assert_eq!(hazard.len(), TRAJ);
        assert_eq!(scores.len(), CANDIDATES);
        assert!(hazard.iter().all(|&h| h >= 0.0));
        let bi = best as usize;
        assert!(bi < CANDIDATES);
        // The chosen candidate really is a minimiser.
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        assert!((scores[bi] - min).abs() < 1e-12);
    }

    #[test]
    fn hazard_is_higher_near_vortices() {
        // A trajectory passing straight through a vortex core must see
        // more hazard than one far away.
        let uc = use_case(3);
        let (vy, vz, gamma, age, _, _) = synthetic_scene(3);
        let near_ty: Vec<f64> = (0..TRAJ).map(|_| vy[0] + 3.0).collect();
        let near_tz: Vec<f64> = (0..TRAJ).map(|_| vz[0]).collect();
        let far_ty: Vec<f64> = (0..TRAJ).map(|_| 500.0).collect();
        let far_tz: Vec<f64> = (0..TRAJ).map(|_| 500.0).collect();
        let run_with = |ty: &[f64], tz: &[f64]| {
            let mut interp = Interp::new(&uc.program);
            let args = vec![
                ArgVal::Array(ArrayData::from_reals(&vy)),
                ArgVal::Array(ArrayData::from_reals(&vz)),
                ArgVal::Array(ArrayData::from_reals(&gamma)),
                ArgVal::Array(ArrayData::from_reals(&age)),
                ArgVal::Array(ArrayData::from_reals(ty)),
                ArgVal::Array(ArrayData::from_reals(tz)),
                ArgVal::Array(ArrayData::from_reals(&vec![0.0; TRAJ])),
                ArgVal::Array(ArrayData::from_reals(&[0.0; CANDIDATES])),
                ArgVal::Array(ArrayData::from_reals(&[0.0])),
            ];
            let out = interp.call_full("weaa", args, &mut NullHook).unwrap();
            out.arrays
                .iter()
                .find(|(n, _)| n == "hazard")
                .unwrap()
                .1
                .to_reals()
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
        };
        assert!(run_with(&near_ty, &near_tz) > run_with(&far_ty, &far_tz) * 10.0);
    }

    #[test]
    fn vortex_pairs_have_opposite_circulation() {
        let (_, _, gamma, _, _, _) = synthetic_scene(5);
        for p in gamma.chunks(2) {
            assert!((p[0] + p[1]).abs() < 1e-9);
        }
    }
}
