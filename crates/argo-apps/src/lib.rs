//! # argo-apps — the ARGO use-case applications (paper § IV)
//!
//! Faithful synthetic reconstructions of the three evaluation
//! applications, written in mini-C against the public tool-chain API:
//!
//! * [`egpws`] — Enhanced Ground Proximity Warning System (aerospace, DLR):
//!   terrain-clearance scan along a predicted flight path over a terrain
//!   database, with alert classification;
//! * [`weaa`] — Wake Encounter Avoidance and Advisory (aerospace, DLR):
//!   wake-vortex prediction (decaying vortex-pair model), conflict
//!   detection along the own-ship trajectory and evasion-candidate
//!   scoring;
//! * [`polka`] — POLKA polarization camera (industrial image processing,
//!   Fraunhofer IIS): 2×2 polarization superpixel processing to Stokes
//!   parameters, degree/angle of linear polarization, and a stress
//!   threshold map.
//!
//! The paper's actual input data (terrain databases, recorded wakes,
//! camera frames) is proprietary; each module ships a seeded synthetic
//! generator that reproduces the *computational* structure — array sizes,
//! loop nests, arithmetic mix — which is all the parallelization and WCET
//! machinery observes (see DESIGN.md substitution table).

pub mod egpws;
pub mod polka;
pub mod weaa;

use argo_ir::ast::Program;
use argo_ir::interp::ArgVal;

/// A packaged use case: program + entry + representative inputs.
pub struct UseCase {
    /// Short identifier (`"egpws"`, `"weaa"`, `"polka"`).
    pub name: &'static str,
    /// The mini-C program.
    pub program: Program,
    /// Entry function name.
    pub entry: &'static str,
    /// Representative argument vector (seeded synthetic data).
    pub args: Vec<ArgVal>,
}

/// Builds all three use cases with the given RNG seed.
///
/// # Panics
///
/// Panics only if the embedded sources fail to parse — a bug, covered by
/// tests.
pub fn all_use_cases(seed: u64) -> Vec<UseCase> {
    vec![
        egpws::use_case(seed),
        weaa::use_case(seed),
        polka::use_case(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{Interp, NullHook};

    #[test]
    fn all_use_cases_parse_validate_and_run() {
        for uc in all_use_cases(42) {
            argo_ir::validate::validate(&uc.program).unwrap_or_else(|e| panic!("{}: {e}", uc.name));
            let mut interp = Interp::new(&uc.program);
            interp
                .call_full(uc.entry, uc.args.clone(), &mut NullHook)
                .unwrap_or_else(|e| panic!("{}: {e}", uc.name));
        }
    }

    #[test]
    fn use_cases_are_deterministic_per_seed() {
        let a = egpws::use_case(7);
        let b = egpws::use_case(7);
        let c = egpws::use_case(8);
        assert_eq!(format!("{:?}", a.args), format!("{:?}", b.args));
        assert_ne!(format!("{:?}", a.args), format!("{:?}", c.args));
    }
}
