//! # argo-sim — deterministic multi-core platform simulator
//!
//! Executes a `argo_parir::ParallelProgram` on an `argo_adl::Platform`
//! model and reports the observed cycle count. The simulator plays the
//! role the FPGA prototypes play in the project (§ IV-C): the testbed on
//! which WCET bounds are *validated* — every integration test asserts
//! `observed cycles ≤ analysed bound`.
//!
//! Two phases:
//!
//! 1. **Trace** ([`trace`]) — tasks execute functionally through the
//!    `argo-ir` interpreter in schedule order on a shared frame (with
//!    per-task privatized-scalar resets), while a hook converts every
//!    operation and memory access into a per-task event timeline
//!    (`Compute(n)` / `SharedAccess`). Task statement lists are replayed
//!    by id through the interpreter's slot-resolved program mirror
//!    (`argo_ir::resolve`), so the per-statement drive path performs no
//!    AST lookups, statement clones or string hashing. Task-level
//!    determinacy (guaranteed by the dependence analysis) makes the
//!    trace independent of the interleaving, so functional results
//!    equal the sequential reference.
//! 2. **Timed replay** ([`bus`]) — a discrete-event simulation replays the
//!    timelines on the cores, arbitrating every shared access through the
//!    platform's bus model (TDMA / WRR / fixed-priority) and honouring the
//!    explicit signal/wait synchronization. NoC platforms are modelled as
//!    the memory-port bottleneck plus deterministic per-core route
//!    latency (the analytic bound covers in-route contention, so the
//!    simulation under-approximates it — sound for validation).
//!
//! [`SimMode::WorstCase`] charges architectural worst-case latencies per
//! operation; [`SimMode::Random`] draws per-operation latencies uniformly
//! from `[1, worst]` (seeded), which is how the average-vs-worst-case gap
//! experiments are produced.

pub mod bus;
pub mod trace;

use argo_adl::{CoreId, Interconnect, Platform};
use argo_ir::interp::{ArgVal, ArrayData, Interp, RuntimeError};
use argo_parir::ParallelProgram;
use std::fmt;

/// Simulation timing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Every operation takes its architectural worst-case latency.
    WorstCase,
    /// Per-operation latencies drawn uniformly from `[1, worst]` with the
    /// given seed (average-case behaviour).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Timing mode.
    pub mode: SimMode,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            mode: SimMode::WorstCase,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Observed makespan in cycles.
    pub cycles: u64,
    /// Observed per-task start times.
    pub task_start: Vec<u64>,
    /// Observed per-task finish times.
    pub task_finish: Vec<u64>,
    /// Total cycles spent waiting for bus grants (arbitration).
    pub bus_wait_cycles: u64,
    /// Number of shared-memory transactions issued.
    pub bus_transactions: u64,
    /// Final contents of the entry function's array parameters.
    pub outputs: Vec<(String, ArrayData)>,
    /// Per-core cache statistics `(hits, misses)`; zeros without caches.
    pub cache_stats: Vec<(u64, u64)>,
}

/// Simulation error.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.msg)
    }
}

impl std::error::Error for SimError {}

impl From<RuntimeError> for SimError {
    fn from(e: RuntimeError) -> SimError {
        SimError { msg: e.msg }
    }
}

/// Runs the parallel program on the platform with the given entry
/// arguments.
///
/// # Errors
///
/// Returns [`SimError`] on interpreter runtime errors (out-of-bounds,
/// exceeded loop bounds — i.e. unsound annotations), plan inconsistencies
/// or deadlocks.
pub fn simulate(
    pp: &ParallelProgram,
    platform: &Platform,
    args: Vec<ArgVal>,
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    pp.validate().map_err(|msg| SimError { msg })?;
    // Phase 1: functional execution + per-task traces.
    let mut interp = Interp::new(&pp.program);
    let traced = trace::trace_tasks(&mut interp, pp, platform, args, cfg)?;

    // Phase 2: timed replay.
    let replay = bus::replay(pp, platform, &traced.traces)?;

    // Collect outputs (entry array parameters).
    let entry = pp.program.function(&pp.entry).ok_or_else(|| SimError {
        msg: format!("no entry `{}`", pp.entry),
    })?;
    let mut outputs = Vec::new();
    for p in &entry.params {
        if p.ty.is_array() {
            let arr = interp
                .array_of(&traced.frame, &p.name)
                .map_err(SimError::from)?
                .clone();
            outputs.push((p.name.clone(), arr));
        }
    }
    Ok(SimResult {
        cycles: replay.makespan,
        task_start: replay.task_start,
        task_finish: replay.task_finish,
        bus_wait_cycles: replay.bus_wait_cycles,
        bus_transactions: replay.bus_transactions,
        outputs,
        cache_stats: traced.cache_stats,
    })
}

/// Runs the *sequential* program through the interpreter and returns the
/// final array-parameter contents — the functional oracle.
///
/// # Errors
///
/// Propagates interpreter runtime errors.
pub fn sequential_reference(
    program: &argo_ir::Program,
    entry: &str,
    args: Vec<ArgVal>,
) -> Result<Vec<(String, ArrayData)>, SimError> {
    let mut interp = Interp::new(program);
    let out = interp
        .call_full(entry, args, &mut argo_ir::interp::NullHook)
        .map_err(SimError::from)?;
    Ok(out.arrays)
}

/// Deterministic per-core route latency used for NoC platforms: the
/// uncontended XY route to the memory tile at `(0, 0)`.
pub(crate) fn noc_route_latency(platform: &Platform, core: CoreId) -> u64 {
    match &platform.interconnect {
        Interconnect::Bus { .. } => 0,
        Interconnect::Noc {
            router_latency,
            link_latency,
            ..
        } => {
            let tile = platform.core(core).tile;
            let hops = (tile.0 + tile.1) as u64 + 1;
            hops * (router_latency + link_latency)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_worst_case() {
        assert_eq!(SimConfig::default().mode, SimMode::WorstCase);
    }

    #[test]
    fn noc_route_latency_grows_with_distance() {
        let p = Platform::kit_tile_noc(2, 2);
        assert!(noc_route_latency(&p, CoreId(3)) > noc_route_latency(&p, CoreId(0)));
        let bus = Platform::xentium_manycore(2);
        assert_eq!(noc_route_latency(&bus, CoreId(1)), 0);
    }
}
