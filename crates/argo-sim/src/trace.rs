//! Trace phase: functional execution producing per-task event timelines.
//!
//! Tasks run in schedule start order on a single shared frame (task-level
//! determinacy makes the order irrelevant for functional results);
//! privatized scalars are reset to the uninitialised state before every
//! task, so a task can never observe another task's value through them.
//! The `TimingHook` turns operations and accesses into events:
//! compute cycles accumulate locally, shared-memory accesses become
//! arbitration events for the timed replay.

use crate::{SimConfig, SimError, SimMode};
use argo_adl::cache::LruCache;
use argo_adl::{CoreId, MemSpace, Platform};
use argo_ir::interp::{AccessKind, ArgVal, ExecHook, Frame, Interp, OpClass};
use argo_ir::types::Scalar;
use argo_parir::ParallelProgram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event of a task's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Local computation (ops + local/SPM accesses + cache hits) lasting
    /// the given number of cycles.
    Compute(u64),
    /// One shared-memory transaction (goes through the bus arbiter).
    SharedAccess,
}

/// The trace of one task: its event timeline.
pub type TaskTrace = Vec<Ev>;

/// Output of the trace phase.
pub struct Traced {
    /// Per-task timelines (indexed like the task graph).
    pub traces: Vec<TaskTrace>,
    /// The entry frame after all tasks ran (for output extraction).
    pub frame: Frame,
    /// Per-core cache statistics.
    pub cache_stats: Vec<(u64, u64)>,
}

/// Runs all tasks functionally and collects timelines.
///
/// # Errors
///
/// Returns [`SimError`] on interpreter errors or malformed plans.
pub fn trace_tasks(
    interp: &mut Interp<'_>,
    pp: &ParallelProgram,
    platform: &Platform,
    args: Vec<ArgVal>,
    cfg: &SimConfig,
) -> Result<Traced, SimError> {
    let entry = pp.program.function(&pp.entry).ok_or_else(|| SimError {
        msg: format!("no entry `{}`", pp.entry),
    })?;
    let mut frame = interp.make_frame(entry, args)?;

    // Scalar types of privatized vars (for resets).
    let symbols = argo_ir::validate::symbol_table(entry);
    let privatized: Vec<(String, Scalar)> = pp
        .privatized
        .iter()
        .filter_map(|v| symbols.get(v).map(|t| (v.clone(), t.elem())))
        .collect();

    // Per-core cache state persists across that core's tasks.
    let mut caches: Vec<Option<LruCache>> = platform
        .cores
        .iter()
        .map(|c| c.cache.map(LruCache::new))
        .collect();

    // Execute tasks in schedule start order (a valid topological order).
    let mut order: Vec<usize> = (0..pp.graph.len()).collect();
    order.sort_by_key(|&t| (pp.schedule.start[t], t));

    let mut rng = match cfg.mode {
        SimMode::WorstCase => None,
        SimMode::Random { seed } => Some(StdRng::seed_from_u64(seed)),
    };

    let mut traces: Vec<TaskTrace> = vec![Vec::new(); pp.graph.len()];
    for &t in &order {
        let core = pp.schedule.assignment[t];
        for (name, scalar) in &privatized {
            interp.reset_scalar(&mut frame, name, *scalar);
        }
        let mut hook = TimingHook {
            platform,
            core,
            mem: &pp.memory_map,
            events: Vec::new(),
            pending_compute: 0,
            cache: caches[core.0].take(),
            rng: rng.as_mut(),
        };
        for sid in &pp.task_stmts[t] {
            // Statements are replayed through the slot-resolved mirror
            // by id — no AST lookup, no statement clone. A stale id
            // (plan out of sync with the program) is attributed to the
            // task up front, so genuine runtime errors propagate with
            // their messages untouched.
            if interp.resolution().stmt_loc(*sid).is_none() {
                return Err(SimError {
                    msg: format!("task {t}: no statement {sid}"),
                });
            }
            interp.exec_stmt_id(&mut frame, *sid, &mut hook)?;
        }
        hook.flush();
        caches[core.0] = hook.cache.take();
        traces[t] = hook.events;
    }

    let cache_stats = caches
        .iter()
        .map(|c| c.as_ref().map_or((0, 0), |c| (c.hits, c.misses)))
        .collect();
    Ok(Traced {
        traces,
        frame,
        cache_stats,
    })
}

/// The hook converting interpreter events into timeline events.
struct TimingHook<'a> {
    platform: &'a Platform,
    core: CoreId,
    mem: &'a argo_adl::MemoryMap,
    events: Vec<Ev>,
    pending_compute: u64,
    cache: Option<LruCache>,
    rng: Option<&'a mut StdRng>,
}

impl TimingHook<'_> {
    fn charge(&mut self, worst: u64) {
        let c = match self.rng.as_mut() {
            Some(rng) if worst > 0 => rng.gen_range(1..=worst),
            _ => worst,
        };
        self.pending_compute += c;
    }

    fn flush(&mut self) {
        if self.pending_compute > 0 {
            self.events.push(Ev::Compute(self.pending_compute));
            self.pending_compute = 0;
        }
    }

    fn shared_access(&mut self, var: &str, flat: Option<u64>) {
        match self.cache.as_mut() {
            Some(cache) => {
                // Concrete address from the memory map.
                let addr = match flat {
                    Some(i) => self.mem.elem_addr(var, i),
                    None => self.mem.placement(var).map_or(0, |p| p.base_addr),
                };
                let (_, hit) = cache.access(addr);
                let cfg = *cache.config();
                if hit {
                    self.charge(cfg.hit_cycles);
                } else {
                    // Miss: hit-detect latency locally, then the refill
                    // transaction goes through the bus.
                    self.charge(cfg.hit_cycles + cfg.miss_penalty);
                    self.flush();
                    self.events.push(Ev::SharedAccess);
                }
            }
            None => {
                self.flush();
                self.events.push(Ev::SharedAccess);
            }
        }
    }

    fn access(&mut self, base: &str, flat: Option<u64>) {
        match self.mem.space_of(base) {
            MemSpace::Local => {
                let c = self.platform.core(self.core).timing.local_access;
                self.charge(c);
            }
            MemSpace::Spm(owner) => {
                if owner == self.core {
                    let c = self.platform.core(owner).spm_latency;
                    self.charge(c);
                } else {
                    // Placement bug fallback: treat as shared (matches the
                    // analysis-side fallback, keeping bound ≥ observed).
                    self.shared_access(base, flat);
                }
            }
            MemSpace::Shared => self.shared_access(base, flat),
        }
    }
}

impl ExecHook for TimingHook<'_> {
    fn on_op(&mut self, op: OpClass) {
        let t = &self.platform.core(self.core).timing;
        let worst = match op {
            OpClass::IntAlu => t.int_alu,
            OpClass::IntMul => t.int_mul,
            OpClass::IntDiv => t.int_div,
            OpClass::FloatAdd => t.float_add,
            OpClass::FloatMul => t.float_mul,
            OpClass::FloatDiv => t.float_div,
            OpClass::Cmp => t.cmp,
            OpClass::Logic => t.logic,
            OpClass::Cast => t.cast,
            OpClass::Intrinsic => 0, // charged by name via on_intrinsic
            OpClass::Branch => t.branch,
            OpClass::LoopOverhead => t.loop_overhead,
            OpClass::CallOverhead => t.call_overhead,
        };
        if worst > 0 {
            self.charge(worst);
        }
    }

    fn on_intrinsic(&mut self, name: &str) {
        let c = self.platform.core(self.core).timing.intrinsic(name);
        self.charge(c);
    }

    fn on_access(&mut self, base: &str, _kind: AccessKind) {
        self.access(base, None);
    }

    fn on_access_elem(&mut self, base: &str, _kind: AccessKind, flat: u64) {
        self.access(base, Some(flat));
    }
}

/// Total compute cycles (excluding bus time) of a trace — used by tests.
pub fn compute_cycles(trace: &TaskTrace) -> u64 {
    trace
        .iter()
        .map(|e| match e {
            Ev::Compute(c) => *c,
            Ev::SharedAccess => 0,
        })
        .sum()
}

/// Number of shared transactions in a trace.
pub fn shared_count(trace: &TaskTrace) -> u64 {
    trace
        .iter()
        .filter(|e| matches!(e, Ev::SharedAccess))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_adl::Platform;
    use argo_sched::evaluate_assignment;
    use argo_sched::{CommModel, SchedCtx, TaskGraph};

    fn build_pp(src: &str, platform: &Platform) -> ParallelProgram {
        let program = argo_ir::parse::parse_program(src).unwrap();
        let htg =
            argo_htg::extract::extract(&program, "main", argo_htg::Granularity::Loop).unwrap();
        let costs: std::collections::BTreeMap<_, _> =
            htg.top_level.iter().map(|&t| (t, 10u64)).collect();
        let graph = TaskGraph::from_htg(&htg, &costs);
        let ctx = SchedCtx {
            platform,
            comm: CommModel::Free,
        };
        let schedule = evaluate_assignment(&graph, &ctx, &vec![CoreId(0); graph.len()]);
        ParallelProgram::build(program, &htg, graph, schedule, platform).unwrap()
    }

    const SRC: &str = r#"
        void main(real a[8], real b[8]) {
            int i;
            for (i = 0; i < 8; i = i + 1) { b[i] = a[i] * 2.0 + 1.0; }
        }
    "#;

    fn args() -> Vec<ArgVal> {
        vec![
            ArgVal::Array(argo_ir::interp::ArrayData::from_reals(&[1.0; 8])),
            ArgVal::Array(argo_ir::interp::ArrayData::from_reals(&[0.0; 8])),
        ]
    }

    #[test]
    fn consecutive_compute_coalesces() {
        // Single-core platform: arrays land in the SPM, so the whole task
        // is pure compute — the timeline must be a single Compute event.
        let platform = Platform::xentium_manycore(1);
        let pp = build_pp(SRC, &platform);
        let mut interp = Interp::new(&pp.program);
        let traced =
            trace_tasks(&mut interp, &pp, &platform, args(), &SimConfig::default()).unwrap();
        for t in &traced.traces {
            let computes = t.iter().filter(|e| matches!(e, Ev::Compute(_))).count();
            let shared = shared_count(t);
            if shared == 0 && !t.is_empty() {
                assert_eq!(computes, 1, "adjacent compute must coalesce: {t:?}");
            }
        }
    }

    #[test]
    fn shared_placement_emits_access_events() {
        // Force shared placement by shrinking the scratchpad to zero.
        let mut platform = Platform::xentium_manycore(1);
        platform.cores[0].spm_bytes = 0;
        let pp = build_pp(SRC, &platform);
        let mut interp = Interp::new(&pp.program);
        let traced =
            trace_tasks(&mut interp, &pp, &platform, args(), &SimConfig::default()).unwrap();
        let total_shared: u64 = traced.traces.iter().map(shared_count).sum();
        // 8 iterations × (read a + write b) = 16 element transactions.
        assert_eq!(total_shared, 16);
    }

    #[test]
    fn random_mode_charges_at_most_worst_case() {
        let platform = Platform::xentium_manycore(1);
        let pp = build_pp(SRC, &platform);
        let mut i1 = Interp::new(&pp.program);
        let worst = trace_tasks(&mut i1, &pp, &platform, args(), &SimConfig::default()).unwrap();
        let mut i2 = Interp::new(&pp.program);
        let rnd = trace_tasks(
            &mut i2,
            &pp,
            &platform,
            args(),
            &SimConfig {
                mode: SimMode::Random { seed: 3 },
            },
        )
        .unwrap();
        for (w, r) in worst.traces.iter().zip(&rnd.traces) {
            assert!(compute_cycles(r) <= compute_cycles(w));
            assert_eq!(
                shared_count(r),
                shared_count(w),
                "structure is timing-independent"
            );
        }
    }

    #[test]
    fn functional_outputs_match_reference() {
        let platform = Platform::xentium_manycore(1);
        let pp = build_pp(SRC, &platform);
        let mut interp = Interp::new(&pp.program);
        let traced =
            trace_tasks(&mut interp, &pp, &platform, args(), &SimConfig::default()).unwrap();
        let b = interp.array_of(&traced.frame, "b").unwrap().to_reals();
        assert_eq!(b, vec![3.0; 8]);
    }

    #[test]
    fn cache_statistics_are_collected() {
        let platform = Platform::xentium_manycore(1).with_caches(argo_adl::CacheConfig::small());
        let pp = build_pp(SRC, &platform);
        let mut interp = Interp::new(&pp.program);
        let traced =
            trace_tasks(&mut interp, &pp, &platform, args(), &SimConfig::default()).unwrap();
        let (hits, misses) = traced.cache_stats[0];
        assert!(misses > 0, "cold cache must miss");
        assert!(
            hits > 0,
            "8-element arrays share 32-byte lines: hits expected"
        );
    }
}
