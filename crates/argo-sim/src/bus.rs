//! Timed replay: discrete-event simulation of cores, signals and the
//! shared-memory arbiter.
//!
//! Each core walks its plan (waits, task timelines, signals). Shared
//! accesses become requests to the `BusModel`, which implements the
//! platform's arbitration dynamically:
//!
//! * **TDMA** — a request is granted at the start of the issuing core's
//!   next slot (slots sized to cover one transaction);
//! * **WRR / fixed-priority** — a grant decision is made only once every
//!   unblocked core's local time has passed the grant instant, so all
//!   competing requests are known; WRR serves the least-recently-served
//!   pending requestor, fixed priority the highest-priority one.
//!
//! Signals are modelled as dedicated event lines (zero bus traffic); the
//! analysis side over-approximates them with two shared accesses per
//! cross-core edge, so the bound safely dominates.

use crate::trace::{Ev, TaskTrace};
use crate::{noc_route_latency, SimError};
use argo_adl::{Arbitration, CoreId, Interconnect, Platform};
use argo_parir::{ParallelProgram, Step};

/// Result of the timed replay.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Observed makespan.
    pub makespan: u64,
    /// Observed task start times.
    pub task_start: Vec<u64>,
    /// Observed task finish times.
    pub task_finish: Vec<u64>,
    /// Total observed arbitration wait.
    pub bus_wait_cycles: u64,
    /// Total shared transactions.
    pub bus_transactions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Ready to process the next item at the given local time.
    Ready,
    /// Waiting for a signal (parked until it is raised).
    WaitingSignal(usize),
    /// Waiting for a bus grant (request issued at local time).
    WaitingBus,
    /// Plan finished.
    Done,
}

struct CoreCtx {
    time: u64,
    state: CoreState,
    step_idx: usize,
    /// Position within the current task's trace.
    ev_idx: usize,
    /// Index of the task currently executing, if any.
    cur_task: Option<usize>,
}

/// Replays the traces under the platform's timing model.
///
/// # Errors
///
/// Returns [`SimError`] on deadlock (a signal waited on but never raised
/// — cannot happen for validated plans, but checked defensively).
pub fn replay(
    pp: &ParallelProgram,
    platform: &Platform,
    traces: &[TaskTrace],
) -> Result<Replay, SimError> {
    let ncores = platform.core_count();
    let txn = platform.shared.latency;
    let mut cores: Vec<CoreCtx> = (0..ncores)
        .map(|_| CoreCtx {
            time: 0,
            state: CoreState::Ready,
            step_idx: 0,
            ev_idx: 0,
            cur_task: None,
        })
        .collect();
    let mut signal_time: Vec<Option<u64>> = vec![None; pp.signal_count];
    let mut task_start = vec![0u64; pp.graph.len()];
    let mut task_finish = vec![0u64; pp.graph.len()];
    let mut bus_busy_until = 0u64;
    let mut bus_wait = 0u64;
    let mut bus_txns = 0u64;
    // Pending bus requests: (arrival, core, times overtaken).
    let mut pending: Vec<(u64, usize, u64)> = Vec::new();
    // Round-robin pointer for WRR grant order.
    let mut rr_next = 0usize;

    let arb = match &platform.interconnect {
        Interconnect::Bus { arbitration } => Some(arbitration.clone()),
        Interconnect::Noc { .. } => None, // FCFS memory port + route latency
    };

    loop {
        // Wake cores whose awaited signal has been raised.
        for core in cores.iter_mut() {
            if let CoreState::WaitingSignal(s) = core.state {
                if let Some(t) = signal_time[s] {
                    core.time = core.time.max(t);
                    core.state = CoreState::Ready;
                    core.step_idx += 1;
                }
            }
        }

        // Earliest ready core event.
        let next_ready: Option<u64> = cores
            .iter()
            .filter(|c| c.state == CoreState::Ready)
            .map(|c| c.time)
            .min();

        // Possible bus grant instant.
        let grant_instant: Option<u64> = if pending.is_empty() {
            None
        } else {
            let min_arrival = pending.iter().map(|&(a, _, _)| a).min().expect("nonempty");
            Some(min_arrival.max(bus_busy_until))
        };

        // Grant when no ready core could still inject an earlier request.
        if let Some(g) = grant_instant {
            let no_earlier_request = next_ready.is_none_or(|t| t > g);
            if no_earlier_request {
                // Choose among requests that have arrived by g. Both WRR
                // and fixed-priority arbiters are starvation-free, like
                // real interconnect IP: WRR serves in cyclic core order,
                // fixed priority bounds overtaking to once per
                // higher-priority core (anti-starvation aging) — the
                // behaviours the analytic worst-case bounds assume.
                let candidates: Vec<usize> =
                    (0..pending.len()).filter(|&i| pending[i].0 <= g).collect();
                debug_assert!(!candidates.is_empty());
                let chosen = match &arb {
                    Some(Arbitration::FixedPriority { priorities }) => {
                        let allowance = |c: usize| {
                            let my = priorities.get(c).copied().unwrap_or(usize::MAX);
                            priorities.iter().filter(|&&r| r < my).count() as u64
                        };
                        // Anti-starvation aging: requests overtaken to
                        // their limit are served FCFS ahead of everything
                        // (matching the analytic bound); fresh requests go
                        // by priority.
                        let aged = candidates
                            .iter()
                            .copied()
                            .filter(|&i| pending[i].2 >= allowance(pending[i].1))
                            .min_by_key(|&i| (pending[i].0, pending[i].1));
                        match aged {
                            Some(i) => i,
                            None => candidates
                                .into_iter()
                                .min_by_key(|&i| {
                                    priorities.get(pending[i].1).copied().unwrap_or(usize::MAX)
                                })
                                .expect("nonempty"),
                        }
                    }
                    Some(Arbitration::Wrr { .. }) => {
                        // Cyclic order starting at rr_next.
                        *candidates
                            .iter()
                            .min_by_key(|&&i| (pending[i].1 + ncores - rr_next) % ncores)
                            .expect("nonempty")
                    }
                    // TDMA handled per-request below; FCFS for NoC port.
                    _ => candidates
                        .into_iter()
                        .min_by_key(|&i| (pending[i].0, pending[i].1))
                        .expect("nonempty"),
                };
                let (arrival, core, _) = pending.remove(chosen);
                rr_next = (core + 1) % ncores;
                for p in &mut pending {
                    if p.0 <= g {
                        p.2 += 1;
                    }
                }
                let grant = match &arb {
                    Some(Arbitration::Tdma {
                        slot_cycles,
                        total_slots,
                    }) => {
                        // Wait for this core's own slot. Slots of distinct
                        // cores are disjoint by construction, so TDMA
                        // requests never serialize through the shared
                        // busy time — that isolation is the whole point
                        // of TDMA (§ III-B time compositionality).
                        let slot = (*slot_cycles).max(txn);
                        let period = slot * total_slots;
                        let offset = core as u64 * slot;
                        let k = if arrival <= offset {
                            0
                        } else {
                            (arrival - offset).div_ceil(period)
                        };
                        offset + k * period
                    }
                    _ => g,
                };
                let complete = grant + txn;
                if !matches!(&arb, Some(Arbitration::Tdma { .. })) {
                    bus_busy_until = complete;
                }
                bus_wait += grant - arrival;
                bus_txns += 1;
                let route = noc_route_latency(platform, CoreId(core));
                cores[core].time = complete + route;
                cores[core].state = CoreState::Ready;
                continue;
            }
        }

        // Advance the earliest ready core by one item.
        let Some(tmin) = next_ready else {
            // No ready cores: done, deadlocked, or only bus-waiters (the
            // grant branch above would have fired for bus waiters).
            let all_done = cores.iter().all(|c| c.state == CoreState::Done);
            if all_done {
                break;
            }
            if pending.is_empty() {
                return Err(SimError {
                    msg: "deadlock: cores waiting on signals never raised".into(),
                });
            }
            continue;
        };
        let c = cores
            .iter()
            .position(|k| k.state == CoreState::Ready && k.time == tmin)
            .expect("found above");

        // Process the core's current micro-step.
        let plan = &pp.plans[c];
        if let Some(task) = cores[c].cur_task {
            // Replaying a task's trace.
            let trace = &traces[task];
            if cores[c].ev_idx >= trace.len() {
                task_finish[task] = cores[c].time;
                cores[c].cur_task = None;
                cores[c].step_idx += 1;
                continue;
            }
            match trace[cores[c].ev_idx] {
                Ev::Compute(d) => {
                    cores[c].time += d;
                    cores[c].ev_idx += 1;
                }
                Ev::SharedAccess => {
                    pending.push((cores[c].time, c, 0));
                    cores[c].state = CoreState::WaitingBus;
                    cores[c].ev_idx += 1;
                }
            }
            continue;
        }
        match plan.steps.get(cores[c].step_idx) {
            None => {
                cores[c].state = CoreState::Done;
            }
            Some(Step::Exec { task }) => {
                task_start[*task] = cores[c].time;
                cores[c].cur_task = Some(*task);
                cores[c].ev_idx = 0;
            }
            Some(Step::Wait { signal, .. }) => match signal_time[signal.0] {
                Some(t) => {
                    cores[c].time = cores[c].time.max(t);
                    cores[c].step_idx += 1;
                }
                None => {
                    cores[c].state = CoreState::WaitingSignal(signal.0);
                }
            },
            Some(Step::Signal { signal, .. }) => {
                signal_time[signal.0] = Some(cores[c].time);
                cores[c].step_idx += 1;
            }
        }
    }

    let makespan = cores.iter().map(|c| c.time).max().unwrap_or(0);
    Ok(Replay {
        makespan,
        task_start,
        task_finish,
        bus_wait_cycles: bus_wait,
        bus_transactions: bus_txns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Ev;
    use argo_adl::Platform;
    use argo_sched::evaluate_assignment;
    use argo_sched::{CommModel, SchedCtx};

    /// Builds a 2-task parallel program (producer on core 0, consumer on
    /// core 1, one signal) whose traces the tests then override.
    fn two_core_pp(platform: &Platform) -> ParallelProgram {
        let src = r#"
            void main(real a[8], real b[8]) {
                int i;
                for (i = 0; i < 8; i = i + 1) { a[i] = 1.0; }
                for (i = 0; i < 8; i = i + 1) { b[i] = a[i]; }
            }
        "#;
        let program = argo_ir::parse::parse_program(src).unwrap();
        let htg =
            argo_htg::extract::extract(&program, "main", argo_htg::Granularity::Loop).unwrap();
        let costs: std::collections::BTreeMap<_, _> =
            htg.top_level.iter().map(|&t| (t, 100u64)).collect();
        let graph = argo_sched::TaskGraph::from_htg(&htg, &costs);
        let ctx = SchedCtx {
            platform,
            comm: CommModel::Free,
        };
        // Force the two loops onto different cores (decl task with them).
        let assignment: Vec<CoreId> = (0..graph.len())
            .map(|t| {
                if graph.names[t].contains("@s3") || t == graph.len() - 1 {
                    CoreId(1)
                } else {
                    CoreId(0)
                }
            })
            .collect();
        let schedule = evaluate_assignment(&graph, &ctx, &assignment);
        ParallelProgram::build(program, &htg, graph, schedule, platform).unwrap()
    }

    fn traces_for(pp: &ParallelProgram, per_task: TaskTrace) -> Vec<TaskTrace> {
        (0..pp.graph.len()).map(|_| per_task.clone()).collect()
    }

    #[test]
    fn compute_only_traces_sum_on_each_core() {
        let platform = Platform::xentium_manycore(2);
        let pp = two_core_pp(&platform);
        let traces = traces_for(&pp, vec![Ev::Compute(50), Ev::Compute(25)]);
        let r = replay(&pp, &platform, &traces).unwrap();
        assert_eq!(r.bus_transactions, 0);
        assert_eq!(r.bus_wait_cycles, 0);
        // Each core runs its tasks back to back; cross-core signals only
        // order, they cost nothing.
        assert!(r.makespan >= 75);
    }

    #[test]
    fn consumer_starts_after_producer_signal() {
        let platform = Platform::xentium_manycore(2);
        let pp = two_core_pp(&platform);
        let traces = traces_for(&pp, vec![Ev::Compute(100)]);
        let r = replay(&pp, &platform, &traces).unwrap();
        // Find the cross-core edge (producer, consumer).
        let (p, c, _) = pp
            .graph
            .edges
            .iter()
            .find(|&&(f, t, _)| pp.schedule.assignment[f] != pp.schedule.assignment[t])
            .copied()
            .expect("cross edge exists");
        assert!(
            r.task_start[c] >= r.task_finish[p],
            "consumer {} started at {} before producer {} finished at {}",
            c,
            r.task_start[c],
            p,
            r.task_finish[p]
        );
    }

    #[test]
    fn uncontended_shared_access_costs_base_latency() {
        let platform = Platform::xentium_manycore(2);
        let pp = two_core_pp(&platform);
        let mut traces = traces_for(&pp, vec![Ev::Compute(10)]);
        traces[0] = vec![Ev::SharedAccess];
        let r = replay(&pp, &platform, &traces).unwrap();
        assert_eq!(r.bus_transactions, 1);
        assert_eq!(r.bus_wait_cycles, 0, "no contender, no wait");
    }

    #[test]
    fn contending_accesses_serialize_with_bounded_wait() {
        let platform = Platform::xentium_manycore(2);
        let pp = two_core_pp(&platform);
        // Give every task a burst of shared accesses.
        let burst: TaskTrace = (0..8).map(|_| Ev::SharedAccess).collect();
        let traces = traces_for(&pp, burst);
        let r = replay(&pp, &platform, &traces).unwrap();
        assert!(r.bus_transactions >= 16);
        let txn = platform.shared.latency;
        // FCFS with one outstanding per core: each access waits at most
        // (cores) transactions.
        let per_access_bound = 2 * txn;
        assert!(
            r.bus_wait_cycles <= r.bus_transactions * per_access_bound,
            "wait {} exceeds {} per access",
            r.bus_wait_cycles,
            per_access_bound
        );
    }

    #[test]
    fn tdma_request_waits_for_own_slot_only() {
        let platform = Platform::generic_bus(
            2,
            Arbitration::Tdma {
                slot_cycles: 12,
                total_slots: 2,
            },
        );
        let pp = two_core_pp(&platform);
        let mut traces = traces_for(&pp, vec![Ev::Compute(1)]);
        // One access from a core-0 task at t=0.
        let t0 = pp
            .schedule
            .assignment
            .iter()
            .position(|&c| c == CoreId(0))
            .unwrap();
        traces[t0] = vec![Ev::SharedAccess];
        let r = replay(&pp, &platform, &traces).unwrap();
        let slot = platform.shared.latency.max(12);
        let period = slot * 2;
        // Core 0's slot starts at 0 mod period: wait < one period.
        assert!(r.bus_wait_cycles < period);
    }

    #[test]
    fn observed_tdma_wait_within_analytic_bound() {
        let arb = Arbitration::Tdma {
            slot_cycles: 12,
            total_slots: 4,
        };
        let platform = Platform::generic_bus(4, arb.clone());
        let pp = two_core_pp(&platform);
        let burst: TaskTrace = (0..6)
            .flat_map(|_| [Ev::Compute(3), Ev::SharedAccess])
            .collect();
        let traces = traces_for(&pp, burst);
        let r = replay(&pp, &platform, &traces).unwrap();
        let bound = arb.worst_wait(0, 4, platform.shared.latency);
        assert!(
            r.bus_wait_cycles <= r.bus_transactions * bound,
            "wait {} vs per-access bound {bound}",
            r.bus_wait_cycles
        );
    }

    #[test]
    fn makespan_covers_all_task_finishes() {
        let platform = Platform::xentium_manycore(2);
        let pp = two_core_pp(&platform);
        let traces = traces_for(&pp, vec![Ev::Compute(33), Ev::SharedAccess]);
        let r = replay(&pp, &platform, &traces).unwrap();
        for t in 0..pp.graph.len() {
            assert!(r.task_finish[t] <= r.makespan);
            assert!(r.task_start[t] <= r.task_finish[t]);
        }
    }
}
