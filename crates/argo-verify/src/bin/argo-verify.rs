//! `argo-verify` — standalone verification of the seed use cases.
//!
//! ```sh
//! argo-verify --app all --mhp all --cores 4
//! argo-verify --app egpws --mhp static --platform noc --allow dead-store
//! ```
//!
//! Compiles each requested use case through the full toolflow, then
//! runs the independent verifier (race detection, schedule/placement
//! validation, IR lints) over the result. Exits 0 when every report
//! passes the default gate (no error-severity findings), 1 when any
//! gate fails, 2 on usage errors.

use argo_adl::Platform;
use argo_core::{ErrorCode, ToolchainConfig, Toolflow};
use argo_verify::{parse_code, verify_backend, VerifyConfig};
use argo_wcet::system::MhpMode;
use std::process::ExitCode;

const USAGE: &str = "argo-verify — independent static verification (ARGO toolflow)

USAGE:
    argo-verify [OPTIONS]
    argo-verify help

OPTIONS:
    --app NAME[,NAME...]   use cases: egpws, weaa, polka or all (default: all)
    --mhp MODE[,MODE...]   naive|static|windows or all (default: all)
    --platform KIND        bus|noc (default: bus)
    --cores N              core count (default: 4)
    --spm BYTES            per-core scratchpad override (default: platform value)
    --allow CODE           drop findings with this code (repeatable),
                           e.g. --allow dead-store --allow uninit-read
    --seed N               synthetic input seed (default: 42)
    --trace PATH           record spans and write a Chrome trace-event
                           JSON there; a flame summary goes to stderr
    --quiet                only print failing reports
";

fn parse_mhp_list(spec: &str) -> Result<Vec<MhpMode>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        match part {
            "naive" => out.push(MhpMode::Naive),
            "static" => out.push(MhpMode::Static),
            "windows" => out.push(MhpMode::Windows),
            "all" => out.extend([MhpMode::Naive, MhpMode::Static, MhpMode::Windows]),
            other => return Err(format!("unknown MHP mode `{other}`")),
        }
    }
    if out.is_empty() {
        return Err("empty MHP list".into());
    }
    Ok(out)
}

struct Opts {
    apps: Vec<String>,
    mhp: Vec<MhpMode>,
    noc: bool,
    cores: usize,
    spm: Option<u64>,
    allow: Vec<ErrorCode>,
    seed: u64,
    trace: Option<String>,
    quiet: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        apps: vec!["egpws".into(), "weaa".into(), "polka".into()],
        mhp: vec![MhpMode::Naive, MhpMode::Static, MhpMode::Windows],
        noc: false,
        cores: 4,
        spm: None,
        allow: Vec::new(),
        seed: 42,
        trace: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--app" => {
                let v = value()?;
                if v == "all" {
                    opts.apps = vec!["egpws".into(), "weaa".into(), "polka".into()];
                } else {
                    opts.apps = v
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
            }
            "--mhp" => opts.mhp = parse_mhp_list(&value()?)?,
            "--platform" => match value()?.as_str() {
                "bus" => opts.noc = false,
                "noc" => opts.noc = true,
                other => return Err(format!("unknown platform `{other}`")),
            },
            "--cores" => {
                opts.cores = value()?
                    .parse()
                    .map_err(|_| "bad --cores value".to_string())?;
                if opts.cores == 0 {
                    return Err("--cores must be >= 1".into());
                }
            }
            "--spm" => {
                opts.spm = Some(
                    value()?
                        .parse()
                        .map_err(|_| "bad --spm value".to_string())?,
                )
            }
            "--allow" => {
                let v = value()?;
                opts.allow
                    .push(parse_code(&v).ok_or_else(|| format!("unknown finding code `{v}`"))?);
            }
            "--seed" => {
                opts.seed = value()?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?
            }
            "--trace" => opts.trace = Some(value()?.to_string()),
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn build_platform(opts: &Opts) -> Platform {
    let mut platform = if opts.noc {
        // Squarest grid holding the requested core count.
        let rows = (1..=opts.cores)
            .filter(|&r| opts.cores.is_multiple_of(r))
            .min_by_key(|&r| (opts.cores / r).abs_diff(r))
            .unwrap_or(1);
        Platform::kit_tile_noc(rows, opts.cores / rows)
    } else {
        Platform::xentium_manycore(opts.cores)
    };
    if let Some(spm) = opts.spm {
        for core in &mut platform.cores {
            core.spm_bytes = spm;
        }
    }
    platform
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "help" || a == "--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.trace.is_some() {
        argo_trace::enable_spans();
        argo_trace::enable_metrics();
    }
    let platform = build_platform(&opts);
    let use_cases = argo_apps::all_use_cases(opts.seed);

    let mut failed = false;
    for name in &opts.apps {
        let Some(uc) = use_cases.iter().find(|u| u.name == name.as_str()) else {
            eprintln!("error: unknown app `{name}` (expected egpws, weaa or polka)");
            return ExitCode::from(2);
        };
        for &mhp in &opts.mhp {
            let cfg = ToolchainConfig {
                mhp,
                ..Default::default()
            };
            let flow = Toolflow::borrowed(&uc.program, uc.entry)
                .platform(&platform)
                .config(cfg);
            let result = match flow.run() {
                Ok(r) => r,
                Err(d) => {
                    eprintln!("{name} [{mhp}]: pipeline failed: {d}");
                    failed = true;
                    continue;
                }
            };
            let vcfg = VerifyConfig {
                mhp,
                allow: opts.allow.clone(),
            };
            let report = verify_backend(&result, &platform, &vcfg);
            let gated = report.gate().is_err();
            failed |= gated;
            if !opts.quiet || gated {
                print!("{name}: {}", report.render_text());
            }
        }
    }
    if let Some(path) = &opts.trace {
        if let Err(e) =
            argo_trace::write_chrome_trace(argo_trace::global(), std::path::Path::new(path))
        {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprint!(
            "{}",
            argo_trace::flame_summary(&argo_trace::global().snapshot(), 12)
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
