//! May-happen-in-parallel data-race detection.
//!
//! Re-derives, independently of the extractor and the scheduler, which
//! task pairs of the final [`TaskGraph`] may overlap in time — under
//! the same three MHP notions the system-level WCET analysis uses —
//! and reports every unordered pair with conflicting accesses to a
//! common variable:
//!
//! * [`MhpMode::Naive`] — dependence-edge reachability only (no
//!   schedule knowledge): two tasks are ordered iff the task graph
//!   orders them transitively. This checks the *extractor's* claim
//!   that its edges cover every conflict, for any schedule.
//! * [`MhpMode::Static`] — edge reachability plus same-core execution
//!   order from the concrete schedule, closed transitively (the exact
//!   relation `argo_wcet::system` builds). This checks the pair
//!   (extractor, scheduler).
//! * [`MhpMode::Windows`] — time-window overlap of the
//!   interference-inflated start/finish times the analysis published:
//!   different-core tasks whose windows overlap may run in parallel.
//!
//! Conflicts are computed from the HTG's transitive read/write sets
//! (whole subtree), minus the variables the parallel model privatized
//! per core. Array conflicts are refined with
//! [`argo_htg::deps::array_access_range`]: a pair only races on an
//! array if some written index range may intersect the other task's
//! read or written range ([`argo_htg::deps::AccessRange::disjoint`]
//! proves the complement). Scalars keep whole-cell treatment.

use crate::{Finding, Severity};
use argo_core::{BackendResult, Diagnostic, ErrorCode, Stage};
use argo_htg::deps::array_access_range;
use argo_ir::ast::{Stmt, StmtId};
use argo_ir::validate::symbol_table;
use argo_sched::TaskGraph;
use argo_wcet::system::MhpMode;
use std::collections::BTreeMap;

/// Pairwise may-happen-in-parallel relation over the `n` tasks of a
/// flat task graph (symmetric, irreflexive).
fn mhp_matrix(result: &BackendResult, mode: MhpMode) -> Vec<Vec<bool>> {
    let pp = &result.parallel;
    let n = pp.graph.len();
    let mut reach = vec![vec![false; n]; n];
    for &(f, t, _) in &pp.graph.edges {
        reach[f][t] = true;
    }
    if mode != MhpMode::Naive {
        // Same-core execution order is also a happens-before source.
        for core in 0..pp.plans.len() {
            let on_core = pp.schedule.tasks_on(argo_adl::CoreId(core));
            for w in on_core.windows(2) {
                reach[w[0]][w[1]] = true;
            }
        }
    }
    // Transitive closure (Floyd–Warshall over the boolean matrix).
    for k in 0..n {
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (dst, &via_k) in row.iter_mut().zip(&row_k) {
                    *dst |= via_k;
                }
            }
        }
    }
    let mut mhp = vec![vec![false; n]; n];
    for a in 0..n {
        for b in 0..n {
            mhp[a][b] = a != b && !reach[a][b] && !reach[b][a];
        }
    }
    if mode == MhpMode::Windows {
        // Tighten further: the analysis claims tasks only overlap when
        // their published (inflated) time windows do and they sit on
        // different cores.
        let (start, finish) = (&result.system.start, &result.system.finish);
        for a in 0..n {
            for b in 0..n {
                if pp.schedule.assignment[a] == pp.schedule.assignment[b] {
                    mhp[a][b] = false;
                } else {
                    mhp[a][b] &= start[a] < finish[b] && start[b] < finish[a];
                }
            }
        }
    }
    mhp
}

/// The conflict kinds a pair of tasks can exhibit on one variable.
fn conflict_kinds(
    stmts_a: &[&Stmt],
    stmts_b: &[&Stmt],
    var: &str,
    is_array: bool,
) -> Vec<&'static str> {
    if !is_array {
        // Scalars are single cells; the set intersection already
        // proved the conflict.
        return vec!["scalar"];
    }
    let wa = array_access_range(stmts_a, var, true);
    let ra = array_access_range(stmts_a, var, false);
    let wb = array_access_range(stmts_b, var, true);
    let rb = array_access_range(stmts_b, var, false);
    let mut kinds = Vec::new();
    if !wa.disjoint(wb) {
        kinds.push("write/write");
    }
    if !wa.disjoint(rb) {
        kinds.push("write/read");
    }
    if !ra.disjoint(wb) {
        kinds.push("read/write");
    }
    kinds
}

/// Detects data races in a finished backend result under `mode`.
///
/// Returns one [`ErrorCode::DataRace`] finding per (task pair,
/// variable) whose accesses conflict and whose tasks are unordered
/// under `mode`, in deterministic (pair, variable) order.
pub fn check_races(result: &BackendResult, mode: MhpMode) -> Vec<Finding> {
    let pp = &result.parallel;
    let htg = &result.htg;
    let graph: &TaskGraph = &pp.graph;
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    let mhp = mhp_matrix(result, mode);

    // StmtId → AST statement, for the array-range refinement. Task
    // stmt ids refer to the transformed program the parallel model
    // carries.
    let entry_fn = pp
        .program
        .function(&pp.entry)
        .expect("parallel program entry exists");
    let mut by_id: BTreeMap<StmtId, &Stmt> = BTreeMap::new();
    argo_ir::visit::walk_stmts(&entry_fn.body, &mut |s| {
        by_id.insert(s.id, s);
    });
    let symbols = symbol_table(entry_fn);
    let task_stmts = |g_idx: usize| -> Vec<&Stmt> {
        htg.task(graph.htg_ids[g_idx])
            .stmts
            .iter()
            .filter_map(|id| by_id.get(id).copied())
            .collect()
    };

    let mut findings = Vec::new();
    for (a, row) in mhp.iter().enumerate() {
        for (b, &parallel) in row.iter().enumerate().skip(a + 1) {
            if !parallel {
                continue;
            }
            let ta = htg.task(graph.htg_ids[a]);
            let tb = htg.task(graph.htg_ids[b]);
            // Conflict variables: one side writes, the other touches.
            let mut vars: Vec<&String> = ta
                .writes
                .iter()
                .filter(|v| tb.reads.contains(*v) || tb.writes.contains(*v))
                .chain(tb.writes.iter().filter(|v| ta.reads.contains(*v)))
                .filter(|v| !pp.privatized.contains(*v))
                .collect();
            vars.sort();
            vars.dedup();
            if vars.is_empty() {
                continue;
            }
            let (sa, sb) = (task_stmts(a), task_stmts(b));
            for var in vars {
                let is_array = symbols.get(var).is_some_and(|ty| ty.is_array());
                let kinds = conflict_kinds(&sa, &sb, var, is_array);
                if kinds.is_empty() {
                    continue; // ranges proved disjoint
                }
                let message = format!(
                    "tasks `{}` and `{}` may happen in parallel under {mode} \
                     and conflict on `{var}` ({})",
                    ta.name,
                    tb.name,
                    kinds.join("+"),
                );
                findings.push(Finding::new(
                    Severity::Error,
                    Diagnostic::new(Stage::Verify, ErrorCode::DataRace, message)
                        .with_entity(var.clone()),
                ));
            }
        }
    }
    findings
}
