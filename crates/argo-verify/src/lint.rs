//! IR lints over the slot-resolved mirror ([`argo_ir::resolve`]).
//!
//! Four lints, all [`Severity::Warning`] (they flag suspicious code,
//! not demonstrated unsoundness, so they never fail the default gate):
//!
//! * **uninit-read** — definite-assignment dataflow over slot-indexed
//!   bitsets (the same shape as the interval fixpoint of the value
//!   analysis): a scalar slot read on some path before any assignment
//!   reaches it. Branch joins intersect; a branch that definitely
//!   returns is excluded from the join; loop bodies may run zero
//!   times, so their definitions are not definite afterwards.
//! * **dead-store** — a scalar assigned somewhere but never read
//!   anywhere in its function (parameters and loop induction
//!   variables are exempt).
//! * **unreachable-stmt** — a statement following a `return` in the
//!   same block (one finding per block, at the first dead statement).
//! * **unbounded-loop** — a `while` with no annotated trip-count bound
//!   (`bound == 0`); the frontend rejects these before WCET analysis,
//!   so this fires only in standalone lint runs.
//!
//! One finding per (function, slot) or (function, statement);
//! deterministic order (functions in program order, slots/statements
//! in visit order) before the report-level stable sort.

use crate::{Finding, Severity};
use argo_core::{Diagnostic, ErrorCode, Stage};
use argo_ir::ast::Program;
use argo_ir::resolve::{RArg, RCall, RExpr, RFunction, RLValue, RStmtKind, Resolution, Slot};

/// Lints every function of `program` on its slot-resolved mirror.
pub fn lint_program(program: &Program) -> Vec<Finding> {
    let res = Resolution::of(program);
    let mut findings = Vec::new();
    for f in &res.functions {
        FnLinter::new(&res, f).run(&mut findings);
    }
    findings
}

struct FnLinter<'a> {
    res: &'a Resolution,
    f: &'a RFunction,
    /// Slots already reported as possibly-uninitialized reads.
    uninit_reported: Vec<bool>,
    /// Slots read anywhere (any path, any position).
    read: Vec<bool>,
    /// Scalar slots assigned anywhere.
    stored: Vec<bool>,
    /// Slots exempt from dead-store (params, loop vars, arrays).
    exempt: Vec<bool>,
    findings: Vec<Finding>,
}

impl<'a> FnLinter<'a> {
    fn new(res: &'a Resolution, f: &'a RFunction) -> FnLinter<'a> {
        let n = f.frame_len as usize;
        let mut exempt = vec![false; n];
        for p in &f.params {
            exempt[p.slot.idx()] = true;
        }
        FnLinter {
            res,
            f,
            uninit_reported: vec![false; n],
            read: vec![false; n],
            stored: vec![false; n],
            exempt,
            findings: Vec::new(),
        }
    }

    fn fn_name(&self) -> &str {
        self.res.name(self.f.name)
    }

    fn slot_name(&self, slot: Slot) -> &str {
        self.res.name(self.f.slot_symbols[slot.idx()])
    }

    fn warn(&mut self, code: ErrorCode, entity: String, message: String) {
        self.findings.push(Finding::new(
            Severity::Warning,
            Diagnostic::new(Stage::Verify, code, message).with_entity(entity),
        ));
    }

    fn run(mut self, out: &mut Vec<Finding>) {
        let mut defined = vec![false; self.f.frame_len as usize];
        for p in &self.f.params {
            defined[p.slot.idx()] = true;
        }
        let body: Vec<u32> = self.f.body.clone();
        self.scan_block(&body, &mut defined);
        for slot in 0..self.stored.len() {
            if self.stored[slot] && !self.read[slot] && !self.exempt[slot] {
                let var = self.slot_name(Slot(slot as u32)).to_string();
                let func = self.fn_name().to_string();
                self.warn(
                    ErrorCode::DeadStore,
                    format!("{func}::{var}"),
                    format!("`{var}` is assigned in `{func}` but its value is never read"),
                );
            }
        }
        out.append(&mut self.findings);
    }

    /// Scans a statement list; returns `true` when the block
    /// definitely returns on every path.
    fn scan_block(&mut self, stmts: &[u32], defined: &mut Vec<bool>) -> bool {
        for (i, &si) in stmts.iter().enumerate() {
            let returns = self.scan_stmt(si, defined);
            if returns {
                if i + 1 < stmts.len() {
                    let next = self.f.stmt(stmts[i + 1]);
                    let func = self.fn_name().to_string();
                    self.warn(
                        ErrorCode::UnreachableStmt,
                        format!("{func}@s{}", next.id.0),
                        format!(
                            "statement s{} in `{func}` follows a return and can never execute",
                            next.id.0
                        ),
                    );
                    // Keep linting the dead tail (secondary findings),
                    // but on a throwaway state: it never executes.
                    let mut dead_state = defined.clone();
                    for &sj in &stmts[i + 1..] {
                        self.scan_stmt(sj, &mut dead_state);
                    }
                }
                return true;
            }
        }
        false
    }

    /// Scans one statement; returns `true` when it definitely returns.
    fn scan_stmt(&mut self, si: u32, defined: &mut Vec<bool>) -> bool {
        // Clone the kind handle implicitly by splitting borrows: the
        // statement is read-only, the linter state is mutable.
        let stmt = self.f.stmt(si);
        match &stmt.kind {
            RStmtKind::DeclScalar { slot, init, .. } => {
                if let Some(e) = init {
                    self.scan_expr(e, defined);
                    self.stored[slot.idx()] = true;
                }
                defined[slot.idx()] = init.is_some();
                false
            }
            RStmtKind::DeclArray { slot, .. } => {
                defined[slot.idx()] = true;
                self.exempt[slot.idx()] = true;
                false
            }
            RStmtKind::Assign { target, value } => {
                self.scan_expr(value, defined);
                match target {
                    RLValue::Var(slot) => {
                        self.stored[slot.idx()] = true;
                        defined[slot.idx()] = true;
                    }
                    RLValue::Elem { array, indices } => {
                        for e in indices {
                            self.scan_expr(e, defined);
                        }
                        // Writing an element is a use of the array.
                        self.read[array.idx()] = true;
                    }
                }
                false
            }
            RStmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.scan_expr(cond, defined);
                let mut s_then = defined.clone();
                let mut s_else = defined.clone();
                let r_then = self.scan_block(then_blk, &mut s_then);
                let r_else = self.scan_block(else_blk, &mut s_else);
                match (r_then, r_else) {
                    (true, true) => return true,
                    (true, false) => *defined = s_else,
                    (false, true) => *defined = s_then,
                    (false, false) => {
                        for (d, (&a, &b)) in
                            defined.iter_mut().zip(s_then.iter().zip(s_else.iter()))
                        {
                            *d = a && b;
                        }
                    }
                }
                false
            }
            RStmtKind::For {
                var, lo, hi, body, ..
            } => {
                self.scan_expr(lo, defined);
                self.scan_expr(hi, defined);
                defined[var.idx()] = true;
                self.exempt[var.idx()] = true;
                // Zero-trip possible: body definitions are not definite.
                let mut s_body = defined.clone();
                self.scan_block(body, &mut s_body);
                false
            }
            RStmtKind::While { cond, bound, body } => {
                if *bound == 0 {
                    let func = self.fn_name().to_string();
                    self.warn(
                        ErrorCode::UnboundedLoop,
                        format!("{func}@s{}", stmt.id.0),
                        format!(
                            "while loop s{} in `{func}` carries no trip-count bound; \
                             WCET analysis will reject it",
                            stmt.id.0
                        ),
                    );
                }
                self.scan_expr(cond, defined);
                let mut s_body = defined.clone();
                self.scan_block(body, &mut s_body);
                false
            }
            RStmtKind::Call(call) => {
                self.scan_call(call, defined);
                false
            }
            RStmtKind::Return { value } => {
                if let Some(e) = value {
                    self.scan_expr(e, defined);
                }
                true
            }
        }
    }

    fn scan_expr(&mut self, e: &RExpr, defined: &[bool]) {
        match e {
            RExpr::Int(_) | RExpr::Real(_) | RExpr::Bool(_) => {}
            RExpr::Var(slot) => {
                self.read[slot.idx()] = true;
                if !defined[slot.idx()] && !self.uninit_reported[slot.idx()] {
                    self.uninit_reported[slot.idx()] = true;
                    let var = self.slot_name(*slot).to_string();
                    let func = self.fn_name().to_string();
                    self.warn(
                        ErrorCode::UninitRead,
                        format!("{func}::{var}"),
                        format!("`{var}` may be read in `{func}` before any assignment reaches it"),
                    );
                }
            }
            RExpr::Elem { array, indices } => {
                self.read[array.idx()] = true;
                for i in indices {
                    self.scan_expr(i, defined);
                }
            }
            RExpr::Unary { arg, .. } => self.scan_expr(arg, defined),
            RExpr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs, defined);
                self.scan_expr(rhs, defined);
            }
            RExpr::Call(call) => self.scan_call(call, defined),
            RExpr::Cast { arg, .. } => self.scan_expr(arg, defined),
        }
    }

    fn scan_call(&mut self, call: &RCall, defined: &[bool]) {
        match call {
            RCall::Intrinsic { args, .. } => {
                for a in args {
                    self.scan_expr(a, defined);
                }
            }
            RCall::User { args, .. } => {
                for a in args {
                    match a {
                        RArg::Scalar { expr, .. } => self.scan_expr(expr, defined),
                        RArg::Array { slot } => {
                            // Passing an array is a use (and the callee
                            // may write it; arrays stay defined).
                            self.read[slot.idx()] = true;
                        }
                        RArg::ArrayMismatch { .. } => {}
                    }
                }
            }
            // The validator rejects these before linting matters.
            RCall::UserBadArity { .. } | RCall::Unknown { .. } => {}
        }
    }
}
