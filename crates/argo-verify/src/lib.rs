//! # argo-verify — independent static verification of the toolflow
//!
//! The pipeline *claims* its parallelization is sound: the extractor
//! claims its dependence edges cover every conflict, the scheduler
//! claims its schedule respects them, the placement claims it fits the
//! scratchpads, the parallel model claims its signal/wait pairs realize
//! the cross-core edges. This crate re-derives and checks each claim
//! from the finished [`BackendResult`], independently of the passes
//! that produced it — the correctness backbone PR 1's reactively-fixed
//! dependence bug showed the golden-report diff alone cannot be.
//!
//! Three passes, all emitting [`Finding`]s (a [`Severity`] plus a
//! structured [`Diagnostic`]):
//!
//! * [`race`] — may-happen-in-parallel data-race detection: MHP task
//!   pairs under each [`MhpMode`] (and from the concrete schedule),
//!   intersected read/write sets, array conflicts refined with
//!   [`argo_htg::deps::AccessRange`] disjointness;
//! * [`schedule`] — schedule/placement validation: precedence edges
//!   (via the `TaskGraphIndex`), timing consistency, per-core
//!   exclusivity, SPM byte budgets, signal/wait comm ordering;
//! * [`lint`] — IR lints on the slot-resolved mirror
//!   ([`argo_ir::resolve`]): uninitialized read (def-before-use
//!   dataflow over slot-indexed bitsets), dead store, unreachable
//!   statement, unbounded loop.
//!
//! ## Verify and lint codes
//!
//! | code | severity | what it catches | how to allow |
//! |------|----------|-----------------|--------------|
//! | `data-race` | error | unordered MHP task pair with conflicting accesses to one variable | `--allow data-race` / [`VerifyConfig::allow`] |
//! | `unsound-schedule` | error | precedence, timing-consistency, core-range or exclusivity violation in a schedule | `--allow unsound-schedule` |
//! | `placement-overflow` | error | a memory placement exceeding a core's scratchpad byte budget | `--allow placement-overflow` |
//! | `comm-ordering` | error | per-core plans mis-ordering signal/wait around the tasks they protect, or a cross-core edge with no synchronization at all | `--allow comm-ordering` |
//! | `uninit-read` | warning | a scalar that may be read before any assignment reaches it | `--allow uninit-read` |
//! | `dead-store` | warning | a scalar assigned but never read anywhere in its function | `--allow dead-store` |
//! | `unreachable-stmt` | warning | a statement after a `return` in the same block | `--allow unreachable-stmt` |
//! | `unbounded-loop` | warning | a `while` loop carrying no annotated trip-count bound | `--allow unbounded-loop` |
//!
//! The default gate ([`VerifyReport::gate`]) fails only on
//! [`Severity::Error`] findings, so warning-level lints never break a
//! clean pipeline run; CI runs the verifier over every seed app × MHP
//! mode and expects zero findings at that severity.
//!
//! Reports are deterministic: findings are sorted by (severity,
//! code, entity, message) and [`VerifyReport::render_text`] contains
//! no timing or environment data, so verifier output is byte-identical
//! across runs and thread counts (pinned by golden tests).

pub mod lint;
pub mod race;
pub mod schedule;
pub mod session;

pub use session::ToolflowVerifyExt;

use argo_adl::Platform;
use argo_core::{Artifact, BackendResult, Diagnostic, ErrorCode, Fingerprint, FingerprintHasher};
use argo_wcet::system::MhpMode;
use std::fmt;

/// How bad a finding is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates.
    Note,
    /// Suspicious but not demonstrably unsound; never gates by default.
    Warning,
    /// A soundness violation; fails the default gate.
    Error,
}

impl Severity {
    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One verifier finding: a severity plus the structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is (drives the gate).
    pub severity: Severity,
    /// What, where and why (always at [`argo_core::Stage::Verify`]).
    pub diagnostic: Diagnostic,
}

impl Finding {
    /// Builds a finding.
    pub fn new(severity: Severity, diagnostic: Diagnostic) -> Finding {
        Finding {
            severity,
            diagnostic,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.diagnostic;
        write!(f, "{} [{}/{}]", self.severity, d.stage, d.code)?;
        if let Some(entity) = &d.entity {
            write!(f, " at `{entity}`")?;
        }
        write!(f, ": {}", d.message)
    }
}

/// Verifier configuration: the MHP mode the race detector uses and the
/// per-lint allow list.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// MHP precision for the race detector (matches the system-level
    /// analysis mode the pipeline ran under).
    pub mhp: MhpMode,
    /// Codes to drop from the report entirely (see the code table in
    /// the [crate docs](crate)).
    pub allow: Vec<ErrorCode>,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            mhp: MhpMode::Static,
            allow: Vec::new(),
        }
    }
}

/// Parses a kebab-case code label (as printed in reports and accepted
/// by `--allow`) back to its [`ErrorCode`].
pub fn parse_code(label: &str) -> Option<ErrorCode> {
    let all = [
        ErrorCode::DataRace,
        ErrorCode::UnsoundSchedule,
        ErrorCode::PlacementOverflow,
        ErrorCode::CommOrdering,
        ErrorCode::UninitRead,
        ErrorCode::DeadStore,
        ErrorCode::UnreachableStmt,
        ErrorCode::UnboundedLoop,
    ];
    all.into_iter().find(|c| c.label() == label)
}

/// The verifier's output artifact: every surviving finding, stably
/// ordered, plus the MHP mode the race detector ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// MHP mode the race detector used.
    pub mhp: MhpMode,
    /// Findings sorted by (severity desc, code, entity, message).
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// Number of findings at [`Severity::Error`].
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// `true` when no findings survived the allow list.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The default gate: `Err` carrying the first error-severity
    /// finding's diagnostic, `Ok` otherwise (warnings never gate).
    ///
    /// # Errors
    ///
    /// The first [`Severity::Error`] finding, as a [`Diagnostic`].
    pub fn gate(&self) -> Result<(), Diagnostic> {
        match self.findings.iter().find(|f| f.severity == Severity::Error) {
            Some(f) => Err(f.diagnostic.clone()),
            None => Ok(()),
        }
    }

    /// Deterministic human-readable rendering (no timing, no
    /// environment data — byte-identical across runs and threads).
    pub fn render_text(&self) -> String {
        let mut out = format!("verify report (mhp={}): ", self.mhp);
        if self.is_clean() {
            out.push_str("clean\n");
            return out;
        }
        let errors = self.error_count();
        let warnings = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "{} finding{} ({errors} error{}, {warnings} warning{})\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        ));
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

impl Artifact for VerifyReport {
    fn kind(&self) -> &'static str {
        "verify-report"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str("verify-report");
        h.write_str(&self.mhp.to_string());
        for f in &self.findings {
            h.write_str(f.severity.label());
            h.write_str(f.diagnostic.code.label());
            h.write_str(f.diagnostic.entity.as_deref().unwrap_or(""));
            h.write_str(&f.diagnostic.message);
        }
        h.finish()
    }

    fn summary(&self) -> String {
        if self.is_clean() {
            "clean".to_string()
        } else {
            format!(
                "{} findings ({} errors)",
                self.findings.len(),
                self.error_count()
            )
        }
    }
}

/// Sorts findings into the stable report order: severity (errors
/// first), then code label, entity, message.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.diagnostic.code.label().cmp(b.diagnostic.code.label()))
            .then_with(|| a.diagnostic.entity.cmp(&b.diagnostic.entity))
            .then_with(|| a.diagnostic.message.cmp(&b.diagnostic.message))
    });
}

/// Runs all three verification passes over a finished backend result
/// and returns the stably-ordered report.
///
/// This is the standalone entry point (CLI, DSE rows, tests); inside a
/// session prefer [`ToolflowVerifyExt::run_verify`], which adds
/// observer events.
pub fn verify_backend(
    result: &BackendResult,
    platform: &Platform,
    cfg: &VerifyConfig,
) -> VerifyReport {
    let pp = &result.parallel;
    let mut findings = race::check_races(result, cfg.mhp);
    findings.extend(schedule::check_schedule(
        &pp.graph,
        platform,
        &pp.schedule,
        Some(&pp.memory_map),
    ));
    findings.extend(schedule::check_plans(pp));
    findings.extend(lint::lint_program(&pp.program));
    findings.retain(|f| !cfg.allow.contains(&f.diagnostic.code));
    sort_findings(&mut findings);
    VerifyReport {
        mhp: cfg.mhp,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::Stage;

    fn finding(sev: Severity, code: ErrorCode, entity: &str, msg: &str) -> Finding {
        Finding::new(
            sev,
            Diagnostic::new(Stage::Verify, code, msg).with_entity(entity),
        )
    }

    #[test]
    fn sort_puts_errors_first_then_code_entity_message() {
        let mut v = vec![
            finding(Severity::Warning, ErrorCode::DeadStore, "f::x", "w1"),
            finding(Severity::Error, ErrorCode::UnsoundSchedule, "t1", "e2"),
            finding(Severity::Error, ErrorCode::DataRace, "buf", "e1"),
            finding(Severity::Warning, ErrorCode::DeadStore, "f::a", "w2"),
        ];
        sort_findings(&mut v);
        let labels: Vec<_> = v
            .iter()
            .map(|f| (f.severity.label(), f.diagnostic.entity.clone().unwrap()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("error", "buf".to_string()),
                ("error", "t1".to_string()),
                ("warning", "f::a".to_string()),
                ("warning", "f::x".to_string()),
            ]
        );
    }

    #[test]
    fn gate_fails_only_on_errors() {
        let clean = VerifyReport {
            mhp: MhpMode::Static,
            findings: vec![finding(
                Severity::Warning,
                ErrorCode::DeadStore,
                "f::x",
                "w",
            )],
        };
        assert!(clean.gate().is_ok());
        let racy = VerifyReport {
            mhp: MhpMode::Static,
            findings: vec![finding(Severity::Error, ErrorCode::DataRace, "buf", "e")],
        };
        let d = racy.gate().unwrap_err();
        assert_eq!(d.code, ErrorCode::DataRace);
        assert_eq!(d.stage, Stage::Verify);
    }

    #[test]
    fn render_text_is_deterministic_and_labelled() {
        let r = VerifyReport {
            mhp: MhpMode::Naive,
            findings: vec![
                finding(Severity::Error, ErrorCode::DataRace, "buf", "conflict"),
                finding(Severity::Warning, ErrorCode::UninitRead, "f::x", "maybe"),
            ],
        };
        let t = r.render_text();
        assert_eq!(t, r.render_text());
        assert!(t.starts_with("verify report (mhp=naive): 2 findings (1 error, 1 warning)"));
        assert!(
            t.contains("error [verify/data-race] at `buf`: conflict"),
            "{t}"
        );
        assert!(
            t.contains("warning [verify/uninit-read] at `f::x`: maybe"),
            "{t}"
        );
    }

    #[test]
    fn parse_code_round_trips_all_verify_codes() {
        for label in [
            "data-race",
            "unsound-schedule",
            "placement-overflow",
            "comm-ordering",
            "uninit-read",
            "dead-store",
            "unreachable-stmt",
            "unbounded-loop",
        ] {
            let code = parse_code(label).unwrap_or_else(|| panic!("{label} should parse"));
            assert_eq!(code.label(), label);
        }
        assert_eq!(parse_code("no-such-code"), None);
    }

    #[test]
    fn report_fingerprint_tracks_contents() {
        let a = VerifyReport {
            mhp: MhpMode::Static,
            findings: vec![],
        };
        let b = VerifyReport {
            mhp: MhpMode::Static,
            findings: vec![finding(Severity::Error, ErrorCode::DataRace, "buf", "e")],
        };
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.summary(), "clean");
        assert_eq!(b.summary(), "1 findings (1 errors)");
    }
}
