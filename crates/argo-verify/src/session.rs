//! The `run_verify` session stage: observer-bracketed verification of
//! a finished backend result, as an extension trait on
//! [`Toolflow`] (argo-core stays free of a dependency on this crate).

use crate::{verify_backend, VerifyConfig, VerifyReport};
use argo_core::{Artifact, BackendResult, Diagnostic, ErrorCode, Stage, StageSummary, Toolflow};
use std::time::Instant;

/// Adds the verification stage to [`Toolflow`] sessions.
pub trait ToolflowVerifyExt {
    /// Runs the full verification suite (race detection under the
    /// session's configured MHP mode, schedule/placement validation,
    /// IR lints) over `result`, bracketed by
    /// [`Stage::Verify`] observer events on the session's observer.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::MissingPlatform`] when the session has no platform
    /// bound. Findings do *not* error here — inspect the returned
    /// report (or its [`VerifyReport::gate`]).
    fn run_verify(&self, result: &BackendResult) -> Result<VerifyReport, Diagnostic>;
}

impl ToolflowVerifyExt for Toolflow<'_> {
    fn run_verify(&self, result: &BackendResult) -> Result<VerifyReport, Diagnostic> {
        let Some(platform) = self.configured_platform() else {
            let d = Diagnostic::new(
                Stage::Verify,
                ErrorCode::MissingPlatform,
                "session has no platform; call Toolflow::platform(..) before verifying",
            );
            if let Some(obs) = self.configured_observer() {
                obs.on_stage_start(Stage::Verify, self.next_observer_seq());
                obs.on_stage_error(Stage::Verify, self.next_observer_seq(), &d);
            }
            return Err(d);
        };
        let cfg = VerifyConfig {
            mhp: self.cfg().mhp,
            ..VerifyConfig::default()
        };
        let obs = self.configured_observer();
        if let Some(obs) = obs {
            obs.on_stage_start(Stage::Verify, self.next_observer_seq());
        }
        let _span = argo_trace::span(argo_core::stage_span_name(Stage::Verify));
        let t0 = Instant::now();
        let report = verify_backend(result, platform, &cfg);
        if let Some(obs) = obs {
            obs.on_stage_finish(&StageSummary {
                seq: self.next_observer_seq(),
                stage: Stage::Verify,
                fingerprint: report.fingerprint(),
                detail: report.summary(),
                elapsed: t0.elapsed(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_adl::Platform;
    use argo_core::{CollectingObserver, StageEvent, ToolchainConfig};
    use argo_ir::parse::parse_program;

    const PIPE: &str = r#"
        void main(real a[64], real b[64], real c[64], real d[64]) {
            int i;
            for (i = 0; i < 64; i = i + 1) { b[i] = a[i] * 2.0; }
            for (i = 0; i < 64; i = i + 1) { c[i] = a[i] + 1.0; }
            for (i = 0; i < 64; i = i + 1) { d[i] = b[i] + c[i]; }
        }
    "#;

    #[test]
    fn run_verify_is_clean_on_a_sound_pipeline_and_emits_events() {
        let program = parse_program(PIPE).unwrap();
        let platform = Platform::xentium_manycore(2);
        let obs = CollectingObserver::default();
        let flow = Toolflow::new(program, "main")
            .platform(&platform)
            .config(ToolchainConfig::default())
            .observer(&obs);
        let result = flow.run().expect("compile");
        let report = flow.run_verify(&result).expect("verify runs");
        assert!(report.is_clean(), "{}", report.render_text());

        let events = obs.events();
        let started = events
            .iter()
            .any(|e| matches!(e, StageEvent::Started(Stage::Verify, _)));
        let finished = events.iter().any(
            |e| matches!(e, StageEvent::Finished(s) if s.stage == Stage::Verify && s.detail == "clean"),
        );
        assert!(started && finished, "verify events missing: {events:?}");
    }

    #[test]
    fn run_verify_without_platform_reports_missing_platform() {
        let program = parse_program(PIPE).unwrap();
        let result = {
            let platform = Platform::xentium_manycore(2);
            Toolflow::new(program.clone(), "main")
                .platform(&platform)
                .run()
                .expect("compile")
        };
        let flow = Toolflow::new(program, "main");
        let err = flow.run_verify(&result).unwrap_err();
        assert_eq!(err.code, ErrorCode::MissingPlatform);
        assert_eq!(err.stage, Stage::Verify);
    }
}
