//! Schedule, placement and communication-ordering validation.
//!
//! [`check_schedule`] re-checks a [`Schedule`] against the
//! [`TaskGraph`] it claims to realize — every constraint the
//! schedulers promise to uphold is re-derived here independently:
//!
//! * structural sanity (assignment length, core ids in range, finish =
//!   start + cost);
//! * acyclicity of the graph itself (a Kahn pass, so a cyclic graph
//!   yields a finding instead of the [`TaskGraphIndex`] panic);
//! * precedence: every edge's consumer starts after its producer's
//!   finish plus the cross-core communication cost, walked through the
//!   CSR [`TaskGraphIndex`];
//! * per-core exclusivity: no two tasks on one core overlap;
//! * scratchpad budgets: the placement fits every core's SPM
//!   ([`ErrorCode::PlacementOverflow`]).
//!
//! [`check_plans`] validates the explicitly parallel program's
//! synchronization: every task executed exactly once, every signal
//! raised/awaited exactly once, signals raised only after their
//! producing task, waits issued before their consuming task, and every
//! cross-core edge protected by some signal/wait pair
//! ([`ErrorCode::CommOrdering`]).

use crate::{Finding, Severity};
use argo_adl::{CoreId, MemoryMap, Platform};
use argo_core::{Diagnostic, ErrorCode, Stage};
use argo_parir::{ParallelProgram, Step};
use argo_sched::{CommModel, SchedCtx, Schedule, TaskGraph, TaskGraphIndex};

fn err(code: ErrorCode, message: String) -> Finding {
    Finding::new(
        Severity::Error,
        Diagnostic::new(Stage::Verify, code, message),
    )
}

fn err_at(code: ErrorCode, entity: String, message: String) -> Finding {
    Finding::new(
        Severity::Error,
        Diagnostic::new(Stage::Verify, code, message).with_entity(entity),
    )
}

/// Kahn's algorithm; `true` iff the graph is acyclic.
fn is_acyclic(g: &TaskGraph) -> bool {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    for &(_, t, _) in &g.edges {
        indeg[t] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(t) = queue.pop() {
        seen += 1;
        for &(f, s, _) in &g.edges {
            if f == t {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    seen == n
}

/// Validates `schedule` against `graph` on `platform`; when a memory
/// map is given, its scratchpad usage is checked against the per-core
/// budgets too.
///
/// Uses the same [`CommModel::SignalOnly`] cost model the backend
/// schedules under, so a schedule the backend accepted and this pass
/// rejects is a genuine soundness bug in one of them. Collects *all*
/// violations (no first-error short-circuit) in deterministic order.
pub fn check_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
    mem: Option<&MemoryMap>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = graph.len();
    if schedule.assignment.len() != n || schedule.start.len() != n || schedule.finish.len() != n {
        findings.push(err(
            ErrorCode::UnsoundSchedule,
            format!(
                "schedule length mismatch: {} tasks in graph, {} assignments, \
                 {} start times, {} finish times",
                n,
                schedule.assignment.len(),
                schedule.start.len(),
                schedule.finish.len()
            ),
        ));
        return findings; // nothing below is index-safe
    }
    if !is_acyclic(graph) {
        findings.push(err(
            ErrorCode::UnsoundSchedule,
            "task graph contains a cycle; no schedule can satisfy it".to_string(),
        ));
        return findings; // the index below would panic
    }

    let cores = platform.core_count();
    for t in 0..n {
        if schedule.assignment[t].0 >= cores {
            findings.push(err_at(
                ErrorCode::UnsoundSchedule,
                format!("t{t}"),
                format!(
                    "task {t} assigned to {} but the platform has {cores} cores",
                    schedule.assignment[t]
                ),
            ));
        }
        if schedule.finish[t] != schedule.start[t] + graph.cost[t] {
            findings.push(err_at(
                ErrorCode::UnsoundSchedule,
                format!("t{t}"),
                format!(
                    "task {t}: finish {} != start {} + cost {}",
                    schedule.finish[t], schedule.start[t], graph.cost[t]
                ),
            ));
        }
    }

    let ctx = SchedCtx {
        platform,
        comm: CommModel::SignalOnly,
    };
    let idx = TaskGraphIndex::new(graph);
    for t in 0..n {
        for &(f, bytes) in idx.preds(t) {
            let comm = if schedule.assignment[f] == schedule.assignment[t] {
                0
            } else {
                ctx.comm_cost(schedule.assignment[f], schedule.assignment[t], bytes)
            };
            if schedule.start[t] < schedule.finish[f] + comm {
                findings.push(err_at(
                    ErrorCode::UnsoundSchedule,
                    format!("t{t}"),
                    format!(
                        "precedence violated: task {t} starts at {} but its \
                         predecessor {f} finishes at {} (+{comm} comm)",
                        schedule.start[t], schedule.finish[f]
                    ),
                ));
            }
        }
    }

    for core in 0..cores {
        let tasks = schedule.tasks_on(CoreId(core));
        for w in tasks.windows(2) {
            if schedule.start[w[1]] < schedule.finish[w[0]] {
                findings.push(err_at(
                    ErrorCode::UnsoundSchedule,
                    format!("core{core}"),
                    format!("core {core}: tasks {} and {} overlap in time", w[0], w[1]),
                ));
            }
        }
    }

    if let Some(mem) = mem {
        if let Err(e) = mem.check_capacity(platform) {
            findings.push(err(ErrorCode::PlacementOverflow, e));
        }
    }
    findings
}

/// Validates the per-core plans of an explicitly parallel program:
/// structural signal accounting, signal-after-producer and
/// wait-before-consumer ordering, and cross-core edge coverage.
pub fn check_plans(pp: &ParallelProgram) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Err(e) = pp.validate() {
        findings.push(err(ErrorCode::CommOrdering, e));
        return findings; // accounting broken; positions are meaningless
    }

    // Task → (plan, step index) of its unique Exec (validate() above
    // guaranteed exactly one per task).
    let n = pp.graph.len();
    let mut exec_pos = vec![(0usize, 0usize); n];
    for (pi, plan) in pp.plans.iter().enumerate() {
        for (si, step) in plan.steps.iter().enumerate() {
            if let Step::Exec { task } = step {
                exec_pos[*task] = (pi, si);
            }
        }
    }

    for (pi, plan) in pp.plans.iter().enumerate() {
        for (si, step) in plan.steps.iter().enumerate() {
            match step {
                Step::Signal { signal, consumer } => {
                    // The raise must follow every Exec in this plan that
                    // the consumer's graph edges say it conveys: find the
                    // producing task (the edge (f, consumer) whose f runs
                    // on this core before the raise).
                    let producer_here = plan.steps[..si].iter().any(|s| {
                        matches!(s, Step::Exec { task }
                            if pp.graph.edges.iter().any(|&(f, t, _)| f == *task && t == *consumer))
                    });
                    if !producer_here {
                        findings.push(err_at(
                            ErrorCode::CommOrdering,
                            format!("{signal}"),
                            format!(
                                "plan {pi} raises {signal} (for consumer task \
                                 {consumer}) before executing any producer of it"
                            ),
                        ));
                    }
                }
                Step::Wait { signal, producer } => {
                    // The wait must precede the Exec of the task the
                    // signal's edge feeds on this core.
                    let consumed_later = plan.steps[si + 1..].iter().any(|s| {
                        matches!(s, Step::Exec { task }
                            if pp.graph.edges.iter().any(|&(f, t, _)| f == *producer && t == *task))
                    });
                    if !consumed_later {
                        findings.push(err_at(
                            ErrorCode::CommOrdering,
                            format!("{signal}"),
                            format!(
                                "plan {pi} waits for {signal} (producer task \
                                 {producer}) but never executes a consumer after it"
                            ),
                        ));
                    }
                }
                Step::Exec { .. } => {}
            }
        }
    }

    // Every cross-core edge must be protected: the consumer's plan must
    // wait on some signal from the producer before executing the
    // consumer task.
    for &(f, t, _) in &pp.graph.edges {
        if pp.schedule.assignment[f] == pp.schedule.assignment[t] {
            continue;
        }
        let (cons_plan, cons_idx) = exec_pos[t];
        let protected = pp.plans[cons_plan].steps[..cons_idx]
            .iter()
            .any(|s| matches!(s, Step::Wait { producer, .. } if *producer == f));
        if !protected {
            findings.push(err_at(
                ErrorCode::CommOrdering,
                format!("t{f}->t{t}"),
                format!(
                    "cross-core edge t{f} -> t{t} has no wait in the consumer's \
                     plan before task {t} executes"
                ),
            ));
        }
    }
    findings
}
