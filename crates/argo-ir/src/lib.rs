//! # argo-ir — C-subset intermediate representation
//!
//! The ARGO tool-chain compiles Xcos/Scilab models to "an intermediate
//! program representation (IR) based on a subset of the C language"
//! (paper § II-B). This crate is that IR:
//!
//! * a typed, structured AST ([`ast`]) with `int`/`real`/`bool` scalars and
//!   constant-shape arrays — no pointers, no `goto`, no recursion, so every
//!   program is statically analysable;
//! * a lexer/parser for the *mini-C* surface syntax ([`parse`]);
//! * a pretty-printer that emits mini-C back ([`printer`]);
//! * semantic validation: symbols, types, recursion freedom ([`validate`]);
//! * a resolution pass interning identifiers and pre-binding every
//!   variable/array/call reference to a frame slot ([`resolve`]) — the
//!   execution-shaped view of the program all hot paths run on;
//! * a reference interpreter used as the functional oracle and as the
//!   execution engine inside the platform simulator ([`interp`]);
//! * a structured control-flow graph for IPET-style WCET analysis ([`cfg`](mod@cfg)).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     int sum(int n) {
//!         int s; int i;
//!         s = 0;
//!         for (i = 0; i < n; i = i + 1) { s = s + i; }
//!         return s;
//!     }
//! "#;
//! let program = argo_ir::parse::parse_program(src)?;
//! argo_ir::validate::validate(&program)?;
//! let mut interp = argo_ir::interp::Interp::new(&program);
//! let result = interp.call_scalar("sum", &[argo_ir::interp::ScalarVal::Int(10)])?;
//! assert_eq!(result, Some(argo_ir::interp::ScalarVal::Int(45)));
//! # Ok(()) }
//! ```

pub mod ast;
pub mod cfg;
pub mod interp;
pub mod intrinsics;
pub mod lexer;
pub mod parse;
pub mod printer;
pub mod resolve;
pub mod types;
pub mod validate;
pub mod visit;

pub use ast::{Block, Expr, Function, LValue, Program, Stmt, StmtId, StmtKind};
pub use resolve::{Resolution, Slot, Symbol};
pub use types::{Scalar, Type};
