//! Scalar and aggregate types of the mini-C IR.

use std::fmt;

/// A scalar value type.
///
/// The IR deliberately has only three scalar types: 64-bit signed integers,
/// 64-bit IEEE floats and booleans. This keeps the value analysis and the
/// timing model small without losing any of the structure the ARGO flow
/// cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    /// `int` — 64-bit signed integer.
    Int,
    /// `real` — 64-bit IEEE-754 float.
    Real,
    /// `bool` — boolean.
    Bool,
}

impl Scalar {
    /// Size of one element in bytes, used for communication-volume and
    /// scratchpad-footprint computations.
    pub fn size_bytes(self) -> u64 {
        match self {
            Scalar::Int | Scalar::Real => 8,
            Scalar::Bool => 1,
        }
    }

    /// The mini-C keyword for this scalar.
    pub fn keyword(self) -> &'static str {
        match self {
            Scalar::Int => "int",
            Scalar::Real => "real",
            Scalar::Bool => "bool",
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A variable type: either a scalar or a constant-shape array of scalars.
///
/// Arrays have compile-time constant dimensions — the property that makes
/// footprints, communication volumes and scratchpad allocation statically
/// computable (paper § III-B asks for exactly this kind of predictability).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar variable.
    Scalar(Scalar),
    /// An array with element type `elem` and constant dimensions `dims`
    /// (row-major, outermost dimension first).
    Array {
        /// Element scalar type.
        elem: Scalar,
        /// Constant extents, outermost first. Never empty.
        dims: Vec<usize>,
    },
}

impl Type {
    /// Convenience constructor for a 1-D array.
    pub fn array1(elem: Scalar, n: usize) -> Type {
        Type::Array {
            elem,
            dims: vec![n],
        }
    }

    /// Convenience constructor for a 2-D array.
    pub fn array2(elem: Scalar, rows: usize, cols: usize) -> Type {
        Type::Array {
            elem,
            dims: vec![rows, cols],
        }
    }

    /// The scalar element type (`self` for scalars, element type for arrays).
    pub fn elem(&self) -> Scalar {
        match self {
            Type::Scalar(s) => *s,
            Type::Array { elem, .. } => *elem,
        }
    }

    /// Returns `true` if this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array { .. })
    }

    /// Total number of scalar elements (1 for scalars).
    pub fn elem_count(&self) -> usize {
        match self {
            Type::Scalar(_) => 1,
            Type::Array { dims, .. } => dims.iter().product(),
        }
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.elem().size_bytes() * self.elem_count() as u64
    }

    /// Array dimensions (empty slice for scalars).
    pub fn dims(&self) -> &[usize] {
        match self {
            Type::Scalar(_) => &[],
            Type::Array { dims, .. } => dims,
        }
    }
}

impl From<Scalar> for Type {
    fn from(s: Scalar) -> Type {
        Type::Scalar(s)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Array { elem, dims } => {
                write!(f, "{elem}")?;
                for d in dims {
                    write!(f, "[{d}]")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Scalar::Int.size_bytes(), 8);
        assert_eq!(Scalar::Real.size_bytes(), 8);
        assert_eq!(Scalar::Bool.size_bytes(), 1);
    }

    #[test]
    fn array_footprint() {
        let t = Type::array2(Scalar::Real, 16, 16);
        assert_eq!(t.elem_count(), 256);
        assert_eq!(t.size_bytes(), 2048);
        assert!(t.is_array());
        assert_eq!(t.dims(), &[16, 16]);
    }

    #[test]
    fn scalar_type_properties() {
        let t: Type = Scalar::Int.into();
        assert!(!t.is_array());
        assert_eq!(t.elem_count(), 1);
        assert_eq!(t.size_bytes(), 8);
        assert!(t.dims().is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::array1(Scalar::Int, 4).to_string(), "int[4]");
        assert_eq!(Type::array2(Scalar::Bool, 2, 3).to_string(), "bool[2][3]");
        assert_eq!(Type::Scalar(Scalar::Real).to_string(), "real");
    }
}
