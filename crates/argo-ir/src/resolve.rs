//! Name resolution: interned symbols, frame-slot binding and the
//! slot-resolved statement mirror.
//!
//! The AST ([`crate::ast`]) is deliberately *stringly*: every variable,
//! array and call site carries its source name, which keeps parsing,
//! printing and the transformation passes simple. The execution-shaped
//! consumers — the interpreter behind `argo-sim`, the interval value
//! analysis in `argo-wcet` — used to pay for that with a string-keyed
//! map lookup (and frequently a `String` clone) on every variable
//! touch. This module removes those costs once and for all by
//! computing, in a single pass per program:
//!
//! * a [`Symbol`] table interning every identifier into a dense `u32`
//!   (one global [`Interner`] per [`Resolution`]);
//! * a **frame layout** per function: every distinct name referenced in
//!   the function body is assigned a dense [`Slot`] index
//!   (parameters first, then first-reference order), so an activation
//!   frame is a flat `Vec` indexed in O(1) with zero hashing;
//! * a **resolved mirror** of every statement ([`RStmt`]) and
//!   expression ([`RExpr`]) in which all variable/array references are
//!   pre-bound to slots and all call sites are pre-bound to their
//!   callee (user function index, intrinsic signature, or a recorded
//!   unknown) — the AST itself is never mutated;
//! * a [`StmtId`]-keyed lookup table so drivers that execute statements
//!   individually (the platform simulator's task replay) reach the
//!   resolved form of any statement in O(1).
//!
//! # Invariants
//!
//! * Resolution is **total**: it never fails, even for invalid
//!   programs. Name errors the old string-keyed interpreter reported at
//!   runtime (unbound variables, unknown callees, arity mismatches) are
//!   recorded in the mirror (`Unbound` slots start in that state at
//!   runtime; [`RCall::Unknown`] / [`RCall::UserBadArity`] carry the
//!   failure) and surface at execution time with the same messages.
//! * Resolution is a pure function of the program: equal programs
//!   resolve to equal mirrors, which is what makes the resolution
//!   artifact cacheable and fingerprintable (`argo-core` hashes the
//!   frame layouts and mirror shape; see `Fingerprintable` there).
//! * Statement-id lookup requires the program to have been
//!   [renumbered](crate::ast::Program::renumber) (ids unique). When ids
//!   are not unique the mirror itself still works — only by-id lookup
//!   ([`Resolution::stmt_loc`]) is disabled.
//! * Slot order is deterministic: parameters in declaration order, then
//!   body names in depth-first first-reference order. Two sessions
//!   resolving equal programs therefore agree on every slot index —
//!   the property the `argo-dse` cache tiers rely on when they reuse a
//!   resolved frontend artifact across design points.

use crate::ast::*;
use crate::intrinsics::{self, Signature};
use crate::types::{Scalar, Type};
use std::collections::HashMap;

/// An interned identifier: index into the resolution's [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// A frame-slot index within one function's activation frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(pub u32);

impl Slot {
    /// The slot as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense string interner: every distinct identifier in the program maps
/// to one [`Symbol`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.ids.get(name) {
            return Symbol(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        Symbol(id)
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).map(|&id| Symbol(id))
    }

    /// The string of a symbol.
    #[inline]
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A resolved function parameter.
#[derive(Debug, Clone, Copy)]
pub struct RParam {
    /// The parameter's frame slot (parameters occupy the first slots in
    /// declaration order).
    pub slot: Slot,
    /// `true` for array parameters (bound by reference).
    pub is_array: bool,
    /// Scalar type (element type for arrays).
    pub elem: Scalar,
}

/// A resolved lvalue.
#[derive(Debug, Clone)]
pub enum RLValue {
    /// Scalar variable slot.
    Var(Slot),
    /// Array-element store.
    Elem {
        /// Array variable slot.
        array: Slot,
        /// One resolved index expression per dimension.
        indices: Vec<RExpr>,
    },
}

/// A resolved call argument (user functions only).
#[derive(Debug, Clone)]
pub enum RArg {
    /// Scalar argument, coerced to the parameter type at the call.
    Scalar {
        /// The argument expression.
        expr: RExpr,
        /// Target parameter scalar type.
        to: Scalar,
    },
    /// Array argument: the caller's array slot (aliased by reference).
    Array {
        /// Caller-frame slot holding the array.
        slot: Slot,
    },
    /// An array parameter whose argument was not a plain variable —
    /// surfaces the classic runtime error at the call site.
    ArrayMismatch {
        /// Parameter name (for the error message).
        param: String,
    },
}

/// A resolved call site (statement or expression position).
#[derive(Debug, Clone)]
pub enum RCall {
    /// Intrinsic call: signature pre-looked-up, arguments paired with
    /// their parameter types (extra arguments, if any, are dropped
    /// exactly as the string-keyed evaluation dropped them).
    Intrinsic {
        /// The intrinsic's signature (name, params, return).
        sig: &'static Signature,
        /// Resolved argument expressions (zipped with `sig.params`).
        args: Vec<RExpr>,
    },
    /// User-function call with matching arity.
    User {
        /// Callee index into [`Resolution::functions`].
        func: u32,
        /// Resolved arguments in parameter order.
        args: Vec<RArg>,
    },
    /// User-function call with mismatched arity (runtime error).
    UserBadArity {
        /// Callee index into [`Resolution::functions`].
        func: u32,
    },
    /// Call to a name that is neither an intrinsic nor a program
    /// function (runtime error: ``no function `name```).
    Unknown {
        /// The unresolved callee name.
        name: Symbol,
    },
}

/// A resolved expression: structurally the AST expression with every
/// name reference replaced by a [`Slot`] and every call pre-bound.
#[derive(Debug, Clone)]
pub enum RExpr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Boolean literal.
    Bool(bool),
    /// Scalar variable read.
    Var(Slot),
    /// Array element read.
    Elem {
        /// Array variable slot.
        array: Slot,
        /// One resolved index expression per dimension.
        indices: Vec<RExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<RExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<RExpr>,
        /// Right operand.
        rhs: Box<RExpr>,
    },
    /// Call in expression position.
    Call(RCall),
    /// Explicit cast.
    Cast {
        /// Target scalar type.
        to: Scalar,
        /// Operand.
        arg: Box<RExpr>,
    },
}

/// A resolved statement (with its original [`StmtId`] preserved).
#[derive(Debug, Clone)]
pub struct RStmt {
    /// The statement's program-unique id.
    pub id: StmtId,
    /// The resolved statement kind.
    pub kind: RStmtKind,
}

/// Resolved statement kinds. Child blocks are stored as index lists
/// into the owning function's statement arena ([`RFunction::stmts`]).
#[derive(Debug, Clone)]
pub enum RStmtKind {
    /// Scalar declaration.
    DeclScalar {
        /// Target slot.
        slot: Slot,
        /// Declared scalar type.
        scalar: Scalar,
        /// Optional initialiser.
        init: Option<RExpr>,
    },
    /// Array declaration (zero-initialised allocation).
    DeclArray {
        /// Target slot.
        slot: Slot,
        /// Element type.
        elem: Scalar,
        /// Dimensions, outermost first.
        dims: Vec<usize>,
    },
    /// Assignment.
    Assign {
        /// Resolved target.
        target: RLValue,
        /// Resolved right-hand side.
        value: RExpr,
    },
    /// Two-armed conditional.
    If {
        /// Condition.
        cond: RExpr,
        /// Then-branch statement indices.
        then_blk: Vec<u32>,
        /// Else-branch statement indices.
        else_blk: Vec<u32>,
    },
    /// Counted loop.
    For {
        /// Induction-variable slot.
        var: Slot,
        /// Lower bound.
        lo: RExpr,
        /// Upper bound.
        hi: RExpr,
        /// Constant positive step.
        step: i64,
        /// Body statement indices.
        body: Vec<u32>,
    },
    /// Bounded condition loop.
    While {
        /// Condition.
        cond: RExpr,
        /// Declared iteration bound.
        bound: u64,
        /// Body statement indices.
        body: Vec<u32>,
    },
    /// Call in statement position.
    Call(RCall),
    /// Return.
    Return {
        /// Returned value, if any.
        value: Option<RExpr>,
    },
}

/// The resolved view of one function: frame layout plus statement
/// arena.
#[derive(Debug, Clone)]
pub struct RFunction {
    /// Function name.
    pub name: Symbol,
    /// Number of frame slots (activation-frame length).
    pub frame_len: u32,
    /// Slot → symbol (for diagnostics and hook callbacks).
    pub slot_symbols: Vec<Symbol>,
    /// Sorted `(symbol, slot)` pairs for boundary name lookups.
    slot_by_symbol: Vec<(u32, u32)>,
    /// Resolved parameters in declaration order.
    pub params: Vec<RParam>,
    /// Top-level statement indices into [`RFunction::stmts`].
    pub body: Vec<u32>,
    /// The statement arena (every statement of the function).
    pub stmts: Vec<RStmt>,
    /// User functions called anywhere in the body (deduplicated,
    /// first-call order), as indices into [`Resolution::functions`].
    pub callees: Vec<u32>,
}

impl RFunction {
    /// The slot bound to `sym`, if the function references that name.
    pub fn slot_of_symbol(&self, sym: Symbol) -> Option<Slot> {
        self.slot_by_symbol
            .binary_search_by_key(&sym.0, |&(s, _)| s)
            .ok()
            .map(|i| Slot(self.slot_by_symbol[i].1))
    }

    /// The statement at arena index `i`.
    #[inline]
    pub fn stmt(&self, i: u32) -> &RStmt {
        &self.stmts[i as usize]
    }
}

/// The complete resolution of one program: interner, per-function frame
/// layouts and resolved statement mirrors, and the by-id lookup table.
#[derive(Debug, Clone)]
pub struct Resolution {
    interner: Interner,
    /// Resolved functions, parallel to `Program::functions`.
    pub functions: Vec<RFunction>,
    func_by_symbol: HashMap<u32, u32>,
    /// `StmtId.0` → `(function index, arena index)`; `u32::MAX`
    /// sentinel for unused ids. Only trusted when `ids_unique`.
    stmt_loc: Vec<(u32, u32)>,
    ids_unique: bool,
    stmt_total: u32,
}

impl Resolution {
    /// Resolves `program`. Total: never fails (see module docs).
    pub fn of(program: &Program) -> Resolution {
        let mut interner = Interner::default();
        let mut func_by_symbol = HashMap::with_capacity(program.functions.len());
        for (i, f) in program.functions.iter().enumerate() {
            let sym = interner.intern(&f.name);
            // First definition wins on (invalid) duplicate names, like
            // `Program::function` lookup does.
            func_by_symbol.entry(sym.0).or_insert(i as u32);
        }
        let mut functions = Vec::with_capacity(program.functions.len());
        let mut max_id = 0u32;
        for f in &program.functions {
            crate::visit::walk_stmts(&f.body, &mut |s| max_id = max_id.max(s.id.0));
        }
        let mut stmt_loc = vec![(u32::MAX, u32::MAX); max_id as usize + 2];
        let mut ids_unique = true;
        let mut stmt_total = 0u32;
        for (fi, f) in program.functions.iter().enumerate() {
            let rf = FnResolver {
                program,
                interner: &mut interner,
                func_by_symbol: &func_by_symbol,
                slots: HashMap::new(),
                slot_symbols: Vec::new(),
                arena: Vec::new(),
                callees: Vec::new(),
            }
            .resolve(f);
            for (si, s) in rf.stmts.iter().enumerate() {
                stmt_total += 1;
                let loc = &mut stmt_loc[s.id.0 as usize];
                if loc.0 != u32::MAX {
                    ids_unique = false;
                }
                *loc = (fi as u32, si as u32);
            }
            functions.push(rf);
        }
        Resolution {
            interner,
            functions,
            func_by_symbol,
            stmt_loc,
            ids_unique,
            stmt_total,
        }
    }

    /// The string of a symbol.
    #[inline]
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.name(sym)
    }

    /// Looks up an interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.interner.lookup(name)
    }

    /// Index of the function named `name`.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        let sym = self.interner.lookup(name)?;
        self.func_by_symbol.get(&sym.0).map(|&i| i as usize)
    }

    /// The resolved function at `idx`.
    #[inline]
    pub fn function(&self, idx: usize) -> &RFunction {
        &self.functions[idx]
    }

    /// `(function index, arena index)` of the statement with `id`, or
    /// `None` if the id is unknown or ids are not unique (program not
    /// renumbered).
    pub fn stmt_loc(&self, id: StmtId) -> Option<(usize, u32)> {
        if !self.ids_unique {
            return None;
        }
        let loc = *self.stmt_loc.get(id.0 as usize)?;
        (loc.0 != u32::MAX).then_some((loc.0 as usize, loc.1))
    }

    /// The slot bound to `name` in function `func_idx`.
    pub fn slot_of(&self, func_idx: usize, name: &str) -> Option<Slot> {
        let sym = self.interner.lookup(name)?;
        self.functions[func_idx].slot_of_symbol(sym)
    }

    /// Total number of resolved statements.
    pub fn stmt_count(&self) -> usize {
        self.stmt_total as usize
    }

    /// Number of interned symbols.
    pub fn symbol_count(&self) -> usize {
        self.interner.len()
    }

    /// `true` when statement ids were unique (program renumbered) and
    /// [`Resolution::stmt_loc`] is usable.
    pub fn ids_unique(&self) -> bool {
        self.ids_unique
    }
}

struct FnResolver<'p> {
    program: &'p Program,
    interner: &'p mut Interner,
    func_by_symbol: &'p HashMap<u32, u32>,
    slots: HashMap<u32, u32>,
    slot_symbols: Vec<Symbol>,
    arena: Vec<RStmt>,
    callees: Vec<u32>,
}

impl<'p> FnResolver<'p> {
    fn slot_for(&mut self, name: &str) -> Slot {
        let sym = self.interner.intern(name);
        if let Some(&s) = self.slots.get(&sym.0) {
            return Slot(s);
        }
        let s = self.slot_symbols.len() as u32;
        self.slots.insert(sym.0, s);
        self.slot_symbols.push(sym);
        Slot(s)
    }

    fn resolve(mut self, f: &Function) -> RFunction {
        let name = self.interner.intern(&f.name);
        let params: Vec<RParam> = f
            .params
            .iter()
            .map(|p| RParam {
                slot: self.slot_for(&p.name),
                is_array: p.ty.is_array(),
                elem: p.ty.elem(),
            })
            .collect();
        let body = self.resolve_block(&f.body);
        let mut slot_by_symbol: Vec<(u32, u32)> =
            self.slots.iter().map(|(&sym, &slot)| (sym, slot)).collect();
        slot_by_symbol.sort_unstable();
        RFunction {
            name,
            frame_len: self.slot_symbols.len() as u32,
            slot_symbols: self.slot_symbols,
            slot_by_symbol,
            params,
            body,
            stmts: self.arena,
            callees: self.callees,
        }
    }

    fn resolve_block(&mut self, b: &Block) -> Vec<u32> {
        let mut out = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            let kind = match &s.kind {
                StmtKind::Decl { name, ty, init } => {
                    let slot = self.slot_for(name);
                    match ty {
                        Type::Scalar(sc) => RStmtKind::DeclScalar {
                            slot,
                            scalar: *sc,
                            init: init.as_ref().map(|e| self.resolve_expr(e)),
                        },
                        Type::Array { elem, dims } => RStmtKind::DeclArray {
                            slot,
                            elem: *elem,
                            dims: dims.clone(),
                        },
                    }
                }
                StmtKind::Assign { target, value } => RStmtKind::Assign {
                    target: match target {
                        LValue::Var(n) => RLValue::Var(self.slot_for(n)),
                        LValue::ArrayElem { array, indices } => RLValue::Elem {
                            array: self.slot_for(array),
                            indices: indices.iter().map(|e| self.resolve_expr(e)).collect(),
                        },
                    },
                    value: self.resolve_expr(value),
                },
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => RStmtKind::If {
                    cond: self.resolve_expr(cond),
                    then_blk: self.resolve_block(then_blk),
                    else_blk: self.resolve_block(else_blk),
                },
                StmtKind::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => RStmtKind::For {
                    var: self.slot_for(var),
                    lo: self.resolve_expr(lo),
                    hi: self.resolve_expr(hi),
                    step: *step,
                    body: self.resolve_block(body),
                },
                StmtKind::While { cond, bound, body } => RStmtKind::While {
                    cond: self.resolve_expr(cond),
                    bound: *bound,
                    body: self.resolve_block(body),
                },
                StmtKind::Call { name, args } => RStmtKind::Call(self.resolve_call(name, args)),
                StmtKind::Return { value } => RStmtKind::Return {
                    value: value.as_ref().map(|e| self.resolve_expr(e)),
                },
            };
            let idx = self.arena.len() as u32;
            self.arena.push(RStmt { id: s.id, kind });
            out.push(idx);
        }
        out
    }

    fn resolve_expr(&mut self, e: &Expr) -> RExpr {
        match e {
            Expr::IntLit(v) => RExpr::Int(*v),
            Expr::RealLit(v) => RExpr::Real(*v),
            Expr::BoolLit(v) => RExpr::Bool(*v),
            Expr::Var(n) => RExpr::Var(self.slot_for(n)),
            Expr::ArrayElem { array, indices } => RExpr::Elem {
                array: self.slot_for(array),
                indices: indices.iter().map(|e| self.resolve_expr(e)).collect(),
            },
            Expr::Unary { op, arg } => RExpr::Unary {
                op: *op,
                arg: Box::new(self.resolve_expr(arg)),
            },
            Expr::Binary { op, lhs, rhs } => RExpr::Binary {
                op: *op,
                lhs: Box::new(self.resolve_expr(lhs)),
                rhs: Box::new(self.resolve_expr(rhs)),
            },
            Expr::Call { name, args } => RExpr::Call(self.resolve_call(name, args)),
            Expr::Cast { to, arg } => RExpr::Cast {
                to: *to,
                arg: Box::new(self.resolve_expr(arg)),
            },
        }
    }

    fn resolve_call(&mut self, name: &str, args: &[Expr]) -> RCall {
        if let Some(sig) = intrinsics::lookup(name) {
            // Zip with the parameter list exactly like evaluation did:
            // surplus arguments are dropped (validation rejects them
            // anyway), missing ones surface at evaluation.
            let args = args
                .iter()
                .zip(sig.params)
                .map(|(a, _)| self.resolve_expr(a))
                .collect();
            return RCall::Intrinsic { sig, args };
        }
        let sym = self.interner.intern(name);
        let Some(&fi) = self.func_by_symbol.get(&sym.0) else {
            return RCall::Unknown { name: sym };
        };
        if !self.callees.contains(&fi) {
            self.callees.push(fi);
        }
        let callee = &self.program.functions[fi as usize];
        if callee.params.len() != args.len() {
            return RCall::UserBadArity { func: fi };
        }
        let args = args
            .iter()
            .zip(&callee.params)
            .map(|(a, p)| {
                if p.ty.is_array() {
                    match a {
                        Expr::Var(arg_name) => RArg::Array {
                            slot: self.slot_for(arg_name),
                        },
                        _ => RArg::ArrayMismatch {
                            param: p.name.clone(),
                        },
                    }
                } else {
                    RArg::Scalar {
                        expr: self.resolve_expr(a),
                        to: p.ty.elem(),
                    }
                }
            })
            .collect();
        RCall::User { func: fi, args }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const SRC: &str = "int helper(int v) { return v + 1; }\n\
                       int main(int n, real a[4]) { int i; int s; s = 0;\n\
                       for (i = 0; i < n; i = i + 1) { s = s + helper(i); a[0] = 1.0; }\n\
                       return s; }";

    #[test]
    fn params_get_the_first_slots_in_order() {
        let p = parse_program(SRC).unwrap();
        let r = Resolution::of(&p);
        let main = &r.functions[r.function_index("main").unwrap()];
        assert_eq!(main.params.len(), 2);
        assert_eq!(main.params[0].slot, Slot(0));
        assert_eq!(main.params[1].slot, Slot(1));
        assert!(main.params[1].is_array);
        assert_eq!(r.name(main.slot_symbols[0]), "n");
        assert_eq!(r.name(main.slot_symbols[1]), "a");
    }

    #[test]
    fn every_referenced_name_gets_exactly_one_slot() {
        let p = parse_program(SRC).unwrap();
        let r = Resolution::of(&p);
        let main = &r.functions[r.function_index("main").unwrap()];
        // n, a, i, s — each once.
        assert_eq!(main.frame_len, 4);
        let slot_i = r.slot_of(r.function_index("main").unwrap(), "i").unwrap();
        let slot_s = r.slot_of(r.function_index("main").unwrap(), "s").unwrap();
        assert_ne!(slot_i, slot_s);
    }

    #[test]
    fn calls_are_prebound_and_callees_recorded() {
        let p = parse_program(SRC).unwrap();
        let r = Resolution::of(&p);
        let hi = r.function_index("helper").unwrap();
        let main = &r.functions[r.function_index("main").unwrap()];
        assert_eq!(main.callees, vec![hi as u32]);
    }

    #[test]
    fn stmt_ids_map_to_arena_locations() {
        let p = parse_program(SRC).unwrap();
        let r = Resolution::of(&p);
        assert!(r.ids_unique());
        assert_eq!(r.stmt_count(), p.stmt_count());
        // Every id round-trips.
        crate::visit::walk_stmts(&p.functions[1].body, &mut |s| {
            let (fi, si) = r.stmt_loc(s.id).expect("located");
            assert_eq!(r.functions[fi].stmt(si).id, s.id);
        });
    }

    #[test]
    fn unknown_callee_is_recorded_not_fatal() {
        // Bypass validation: hand-built program with an unknown call.
        let p = parse_program("void f() { }").unwrap();
        let mut p = p;
        p.functions[0].body.stmts.push(Stmt::new(StmtKind::Call {
            name: "mystery".into(),
            args: vec![],
        }));
        p.renumber();
        let r = Resolution::of(&p);
        let f = &r.functions[0];
        match &f.stmts.last().unwrap().kind {
            RStmtKind::Call(RCall::Unknown { name }) => assert_eq!(r.name(*name), "mystery"),
            other => panic!("expected unknown call, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_ids_disable_by_id_lookup() {
        // Hand-built, un-renumbered AST: every statement carries id 0.
        let p = Program {
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                ret: None,
                body: Block::of(vec![
                    Stmt::new(StmtKind::Return { value: None }),
                    Stmt::new(StmtKind::Return { value: None }),
                ]),
            }],
        };
        let r = Resolution::of(&p);
        assert!(!r.ids_unique());
        assert!(r.stmt_loc(StmtId(0)).is_none());
    }

    #[test]
    fn resolution_is_deterministic() {
        let p = parse_program(SRC).unwrap();
        let a = Resolution::of(&p);
        let b = Resolution::of(&p);
        assert_eq!(a.symbol_count(), b.symbol_count());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.frame_len, fb.frame_len);
            assert_eq!(fa.slot_symbols, fb.slot_symbols);
            assert_eq!(fa.body, fb.body);
        }
    }
}
