//! Built-in math intrinsics of the mini-C language.
//!
//! Intrinsics are pure scalar functions with fixed signatures. They matter
//! to three consumers: the validator (type checking), the interpreter
//! (evaluation) and the WCET timing model (every intrinsic has an
//! architecture-defined worst-case latency, looked up by name).

use crate::types::Scalar;

/// Signature of an intrinsic function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Intrinsic name as written in source.
    pub name: &'static str,
    /// Parameter scalar types.
    pub params: &'static [Scalar],
    /// Return scalar type.
    pub ret: Scalar,
}

const R: Scalar = Scalar::Real;
const I: Scalar = Scalar::Int;

/// All intrinsics known to the language.
pub const ALL: &[Signature] = &[
    Signature {
        name: "sqrt",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "sin",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "cos",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "tan",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "atan2",
        params: &[R, R],
        ret: R,
    },
    Signature {
        name: "exp",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "log",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "pow",
        params: &[R, R],
        ret: R,
    },
    Signature {
        name: "floor",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "fabs",
        params: &[R],
        ret: R,
    },
    Signature {
        name: "fmin",
        params: &[R, R],
        ret: R,
    },
    Signature {
        name: "fmax",
        params: &[R, R],
        ret: R,
    },
    Signature {
        name: "iabs",
        params: &[I],
        ret: I,
    },
    Signature {
        name: "imin",
        params: &[I, I],
        ret: I,
    },
    Signature {
        name: "imax",
        params: &[I, I],
        ret: I,
    },
];

/// Maximum parameter count of any intrinsic. The interpreter sizes its
/// stack-allocated argument buffer with this; the compile-time check
/// below keeps the two in lockstep when signatures are added.
pub const MAX_PARAMS: usize = 2;

const _: () = {
    let mut i = 0;
    while i < ALL.len() {
        assert!(
            ALL[i].params.len() <= MAX_PARAMS,
            "intrinsic exceeds MAX_PARAMS; bump the constant"
        );
        i += 1;
    }
};

/// Looks up an intrinsic signature by name.
pub fn lookup(name: &str) -> Option<&'static Signature> {
    ALL.iter().find(|s| s.name == name)
}

/// Returns `true` if `name` denotes an intrinsic.
pub fn is_intrinsic(name: &str) -> bool {
    lookup(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_known_intrinsics() {
        assert_eq!(lookup("sqrt").unwrap().ret, Scalar::Real);
        assert_eq!(lookup("imax").unwrap().params.len(), 2);
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
