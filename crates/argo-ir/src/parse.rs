//! Recursive-descent parser for the mini-C surface syntax.
//!
//! Grammar (informal):
//!
//! ```text
//! program  := function*
//! function := ("int"|"real"|"bool"|"void") IDENT "(" params ")" block
//! param    := ("int"|"real"|"bool") IDENT ("[" INT "]")*
//! block    := "{" stmt* "}"
//! stmt     := decl | assign | if | for | while | call ";" | return
//! decl     := type IDENT ("[" INT "]")* ("=" expr)? ";"
//! assign   := lvalue ("=" | "+=") expr ";"
//! for      := "for" "(" IDENT "=" expr ";" IDENT ("<"|"<=") expr ";"
//!             IDENT ("=" IDENT "+" INT | "+=" INT) ")" block
//! while    := "#pragma bound N" "while" "(" expr ")" block
//! if       := "if" "(" expr ")" block ("else" (block | if))?
//! ```
//!
//! Expressions use conventional C precedence. `(int) e`, `(real) e` and
//! `(bool) e` are casts.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use crate::types::{Scalar, Type};
use std::fmt;

/// Error produced while parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            msg: e.msg,
            line: e.line,
        }
    }
}

/// Parses a complete mini-C program and assigns statement ids.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic error, with the
/// offending source line.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut program = Program::new();
    while !p.at_eof() {
        program.functions.push(p.function()?);
    }
    program.renumber();
    Ok(program)
}

/// Parses a single expression (used by the Scilab-like frontend and tests).
///
/// # Errors
///
/// Returns [`ParseError`] if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line(),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found `{other}`"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn scalar_keyword(&self) -> Option<Scalar> {
        match self.peek() {
            Tok::Ident(s) if s == "int" => Some(Scalar::Int),
            Tok::Ident(s) if s == "real" => Some(Scalar::Real),
            Tok::Ident(s) if s == "bool" => Some(Scalar::Bool),
            _ => None,
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let ret = if self.eat_keyword("void") {
            None
        } else if let Some(s) = self.scalar_keyword() {
            self.bump();
            Some(s)
        } else {
            return Err(self.err("expected return type (`int`, `real`, `bool`, `void`)"));
        };
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let Some(elem) = self.scalar_keyword() else {
                    return Err(self.err("expected parameter type"));
                };
                self.bump();
                let pname = self.expect_ident()?;
                let dims = self.array_dims()?;
                let ty = if dims.is_empty() {
                    Type::Scalar(elem)
                } else {
                    Type::Array { elem, dims }
                };
                params.push(Param { name: pname, ty });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
        })
    }

    fn array_dims(&mut self) -> Result<Vec<usize>, ParseError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            match self.bump() {
                Tok::Int(v) if v > 0 => dims.push(v as usize),
                other => {
                    return Err(self.err(format!(
                        "array dimension must be a positive integer literal, found `{other}`"
                    )))
                }
            }
            self.expect_punct("]")?;
        }
        Ok(dims)
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block::of(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // #pragma bound N  while (...) { ... }
        if let Tok::Pragma(kind, val) = self.peek().clone() {
            self.bump();
            if kind != "bound" {
                return Err(self.err(format!("unknown pragma `{kind}`")));
            }
            if val < 0 {
                return Err(self.err("loop bound must be non-negative"));
            }
            if !self.eat_keyword("while") {
                return Err(self.err("`#pragma bound` must be followed by `while`"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::new(StmtKind::While {
                cond,
                bound: val as u64,
                body,
            }));
        }
        if self.peek_keyword("while") {
            return Err(self.err("`while` requires a preceding `#pragma bound N`"));
        }
        if self.peek_keyword("if") {
            return self.if_stmt();
        }
        if self.eat_keyword("for") {
            return self.for_stmt();
        }
        if self.eat_keyword("return") {
            let value = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            return Ok(Stmt::new(StmtKind::Return { value }));
        }
        // Declaration?
        if let Some(elem) = self.scalar_keyword() {
            self.bump();
            let name = self.expect_ident()?;
            let dims = self.array_dims()?;
            let ty = if dims.is_empty() {
                Type::Scalar(elem)
            } else {
                Type::Array { elem, dims }
            };
            let init = if self.eat_punct("=") {
                if ty.is_array() {
                    return Err(self.err("array declarations cannot have initialisers"));
                }
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Decl { name, ty, init }));
        }
        // Assignment or call statement: both start with IDENT.
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            let args = self.call_args()?;
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Call { name, args }));
        }
        let target = if matches!(self.peek(), Tok::Punct("[")) {
            let mut indices = Vec::new();
            while self.eat_punct("[") {
                indices.push(self.expr()?);
                self.expect_punct("]")?;
            }
            LValue::ArrayElem {
                array: name,
                indices,
            }
        } else {
            LValue::Var(name)
        };
        if self.eat_punct("+=") {
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            let read = match &target {
                LValue::Var(n) => Expr::Var(n.clone()),
                LValue::ArrayElem { array, indices } => Expr::ArrayElem {
                    array: array.clone(),
                    indices: indices.clone(),
                },
            };
            return Ok(Stmt::new(StmtKind::Assign {
                target,
                value: Expr::bin(BinOp::Add, read, rhs),
            }));
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::new(StmtKind::Assign { target, value }))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        assert!(self.eat_keyword("if"));
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_keyword("else") {
            if self.peek_keyword("if") {
                Block::of(vec![self.if_stmt()?])
            } else {
                self.block()?
            }
        } else {
            Block::new()
        };
        Ok(Stmt::new(StmtKind::If {
            cond,
            then_blk,
            else_blk,
        }))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_punct("(")?;
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let lo = self.expr()?;
        self.expect_punct(";")?;
        let var2 = self.expect_ident()?;
        if var2 != var {
            return Err(self.err(format!(
                "for-loop condition must test induction variable `{var}`, found `{var2}`"
            )));
        }
        let le = if self.eat_punct("<") {
            false
        } else if self.eat_punct("<=") {
            true
        } else {
            return Err(self.err("for-loop condition must use `<` or `<=`"));
        };
        let mut hi = self.expr()?;
        if le {
            // Normalise `i <= e` to `i < e + 1`.
            hi = Expr::bin(BinOp::Add, hi, Expr::int(1));
        }
        self.expect_punct(";")?;
        let var3 = self.expect_ident()?;
        if var3 != var {
            return Err(self.err(format!(
                "for-loop increment must update induction variable `{var}`, found `{var3}`"
            )));
        }
        let step = if self.eat_punct("+=") {
            match self.bump() {
                Tok::Int(v) => v,
                other => return Err(self.err(format!("expected constant step, found `{other}`"))),
            }
        } else {
            self.expect_punct("=")?;
            let var4 = self.expect_ident()?;
            if var4 != var {
                return Err(self.err("for-loop increment must be `v = v + C`"));
            }
            self.expect_punct("+")?;
            match self.bump() {
                Tok::Int(v) => v,
                other => return Err(self.err(format!("expected constant step, found `{other}`"))),
            }
        };
        if step <= 0 {
            return Err(self.err("for-loop step must be positive"));
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::new(StmtKind::For {
            var,
            lo,
            hi,
            step,
            body,
        }))
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_punct(")") {
                return Ok(args);
            }
            self.expect_punct(",")?;
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("<") => BinOp::Lt,
            Tok::Punct("<=") => BinOp::Le,
            Tok::Punct(">") => BinOp::Gt,
            Tok::Punct(">=") => BinOp::Ge,
            Tok::Punct("==") => BinOp::Eq,
            Tok::Punct("!=") => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                arg: Box::new(arg),
            });
        }
        if self.eat_punct("!") {
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                arg: Box::new(arg),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::Real(v) => {
                self.bump();
                Ok(Expr::RealLit(v))
            }
            Tok::Punct("(") => {
                // Cast `(int) e` / `(real) e` / `(bool) e` or parenthesised expr.
                if let Tok::Ident(kw) = self.peek2().clone() {
                    let cast_to = match kw.as_str() {
                        "int" => Some(Scalar::Int),
                        "real" => Some(Scalar::Real),
                        "bool" => Some(Scalar::Bool),
                        _ => None,
                    };
                    if let Some(to) = cast_to {
                        self.bump(); // (
                        self.bump(); // type
                        self.expect_punct(")")?;
                        let arg = self.unary_expr()?;
                        return Ok(Expr::Cast {
                            to,
                            arg: Box::new(arg),
                        });
                    }
                }
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::BoolLit(true)),
                    "false" => return Ok(Expr::BoolLit(false)),
                    _ => {}
                }
                if self.eat_punct("(") {
                    let args = self.call_args()?;
                    return Ok(Expr::Call { name, args });
                }
                if matches!(self.peek(), Tok::Punct("[")) {
                    let mut indices = Vec::new();
                    while self.eat_punct("[") {
                        indices.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    return Ok(Expr::ArrayElem {
                        array: name,
                        indices,
                    });
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("void f() { }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "f");
        assert!(p.functions[0].ret.is_none());
    }

    #[test]
    fn parses_params_and_arrays() {
        let p = parse_program("int g(int n, real a[4][8]) { return n; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].ty, Type::array2(Scalar::Real, 4, 8));
    }

    #[test]
    fn parses_for_loop_canonical_and_sugar() {
        let p = parse_program(
            "void f(int n) { int i; for (i = 0; i < n; i = i + 2) { } \
             for (i = 1; i <= n; i += 1) { } }",
        )
        .unwrap();
        let body = &p.functions[0].body;
        match &body.stmts[1].kind {
            StmtKind::For { step, .. } => assert_eq!(*step, 2),
            _ => panic!("expected for"),
        }
        match &body.stmts[2].kind {
            StmtKind::For { lo, hi, step, .. } => {
                assert_eq!(lo.as_int_const(), Some(1));
                // `<= n` normalised to `< n + 1`
                assert!(matches!(hi, Expr::Binary { op: BinOp::Add, .. }));
                assert_eq!(*step, 1);
            }
            _ => panic!("expected for"),
        }
    }

    #[test]
    fn while_requires_bound_pragma() {
        assert!(parse_program("void f() { while (true) { } }").is_err());
        let p = parse_program("void f() { #pragma bound 8\n while (true) { } }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::While { bound, .. } => assert_eq!(*bound, 8),
            _ => panic!("expected while"),
        }
    }

    #[test]
    fn precedence_is_conventional() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            _ => panic!("wrong precedence"),
        }
        let e = parse_expr("a < b && c < d || e < f").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_casts() {
        let e = parse_expr("(real) 3").unwrap();
        assert!(matches!(
            e,
            Expr::Cast {
                to: Scalar::Real,
                ..
            }
        ));
        // Parenthesised expression is not a cast.
        let e = parse_expr("(x) + 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_compound_assign() {
        let p = parse_program("void f() { int x; x = 0; x += 3; }").unwrap();
        match &p.functions[0].body.stmts[2].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value, Expr::Binary { op: BinOp::Add, .. }))
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_program(
            "void f(int x) { int y; if (x < 0) { y = 0; } else if (x < 10) { y = 1; } \
             else { y = 2; } }",
        )
        .unwrap();
        match &p.functions[0].body.stmts[1].kind {
            StmtKind::If { else_blk, .. } => {
                assert_eq!(else_blk.stmts.len(), 1);
                assert!(matches!(else_blk.stmts[0].kind, StmtKind::If { .. }));
            }
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn parses_calls_in_stmt_and_expr_position() {
        let p = parse_program(
            "void g(int x) { } \
             int h(int x) { return x + 1; } \
             void f() { int y; g(3); y = h(4) * 2; }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(f.body.stmts[1].kind, StmtKind::Call { .. }));
    }

    #[test]
    fn rejects_nonconstant_step() {
        assert!(parse_program("void f(int n) { int i; for (i=0;i<n;i=i+n) { } }").is_err());
    }

    #[test]
    fn rejects_wrong_induction_var() {
        assert!(parse_program("void f(int n) { int i; int j; for (i=0;j<n;i=i+1) { } }").is_err());
    }

    #[test]
    fn parses_array_assign_and_read() {
        let p = parse_program("void f(real a[8]) { int i; i = 2; a[i] = a[i+1] * 0.5; }").unwrap();
        match &p.functions[0].body.stmts[2].kind {
            StmtKind::Assign {
                target: LValue::ArrayElem { array, .. },
                value,
            } => {
                assert_eq!(array, "a");
                assert!(matches!(value, Expr::Binary { op: BinOp::Mul, .. }));
            }
            _ => panic!("expected array assign"),
        }
    }

    #[test]
    fn reports_error_line() {
        let err = parse_program("void f() {\n  x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn statement_ids_are_assigned() {
        let p = parse_program("void f() { int x; x = 1; x = 2; }").unwrap();
        let ids: Vec<u32> = p.functions[0].body.stmts.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
