//! Control-flow graph construction from the structured AST.
//!
//! Because mini-C is fully structured (no `goto`), every function's CFG is
//! *reducible by construction*: loops form a tree, and removing back edges
//! leaves a DAG. The IPET WCET engine in `argo-wcet` exploits this shape —
//! it computes longest paths per loop body (innermost first), multiplies by
//! the loop bound and collapses the loop to a single node.

use crate::ast::*;

/// Index of a basic block within a [`Cfg`].
pub type NodeId = usize;

/// One entry of a basic block: either a whole simple statement, or the
/// condition/bookkeeping part of a compound statement (the part that
/// executes *in this block* even though the statement spans several blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgItem {
    /// A simple statement executes entirely in this block.
    Stmt(StmtId),
    /// The condition of an `if` (block ends with a two-way branch).
    Cond(StmtId),
    /// The per-iteration test/increment of a loop header.
    LoopTest(StmtId),
}

impl CfgItem {
    /// The id of the underlying statement.
    pub fn stmt_id(self) -> StmtId {
        match self {
            CfgItem::Stmt(s) | CfgItem::Cond(s) | CfgItem::LoopTest(s) => s,
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Straight-line contents.
    pub items: Vec<CfgItem>,
    /// Successor blocks. Two successors = conditional branch
    /// (`succs[0]` = taken/then/loop-body, `succs[1]` = else/loop-exit).
    pub succs: Vec<NodeId>,
}

/// A natural loop of the CFG (always corresponds to one `for`/`while`
/// statement, thanks to structuredness).
#[derive(Debug, Clone)]
pub struct LoopScope {
    /// The `for`/`while` statement this loop was built from.
    pub stmt: StmtId,
    /// Header block (contains the [`CfgItem::LoopTest`]).
    pub header: NodeId,
    /// Latch block (jumps back to the header).
    pub latch: NodeId,
    /// The block control reaches when the loop exits.
    pub exit: NodeId,
    /// All blocks strictly inside the loop (header and latch included).
    pub nodes: Vec<NodeId>,
    /// Child loops (indices into [`Cfg::loops`]).
    pub children: Vec<usize>,
    /// Statically known iteration bound: constant trip count for `for`
    /// loops with literal bounds, the declared `#pragma bound` for `while`
    /// loops, `None` when the value analysis must provide it.
    pub bound_hint: Option<u64>,
}

/// Control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All basic blocks.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id (always 0).
    pub entry: NodeId,
    /// Exit block id (unique; `return` statements jump here).
    pub exit: NodeId,
    /// All loops, in discovery (outer-before-inner) order.
    pub loops: Vec<LoopScope>,
    /// Indices of top-level (non-nested) loops.
    pub top_loops: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            blocks: vec![BasicBlock::default()],
            loops: Vec::new(),
            top_loops: Vec::new(),
            loop_stack: Vec::new(),
            exit: usize::MAX,
        };
        let exit = b.new_block();
        b.exit = exit;
        let last = b.lower_block(&f.body, 0);
        b.edge(last, exit);
        let cfg = Cfg {
            entry: 0,
            exit,
            blocks: b.blocks,
            loops: b.loops,
            top_loops: b.top_loops,
        };
        cfg.prune_unreachable()
    }

    /// Removes blocks not reachable from the entry (created as
    /// continuations after `return`) and remaps all ids.
    fn prune_unreachable(mut self) -> Cfg {
        let n = self.blocks.len();
        let mut reach = vec![false; n];
        let mut stack = vec![self.entry];
        reach[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !reach[s] {
                    reach[s] = true;
                    stack.push(s);
                }
            }
        }
        // The exit must survive even for non-terminating shapes.
        reach[self.exit] = true;
        if reach.iter().all(|&r| r) {
            return self;
        }
        let mut remap = vec![usize::MAX; n];
        let mut next = 0usize;
        for i in 0..n {
            if reach[i] {
                remap[i] = next;
                next += 1;
            }
        }
        let mut blocks = Vec::with_capacity(next);
        for (i, mut blk) in self.blocks.drain(..).enumerate() {
            if !reach[i] {
                continue;
            }
            blk.succs.retain(|&s| reach[s]);
            for s in &mut blk.succs {
                *s = remap[*s];
            }
            blocks.push(blk);
        }
        let mut loops = Vec::new();
        let mut loop_remap = vec![usize::MAX; self.loops.len()];
        for (i, mut l) in self.loops.drain(..).enumerate() {
            if !reach[l.header] {
                continue;
            }
            l.header = remap[l.header];
            l.latch = remap[l.latch];
            l.exit = remap[l.exit];
            l.nodes.retain(|&nd| reach[nd]);
            for nd in &mut l.nodes {
                *nd = remap[*nd];
            }
            loop_remap[i] = loops.len();
            loops.push(l);
        }
        for l in &mut loops {
            l.children.retain(|&c| loop_remap[c] != usize::MAX);
            for c in &mut l.children {
                *c = loop_remap[*c];
            }
        }
        let mut top_loops: Vec<usize> = self
            .top_loops
            .iter()
            .filter(|&&t| loop_remap[t] != usize::MAX)
            .map(|&t| loop_remap[t])
            .collect();
        top_loops.sort_unstable();
        Cfg {
            entry: remap[self.entry],
            exit: remap[self.exit],
            blocks,
            loops,
            top_loops,
        }
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the CFG has no blocks (never happens for built
    /// CFGs; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The loop (innermost) containing a node, if any.
    pub fn innermost_loop_of(&self, node: NodeId) -> Option<usize> {
        // Innermost = the latest-discovered loop containing the node whose
        // children don't contain it.
        let mut best: Option<usize> = None;
        for (i, l) in self.loops.iter().enumerate() {
            if l.nodes.contains(&node) {
                let child_has = l
                    .children
                    .iter()
                    .any(|&c| self.loops[c].nodes.contains(&node));
                if !child_has {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                out.push((i, s));
            }
        }
        out
    }

    /// Back edges (`latch → header` of each loop).
    pub fn back_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.loops.iter().map(|l| (l.latch, l.header)).collect()
    }

    /// Reverse post-order of the acyclic graph obtained by removing back
    /// edges. The result starts at [`Cfg::entry`].
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let back: std::collections::HashSet<(NodeId, NodeId)> =
            self.back_edges().into_iter().collect();
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with explicit post-order bookkeeping.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = &self.blocks[node].succs;
            let mut advanced = false;
            while *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                if back.contains(&(node, s)) || visited[s] {
                    continue;
                }
                visited[s] = true;
                stack.push((s, 0));
                advanced = true;
                break;
            }
            if !advanced {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    loops: Vec<LoopScope>,
    top_loops: Vec<usize>,
    loop_stack: Vec<usize>,
    exit: NodeId,
}

impl Builder {
    fn new_block(&mut self) -> NodeId {
        self.blocks.push(BasicBlock::default());
        let id = self.blocks.len() - 1;
        // Register node in every loop currently open.
        for &l in &self.loop_stack {
            self.loops[l].nodes.push(id);
        }
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        self.blocks[from].succs.push(to);
    }

    /// Lowers a block starting in `cur`; returns the block in which control
    /// continues (which may be unreachable if the block ended in `return`).
    fn lower_block(&mut self, b: &Block, mut cur: NodeId) -> NodeId {
        for s in &b.stmts {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: NodeId) -> NodeId {
        match &s.kind {
            StmtKind::Decl { .. } | StmtKind::Assign { .. } | StmtKind::Call { .. } => {
                self.blocks[cur].items.push(CfgItem::Stmt(s.id));
                cur
            }
            StmtKind::Return { .. } => {
                self.blocks[cur].items.push(CfgItem::Stmt(s.id));
                let exit = self.exit;
                self.edge(cur, exit);
                // Continue in a fresh (unreachable) block so later dead
                // statements don't corrupt the graph.
                self.new_block()
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                self.blocks[cur].items.push(CfgItem::Cond(s.id));
                let then_entry = self.new_block();
                let else_entry = self.new_block();
                self.edge(cur, then_entry);
                self.edge(cur, else_entry);
                let then_end = self.lower_block(then_blk, then_entry);
                let else_end = self.lower_block(else_blk, else_entry);
                let join = self.new_block();
                self.edge(then_end, join);
                self.edge(else_end, join);
                join
            }
            StmtKind::For {
                lo, hi, step, body, ..
            } => {
                let bound_hint = match (lo.as_int_const(), hi.as_int_const()) {
                    (Some(l), Some(h)) if h > l => Some(((h - l) as u64).div_ceil(*step as u64)),
                    (Some(l), Some(h)) if h <= l => Some(0),
                    _ => None,
                };
                self.lower_loop(s.id, body, cur, bound_hint)
            }
            StmtKind::While { bound, body, .. } => self.lower_loop(s.id, body, cur, Some(*bound)),
        }
    }

    fn lower_loop(
        &mut self,
        stmt: StmtId,
        body: &Block,
        cur: NodeId,
        bound_hint: Option<u64>,
    ) -> NodeId {
        let loop_idx = self.loops.len();
        if let Some(&parent) = self.loop_stack.last() {
            self.loops[parent].children.push(loop_idx);
        } else {
            self.top_loops.push(loop_idx);
        }
        self.loops.push(LoopScope {
            stmt,
            header: 0,
            latch: 0,
            exit: 0,
            nodes: Vec::new(),
            children: Vec::new(),
            bound_hint,
        });
        self.loop_stack.push(loop_idx);
        let header = self.new_block();
        self.blocks[header].items.push(CfgItem::LoopTest(stmt));
        self.edge(cur, header);
        let body_entry = self.new_block();
        self.edge(header, body_entry);
        let body_end = self.lower_block(body, body_entry);
        // body_end doubles as the latch.
        self.edge(body_end, header);
        self.loop_stack.pop();
        let exit = self.new_block();
        self.edge(header, exit);
        let l = &mut self.loops[loop_idx];
        l.header = header;
        l.latch = body_end;
        l.exit = exit;
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::build(&p.functions[0])
    }

    #[test]
    fn straight_line_has_entry_and_exit() {
        let c = cfg_of("void f() { int x; x = 1; x = 2; }");
        assert_eq!(c.blocks[c.entry].items.len(), 3);
        assert_eq!(c.blocks[c.entry].succs, vec![c.exit]);
        assert!(c.loops.is_empty());
    }

    #[test]
    fn if_makes_diamond() {
        let c = cfg_of("void f(int x) { int y; if (x > 0) { y = 1; } else { y = 2; } y = 3; }");
        // entry has 2 successors; both lead to a join.
        assert_eq!(c.blocks[c.entry].succs.len(), 2);
        let t = c.blocks[c.entry].succs[0];
        let e = c.blocks[c.entry].succs[1];
        assert_eq!(c.blocks[t].succs, c.blocks[e].succs);
    }

    #[test]
    fn for_loop_structure_and_bound() {
        let c = cfg_of("void f() { int i; int s; s = 0; for (i=0;i<10;i=i+2) { s = s + i; } }");
        assert_eq!(c.loops.len(), 1);
        let l = &c.loops[0];
        assert_eq!(l.bound_hint, Some(5));
        // Header branches into body and exit; latch returns to header.
        assert_eq!(c.blocks[l.header].succs.len(), 2);
        assert!(c.blocks[l.latch].succs.contains(&l.header));
        assert_eq!(c.back_edges(), vec![(l.latch, l.header)]);
    }

    #[test]
    fn degenerate_loop_bound_is_zero() {
        let c = cfg_of("void f() { int i; for (i=5;i<5;i=i+1) { } }");
        assert_eq!(c.loops[0].bound_hint, Some(0));
    }

    #[test]
    fn nonconstant_bound_is_none() {
        let c = cfg_of("void f(int n) { int i; for (i=0;i<n;i=i+1) { } }");
        assert_eq!(c.loops[0].bound_hint, None);
    }

    #[test]
    fn while_bound_comes_from_pragma() {
        let c = cfg_of("void f() { int x; x = 0; #pragma bound 7\nwhile (x < 5) { x = x + 1; } }");
        assert_eq!(c.loops[0].bound_hint, Some(7));
    }

    #[test]
    fn nested_loops_form_tree() {
        let c = cfg_of(
            "void f() { int i; int j; \
             for (i=0;i<4;i=i+1) { for (j=0;j<8;j=j+1) { } } \
             for (i=0;i<2;i=i+1) { } }",
        );
        assert_eq!(c.loops.len(), 3);
        assert_eq!(c.top_loops.len(), 2);
        let outer = c.top_loops[0];
        assert_eq!(c.loops[outer].children.len(), 1);
        let inner = c.loops[outer].children[0];
        assert_eq!(c.loops[inner].bound_hint, Some(8));
        // Inner loop nodes are a subset of outer loop nodes.
        for n in &c.loops[inner].nodes {
            assert!(c.loops[outer].nodes.contains(n));
        }
    }

    #[test]
    fn innermost_loop_query() {
        let c =
            cfg_of("void f() { int i; int j; for (i=0;i<4;i=i+1) { for (j=0;j<8;j=j+1) { } } }");
        let inner_idx = c.loops[c.top_loops[0]].children[0];
        let inner_header = c.loops[inner_idx].header;
        assert_eq!(c.innermost_loop_of(inner_header), Some(inner_idx));
        assert_eq!(c.innermost_loop_of(c.entry), None);
    }

    #[test]
    fn return_jumps_to_exit() {
        let c = cfg_of("int f(int x) { if (x > 0) { return 1; } else { } return 0; }");
        // Two blocks have an edge to exit (the return in then-branch and
        // the trailing return).
        let into_exit = c.edges().iter().filter(|(_, t)| *t == c.exit).count();
        assert_eq!(into_exit, 2);
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_respects_dag() {
        let c = cfg_of(
            "void f(int n) { int i; int s; s = 0; \
             for (i=0;i<n;i=i+1) { if (s > 3) { s = 0; } else { s = s + 1; } } }",
        );
        let order = c.reverse_postorder();
        assert_eq!(order[0], c.entry);
        // Every forward edge goes from earlier to later in the order.
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let back: std::collections::HashSet<_> = c.back_edges().into_iter().collect();
        for (f, t) in c.edges() {
            if back.contains(&(f, t)) {
                continue;
            }
            if let (Some(&pf), Some(&pt)) = (pos.get(&f), pos.get(&t)) {
                assert!(pf < pt, "edge {f}->{t} violates RPO");
            }
        }
    }
}
