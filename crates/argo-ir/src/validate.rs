//! Semantic validation: symbols, types, call graph (no recursion).
//!
//! Validation establishes the invariants the rest of the tool-chain relies
//! on: every name is declared exactly once per function, every expression is
//! well-typed (with implicit `int`→`real` widening only), arrays are only
//! used with full index lists or passed whole to calls, and the call graph
//! is acyclic — recursion would make WCET analysis unsound.

use crate::ast::*;
use crate::intrinsics;
use crate::types::{Scalar, Type};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error produced by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// Human-readable message.
    pub msg: String,
    /// Function in which the error occurred, if applicable.
    pub function: Option<String>,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "validation error in `{name}`: {}", self.msg),
            None => write!(f, "validation error: {}", self.msg),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Per-function symbol table: every parameter and local declaration.
pub type SymbolTable = BTreeMap<String, Type>;

/// Builds the symbol table of a function (parameters plus all declarations,
/// including those nested inside loops and conditionals).
pub fn symbol_table(f: &Function) -> SymbolTable {
    let mut table = SymbolTable::new();
    for p in &f.params {
        table.insert(p.name.clone(), p.ty.clone());
    }
    crate::visit::walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Decl { name, ty, .. } = &s.kind {
            table.insert(name.clone(), ty.clone());
        }
    });
    table
}

/// Validates a whole program.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found: duplicate or undeclared
/// symbols, type errors, array-usage errors, bad calls, non-`int` loop
/// variables, or recursion in the call graph.
pub fn validate(p: &Program) -> Result<(), ValidateError> {
    // Function table, duplicate detection, intrinsic collision.
    let mut funcs: BTreeMap<&str, &Function> = BTreeMap::new();
    for f in &p.functions {
        if intrinsics::lookup(&f.name).is_some() {
            return Err(ValidateError {
                msg: format!("function `{}` shadows an intrinsic", f.name),
                function: None,
            });
        }
        if funcs.insert(&f.name, f).is_some() {
            return Err(ValidateError {
                msg: format!("duplicate function `{}`", f.name),
                function: None,
            });
        }
    }
    for f in &p.functions {
        let mut checker = Checker {
            program: p,
            f,
            table: SymbolTable::new(),
        };
        checker.check_function()?;
    }
    check_no_recursion(p)?;
    Ok(())
}

struct Checker<'a> {
    program: &'a Program,
    f: &'a Function,
    table: SymbolTable,
}

impl<'a> Checker<'a> {
    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError {
            msg: msg.into(),
            function: Some(self.f.name.clone()),
        }
    }

    fn check_function(&mut self) -> Result<(), ValidateError> {
        // Declarations: unique across the whole function (C89-like).
        for p in &self.f.params {
            if self.table.insert(p.name.clone(), p.ty.clone()).is_some() {
                return Err(self.err(format!("duplicate parameter `{}`", p.name)));
            }
        }
        let mut decl_err = None;
        crate::visit::walk_stmts(&self.f.body, &mut |s| {
            if let StmtKind::Decl { name, ty, .. } = &s.kind {
                if self.table.insert(name.clone(), ty.clone()).is_some() && decl_err.is_none() {
                    decl_err = Some(name.clone());
                }
            }
        });
        if let Some(name) = decl_err {
            return Err(self.err(format!("duplicate declaration of `{name}`")));
        }
        self.check_block(&self.f.body)?;
        Ok(())
    }

    fn var_type(&self, name: &str) -> Result<&Type, ValidateError> {
        self.table
            .get(name)
            .ok_or_else(|| self.err(format!("use of undeclared variable `{name}`")))
    }

    fn check_block(&self, b: &Block) -> Result<(), ValidateError> {
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn check_stmt(&self, s: &Stmt) -> Result<(), ValidateError> {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if let Some(e) = init {
                    if ty.is_array() {
                        return Err(self.err(format!("array `{name}` cannot have initialiser")));
                    }
                    let et = self.expr_type(e)?;
                    self.check_assignable(ty.elem(), et, name)?;
                }
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let target_scalar = match target {
                    LValue::Var(n) => {
                        let t = self.var_type(n)?;
                        if t.is_array() {
                            return Err(
                                self.err(format!("cannot assign whole array `{n}` directly"))
                            );
                        }
                        t.elem()
                    }
                    LValue::ArrayElem { array, indices } => self.check_indices(array, indices)?,
                };
                let vt = self.expr_type(value)?;
                self.check_assignable(target_scalar, vt, target.base())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_bool(cond, "if condition")?;
                self.check_block(then_blk)?;
                self.check_block(else_blk)
            }
            StmtKind::For {
                var, lo, hi, body, ..
            } => {
                let t = self.var_type(var)?;
                if *t != Type::Scalar(Scalar::Int) {
                    return Err(self.err(format!("loop variable `{var}` must be a scalar int")));
                }
                self.expect_int(lo, "loop lower bound")?;
                self.expect_int(hi, "loop upper bound")?;
                self.check_block(body)
            }
            StmtKind::While { cond, body, .. } => {
                self.expect_bool(cond, "while condition")?;
                self.check_block(body)
            }
            StmtKind::Call { name, args } => {
                let ret = self.check_call(name, args)?;
                // Statement-position calls may discard any return value.
                let _ = ret;
                Ok(())
            }
            StmtKind::Return { value } => match (self.f.ret, value) {
                (None, None) => Ok(()),
                (None, Some(_)) => Err(self.err("void function returns a value")),
                (Some(_), None) => Err(self.err("non-void function returns no value")),
                (Some(rt), Some(e)) => {
                    let et = self.expr_type(e)?;
                    self.check_assignable(rt, et, "return value")
                }
            },
        }
    }

    fn check_assignable(
        &self,
        target: Scalar,
        value: Scalar,
        what: &str,
    ) -> Result<(), ValidateError> {
        let ok = target == value || (target == Scalar::Real && value == Scalar::Int);
        if ok {
            Ok(())
        } else {
            Err(self.err(format!("cannot assign `{value}` to `{target}` ({what})")))
        }
    }

    fn check_indices(&self, array: &str, indices: &[Expr]) -> Result<Scalar, ValidateError> {
        let t = self.var_type(array)?;
        let Type::Array { elem, dims } = t else {
            return Err(self.err(format!("`{array}` is not an array")));
        };
        if dims.len() != indices.len() {
            return Err(self.err(format!(
                "`{array}` has {} dimension(s) but {} index(es) given",
                dims.len(),
                indices.len()
            )));
        }
        for idx in indices {
            self.expect_int(idx, "array index")?;
        }
        Ok(*elem)
    }

    fn expect_bool(&self, e: &Expr, what: &str) -> Result<(), ValidateError> {
        let t = self.expr_type(e)?;
        if t != Scalar::Bool {
            return Err(self.err(format!("{what} must be bool, found `{t}`")));
        }
        Ok(())
    }

    fn expect_int(&self, e: &Expr, what: &str) -> Result<(), ValidateError> {
        let t = self.expr_type(e)?;
        if t != Scalar::Int {
            return Err(self.err(format!("{what} must be int, found `{t}`")));
        }
        Ok(())
    }

    fn check_call(&self, name: &str, args: &[Expr]) -> Result<Option<Scalar>, ValidateError> {
        if let Some(sig) = intrinsics::lookup(name) {
            if sig.params.len() != args.len() {
                return Err(self.err(format!(
                    "intrinsic `{name}` takes {} argument(s), {} given",
                    sig.params.len(),
                    args.len()
                )));
            }
            for (a, &pt) in args.iter().zip(sig.params) {
                let at = self.expr_type(a)?;
                self.check_assignable(pt, at, &format!("argument of `{name}`"))?;
            }
            return Ok(Some(sig.ret));
        }
        let Some(callee) = self.program.function(name) else {
            return Err(self.err(format!("call to unknown function `{name}`")));
        };
        if callee.params.len() != args.len() {
            return Err(self.err(format!(
                "`{name}` takes {} argument(s), {} given",
                callee.params.len(),
                args.len()
            )));
        }
        for (a, p) in args.iter().zip(&callee.params) {
            if p.ty.is_array() {
                // Arrays must be passed whole, by name, with matching shape.
                let Expr::Var(arg_name) = a else {
                    return Err(self.err(format!(
                        "array parameter `{}` of `{name}` requires an array variable argument",
                        p.name
                    )));
                };
                let at = self.var_type(arg_name)?;
                if at != &p.ty {
                    return Err(self.err(format!(
                        "array argument `{arg_name}` has type `{at}` but `{name}` expects `{}`",
                        p.ty
                    )));
                }
            } else {
                let at = self.expr_type(a)?;
                self.check_assignable(p.ty.elem(), at, &format!("argument of `{name}`"))?;
            }
        }
        Ok(callee.ret)
    }

    fn expr_type(&self, e: &Expr) -> Result<Scalar, ValidateError> {
        match e {
            Expr::IntLit(_) => Ok(Scalar::Int),
            Expr::RealLit(_) => Ok(Scalar::Real),
            Expr::BoolLit(_) => Ok(Scalar::Bool),
            Expr::Var(n) => {
                let t = self.var_type(n)?;
                if t.is_array() {
                    return Err(self.err(format!(
                        "array `{n}` used as a scalar (arrays may only be indexed or passed whole)"
                    )));
                }
                Ok(t.elem())
            }
            Expr::ArrayElem { array, indices } => self.check_indices(array, indices),
            Expr::Unary { op, arg } => {
                let t = self.expr_type(arg)?;
                match op {
                    UnOp::Neg if t == Scalar::Int || t == Scalar::Real => Ok(t),
                    UnOp::Not if t == Scalar::Bool => Ok(Scalar::Bool),
                    _ => Err(self.err(format!("unary `{op}` not applicable to `{t}`"))),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.expr_type(lhs)?;
                let rt = self.expr_type(rhs)?;
                if op.is_logical() {
                    if lt == Scalar::Bool && rt == Scalar::Bool {
                        return Ok(Scalar::Bool);
                    }
                    return Err(self.err(format!("`{op}` requires bool operands")));
                }
                // Arithmetic / comparison: int, real, with int→real promotion.
                let unified = match (lt, rt) {
                    (Scalar::Int, Scalar::Int) => Scalar::Int,
                    (Scalar::Real, Scalar::Real)
                    | (Scalar::Int, Scalar::Real)
                    | (Scalar::Real, Scalar::Int) => Scalar::Real,
                    (Scalar::Bool, _) | (_, Scalar::Bool) => {
                        if matches!(op, BinOp::Eq | BinOp::Ne)
                            && lt == Scalar::Bool
                            && rt == Scalar::Bool
                        {
                            return Ok(Scalar::Bool);
                        }
                        return Err(
                            self.err(format!("`{op}` not applicable to bool operands here"))
                        );
                    }
                };
                if op.is_comparison() {
                    Ok(Scalar::Bool)
                } else if *op == BinOp::Rem && unified != Scalar::Int {
                    Err(self.err("`%` requires int operands"))
                } else {
                    Ok(unified)
                }
            }
            Expr::Call { name, args } => match self.check_call(name, args)? {
                Some(t) => Ok(t),
                None => Err(self.err(format!("void function `{name}` used in expression"))),
            },
            Expr::Cast { to, arg } => {
                let _ = self.expr_type(arg)?;
                Ok(*to)
            }
        }
    }
}

fn check_no_recursion(p: &Program) -> Result<(), ValidateError> {
    // Kahn-style cycle detection over the call graph.
    let mut edges: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for f in &p.functions {
        let mut callees = BTreeSet::new();
        for s in &f.body.stmts {
            callees.extend(crate::visit::called_functions(s));
        }
        callees.retain(|c| p.function(c).is_some());
        edges.insert(&f.name, callees);
    }
    let mut visiting = BTreeSet::new();
    let mut done = BTreeSet::new();
    fn dfs<'a>(
        name: &'a str,
        edges: &'a BTreeMap<&str, BTreeSet<String>>,
        visiting: &mut BTreeSet<&'a str>,
        done: &mut BTreeSet<&'a str>,
    ) -> Result<(), String> {
        if done.contains(name) {
            return Ok(());
        }
        if !visiting.insert(name) {
            return Err(name.to_string());
        }
        if let Some(callees) = edges.get(name) {
            for c in callees {
                dfs(c, edges, visiting, done)?;
            }
        }
        visiting.remove(name);
        done.insert(name);
        Ok(())
    }
    let names: Vec<&str> = edges.keys().copied().collect();
    for name in names {
        if let Err(cycle_at) = dfs(name, &edges, &mut visiting, &mut done) {
            return Err(ValidateError {
                msg: format!("recursion detected involving `{cycle_at}` (WCET requires an acyclic call graph)"),
                function: None,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn check(src: &str) -> Result<(), ValidateError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            "real norm(real v[8]) { real s; int i; s = 0.0; \
             for (i=0;i<8;i=i+1) { s = s + v[i]*v[i]; } return sqrt(s); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = check("void f() { x = 1; }").unwrap_err();
        assert!(err.msg.contains("undeclared"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let err = check("void f() { int x; real x; }").unwrap_err();
        assert!(err.msg.contains("duplicate"));
    }

    #[test]
    fn rejects_type_mismatch_assignment() {
        let err = check("void f() { int x; x = 1.5; }").unwrap_err();
        assert!(err.msg.contains("cannot assign"));
    }

    #[test]
    fn allows_int_to_real_widening() {
        check("void f() { real x; x = 3; x = x + 1; }").unwrap();
    }

    #[test]
    fn rejects_bool_arithmetic() {
        assert!(check("void f() { bool b; b = true; b = b + b; }").is_err());
    }

    #[test]
    fn rejects_nonbool_condition() {
        let err = check("void f() { int x; x = 1; if (x) { } else { } }").unwrap_err();
        assert!(err.msg.contains("must be bool"));
    }

    #[test]
    fn rejects_wrong_index_count() {
        let err = check("void f(real a[4][4]) { real x; x = a[1]; }").unwrap_err();
        assert!(err.msg.contains("dimension"));
    }

    #[test]
    fn rejects_array_as_scalar() {
        let err = check("void f(real a[4]) { real x; x = a; }").unwrap_err();
        assert!(err.msg.contains("used as a scalar"));
    }

    #[test]
    fn rejects_recursion() {
        let err = check("int f(int n) { return g(n); } int g(int n) { return f(n); }").unwrap_err();
        assert!(err.msg.contains("recursion"));
    }

    #[test]
    fn rejects_self_recursion() {
        let err = check("int f(int n) { return f(n); }").unwrap_err();
        assert!(err.msg.contains("recursion"));
    }

    #[test]
    fn accepts_dag_call_graph() {
        check(
            "int leaf(int x) { return x + 1; } \
             int mid(int x) { return leaf(x) + leaf(x); } \
             int top(int x) { return mid(leaf(x)); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_call() {
        let err = check("void f() { mystery(1); }").unwrap_err();
        assert!(err.msg.contains("unknown function"));
    }

    #[test]
    fn checks_intrinsic_arity_and_types() {
        assert!(check("void f() { real x; x = sqrt(2.0, 3.0); }").is_err());
        assert!(check("void f() { real x; x = sqrt(true); }").is_err());
        check("void f() { real x; x = sqrt(2); }").unwrap(); // int widens
    }

    #[test]
    fn rejects_intrinsic_shadowing() {
        let err = check("real sqrt(real x) { return x; }").unwrap_err();
        assert!(err.msg.contains("shadows an intrinsic"));
    }

    #[test]
    fn array_arguments_must_match_shape() {
        let err = check("void g(real a[8]) { } void f(real b[4]) { g(b); }").unwrap_err();
        assert!(err.msg.contains("array argument"));
    }

    #[test]
    fn rejects_noninteger_loop_var() {
        let err = check("void f() { real i; for (i=0;i<4;i=i+1) { } }").unwrap_err();
        assert!(err.msg.contains("must be a scalar int"));
    }

    #[test]
    fn rejects_rem_on_reals() {
        assert!(check("void f() { real x; x = 1.0; x = x % 2.0; }").is_err());
    }

    #[test]
    fn symbol_table_collects_nested_decls() {
        let p = parse_program("void f(int n) { int i; for (i=0;i<n;i=i+1) { real t; t = 0.0; } }")
            .unwrap();
        let t = symbol_table(&p.functions[0]);
        assert_eq!(t.len(), 3);
        assert!(t.contains_key("t"));
    }
}
