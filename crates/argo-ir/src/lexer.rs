//! Hand-written lexer for the mini-C surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator token, e.g. `"+"`, `"<="`, `"("`.
    Punct(&'static str),
    /// `#pragma <ident> <int>` directive (only `bound` is used).
    Pragma(String, i64),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Pragma(k, v) => write!(f, "#pragma {k} {v}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its 1-based source line, for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Error produced while lexing.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

const PUNCTS2: &[&str] = &["<=", ">=", "==", "!=", "&&", "||", "+="];
const PUNCTS1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[", "]", ";", ",",
];

/// Lexes `src` into a token stream terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`LexError`] on malformed numbers, unknown characters or
/// malformed `#pragma` directives. Line comments (`//`) and block comments
/// (`/* */`) are skipped.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            i += 2;
            loop {
                if i + 1 >= n {
                    return Err(LexError {
                        msg: "unterminated block comment".into(),
                        line,
                    });
                }
                if bytes[i] == '\n' {
                    line += 1;
                }
                if bytes[i] == '*' && bytes[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Pragma.
        if c == '#' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let words: Vec<&str> = text.split_whitespace().collect();
            if words.len() == 3 && words[0] == "#pragma" {
                let val: i64 = words[2].parse().map_err(|_| LexError {
                    msg: format!("bad pragma value `{}`", words[2]),
                    line,
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Pragma(words[1].to_string(), val),
                    line,
                });
                continue;
            }
            return Err(LexError {
                msg: format!("malformed directive `{text}`"),
                line,
            });
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_real = false;
            while i < n
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && i > start
                        && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
            {
                if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                    is_real = true;
                }
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            if is_real {
                let v: f64 = text.parse().map_err(|_| LexError {
                    msg: format!("bad real literal `{text}`"),
                    line,
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Real(v),
                    line,
                });
            } else {
                let v: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("bad int literal `{text}`"),
                    line,
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Int(v),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            toks.push(SpannedTok {
                tok: Tok::Ident(text),
                line,
            });
            continue;
        }
        // Two-char punctuation first.
        if i + 1 < n {
            let two: String = [bytes[i], bytes[i + 1]].iter().collect();
            if let Some(p) = PUNCTS2.iter().find(|p| ***p == two) {
                toks.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line,
                });
                i += 2;
                continue;
            }
        }
        let one = c.to_string();
        if let Some(p) = PUNCTS1.iter().find(|p| ***p == one) {
            toks.push(SpannedTok {
                tok: Tok::Punct(p),
                line,
            });
            i += 1;
            continue;
        }
        return Err(LexError {
            msg: format!("unexpected character `{c}`"),
            line,
        });
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_reals_and_exponents() {
        assert_eq!(kinds("1.5")[0], Tok::Real(1.5));
        assert_eq!(kinds("2e3")[0], Tok::Real(2000.0));
        assert_eq!(kinds("1.25e-2")[0], Tok::Real(0.0125));
    }

    #[test]
    fn two_char_ops_take_precedence() {
        assert_eq!(kinds("a <= b")[1], Tok::Punct("<="));
        assert_eq!(kinds("a < = b")[1], Tok::Punct("<"));
        assert_eq!(kinds("a == b")[1], Tok::Punct("=="));
        assert_eq!(kinds("a && b")[1], Tok::Punct("&&"));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// hello\nx /* multi\nline */ = 1;").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].tok, Tok::Punct("="));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn lexes_pragma_bound() {
        let toks = kinds("#pragma bound 16\nwhile (x < y) { }");
        assert_eq!(toks[0], Tok::Pragma("bound".into(), 16));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("x = $;").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = lex("x = 1;\ny = $;").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
