//! Reference interpreter for the mini-C IR.
//!
//! The interpreter serves two roles in the reproduction:
//!
//! 1. **Functional oracle** — the sequential semantics against which the
//!    parallelized program (executed by `argo-sim`) is checked for bitwise
//!    equality.
//! 2. **Execution engine of the platform simulator** — `argo-sim` drives
//!    the interpreter statement-by-statement through an [`ExecHook`] that
//!    observes every operation and memory access and charges platform
//!    cycles for them.
//!
//! Since the slot-resolution rework the interpreter executes the
//! [resolved mirror](crate::resolve) of the program, not the AST:
//! [`Interp::new`] resolves the program once (or borrows a prebuilt
//! [`Resolution`] via [`Interp::with_resolution`]), and every activation
//! [`Frame`] is a flat `Vec` of bindings indexed by frame slot — the
//! per-statement execution path performs no string hashing and no
//! string clones. Hooks still receive variable *names* (`&str`
//! borrowed from the resolution's interner) so address- and
//! placement-sensitive timing models keep working unchanged.
//!
//! Runtime errors (out-of-bounds indexing, exceeded `while` bounds,
//! division by zero) are reported, never ignored: an exceeded loop bound
//! means a WCET annotation was unsound and the tests treat that as fatal.

use crate::ast::*;
use crate::resolve::{RArg, RCall, RExpr, RFunction, RLValue, RStmt, RStmtKind, Resolution, Slot};
use crate::types::{Scalar, Type};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarVal {
    /// 64-bit integer value.
    Int(i64),
    /// 64-bit float value.
    Real(f64),
    /// Boolean value.
    Bool(bool),
}

impl ScalarVal {
    /// The scalar type of this value.
    pub fn scalar(&self) -> Scalar {
        match self {
            ScalarVal::Int(_) => Scalar::Int,
            ScalarVal::Real(_) => Scalar::Real,
            ScalarVal::Bool(_) => Scalar::Bool,
        }
    }

    fn as_int(&self) -> Result<i64, RuntimeError> {
        match self {
            ScalarVal::Int(v) => Ok(*v),
            other => Err(RuntimeError::new(format!("expected int, found {other:?}"))),
        }
    }

    fn as_real(&self) -> Result<f64, RuntimeError> {
        match self {
            ScalarVal::Real(v) => Ok(*v),
            ScalarVal::Int(v) => Ok(*v as f64),
            other => Err(RuntimeError::new(format!("expected real, found {other:?}"))),
        }
    }

    fn as_bool(&self) -> Result<bool, RuntimeError> {
        match self {
            ScalarVal::Bool(v) => Ok(*v),
            other => Err(RuntimeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl fmt::Display for ScalarVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarVal::Int(v) => write!(f, "{v}"),
            ScalarVal::Real(v) => write!(f, "{v}"),
            ScalarVal::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Flat storage for an array variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayData {
    /// Element type.
    pub elem: Scalar,
    /// Dimensions, outermost first.
    pub dims: Vec<usize>,
    /// Row-major element storage.
    pub data: Vec<ScalarVal>,
}

impl ArrayData {
    /// Creates a zero-initialised array of the given shape.
    pub fn zeroed(elem: Scalar, dims: Vec<usize>) -> ArrayData {
        let n: usize = dims.iter().product();
        let z = match elem {
            Scalar::Int => ScalarVal::Int(0),
            Scalar::Real => ScalarVal::Real(0.0),
            Scalar::Bool => ScalarVal::Bool(false),
        };
        ArrayData {
            elem,
            dims,
            data: vec![z; n],
        }
    }

    /// Creates a 1-D real array from a slice.
    pub fn from_reals(values: &[f64]) -> ArrayData {
        ArrayData {
            elem: Scalar::Real,
            dims: vec![values.len()],
            data: values.iter().map(|&v| ScalarVal::Real(v)).collect(),
        }
    }

    /// Creates a 1-D int array from a slice.
    pub fn from_ints(values: &[i64]) -> ArrayData {
        ArrayData {
            elem: Scalar::Int,
            dims: vec![values.len()],
            data: values.iter().map(|&v| ScalarVal::Int(v)).collect(),
        }
    }

    /// Extracts all elements as `f64` (ints are widened).
    ///
    /// # Panics
    ///
    /// Panics if the array contains booleans.
    pub fn to_reals(&self) -> Vec<f64> {
        self.data
            .iter()
            .map(|v| match v {
                ScalarVal::Real(x) => *x,
                ScalarVal::Int(x) => *x as f64,
                ScalarVal::Bool(_) => panic!("bool array has no real view"),
            })
            .collect()
    }

    fn flat_index(&self, idx: &[i64]) -> Result<usize, RuntimeError> {
        if idx.len() != self.dims.len() {
            return Err(RuntimeError::new("index dimensionality mismatch"));
        }
        let mut flat = 0usize;
        for (k, (&i, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if i < 0 || i as usize >= d {
                return Err(RuntimeError::new(format!(
                    "index {i} out of bounds for dimension {k} (extent {d})"
                )));
            }
            flat = flat * d + i as usize;
        }
        Ok(flat)
    }
}

/// Classes of primitive operations, reported to the [`ExecHook`] so the
/// platform timing model can charge cycles per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/rem and address arithmetic.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Float add/sub.
    FloatAdd,
    /// Float multiply.
    FloatMul,
    /// Float divide.
    FloatDiv,
    /// Comparison (any type).
    Cmp,
    /// Boolean logic.
    Logic,
    /// Scalar cast.
    Cast,
    /// Intrinsic call (name available via [`ExecHook::on_intrinsic`]).
    Intrinsic,
    /// Taken/not-taken branch resolution.
    Branch,
    /// Per-iteration loop bookkeeping (increment + bound test).
    LoopOverhead,
    /// Function call/return linkage overhead.
    CallOverhead,
}

/// Kind of memory access, reported to the [`ExecHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Scalar variable read.
    ReadScalar,
    /// Scalar variable write.
    WriteScalar,
    /// Array element read.
    ReadElem,
    /// Array element write.
    WriteElem,
}

impl AccessKind {
    /// Returns `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::WriteScalar | AccessKind::WriteElem)
    }

    /// Returns `true` for array-element accesses.
    pub fn is_array(self) -> bool {
        matches!(self, AccessKind::ReadElem | AccessKind::WriteElem)
    }
}

/// Observer of interpreter execution, used by the platform simulator to
/// attach a timing model. All methods have empty defaults.
pub trait ExecHook {
    /// A statement begins executing.
    fn on_stmt(&mut self, _id: StmtId) {}
    /// A primitive operation executes.
    fn on_op(&mut self, _op: OpClass) {}
    /// An intrinsic with the given name executes.
    fn on_intrinsic(&mut self, _name: &str) {}
    /// A variable access occurs. `base` is the variable name in the
    /// *currently executing function's* frame.
    fn on_access(&mut self, _base: &str, _kind: AccessKind) {}
    /// An array-element access occurs, with the flat element index (for
    /// address-sensitive models such as caches). The default forwards to
    /// [`ExecHook::on_access`].
    fn on_access_elem(&mut self, base: &str, kind: AccessKind, _flat: u64) {
        self.on_access(base, kind);
    }
}

/// A hook that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl ExecHook for NullHook {}

/// A hook that counts operations, accesses and statements — handy in tests.
#[derive(Debug, Default, Clone)]
pub struct CountingHook {
    /// Number of statements entered.
    pub stmts: u64,
    /// Number of primitive ops by class.
    pub ops: HashMap<OpClass, u64>,
    /// Number of memory accesses (scalar + array).
    pub accesses: u64,
    /// Number of array-element accesses only.
    pub array_accesses: u64,
}

impl ExecHook for CountingHook {
    fn on_stmt(&mut self, _id: StmtId) {
        self.stmts += 1;
    }
    fn on_op(&mut self, op: OpClass) {
        *self.ops.entry(op).or_insert(0) += 1;
    }
    fn on_access(&mut self, _base: &str, kind: AccessKind) {
        self.accesses += 1;
        if kind.is_array() {
            self.array_accesses += 1;
        }
    }
}

/// Error raised during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Human-readable message.
    pub msg: String,
}

impl RuntimeError {
    fn new(msg: impl Into<String>) -> RuntimeError {
        RuntimeError { msg: msg.into() }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.msg)
    }
}

impl std::error::Error for RuntimeError {}

/// Argument value for a function invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Scalar argument (by value).
    Scalar(ScalarVal),
    /// Array argument (by reference; final contents retrievable after the
    /// call through [`CallOutcome::arrays`]).
    Array(ArrayData),
}

impl From<i64> for ArgVal {
    fn from(v: i64) -> ArgVal {
        ArgVal::Scalar(ScalarVal::Int(v))
    }
}

impl From<f64> for ArgVal {
    fn from(v: f64) -> ArgVal {
        ArgVal::Scalar(ScalarVal::Real(v))
    }
}

impl From<ArrayData> for ArgVal {
    fn from(a: ArrayData) -> ArgVal {
        ArgVal::Array(a)
    }
}

/// Result of [`Interp::call_full`]: the return value plus final contents of
/// each array parameter, in parameter order.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// Scalar return value, if any.
    pub ret: Option<ScalarVal>,
    /// `(parameter name, final contents)` for each array parameter.
    pub arrays: Vec<(String, ArrayData)>,
}

/// One frame-slot binding. Every slot starts [`Binding::Unbound`]; a
/// declaration or parameter binding moves it to a live state.
#[derive(Debug, Clone)]
enum Binding {
    /// No declaration has executed for this slot yet.
    Unbound,
    /// Live scalar value.
    Scalar(ScalarVal),
    /// Declared but uninitialised scalar.
    Uninit(Scalar),
    /// Array handle (index into the interpreter's array store).
    Array(usize),
}

/// A function activation frame: the slot-indexed bindings of one
/// function body (flat `Vec`, O(1) access, no hashing).
///
/// Frames are exposed publicly so the platform simulator can hold the entry
/// function's frame open while executing individual task statements.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// Index of the frame's function in the resolution.
    func: u32,
    bindings: Vec<Binding>,
}

/// Control-flow outcome of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow {
    /// Execution continues with the next statement.
    Normal,
    /// A `return` executed.
    Return(Option<ScalarVal>),
}

/// The interpreter. Holds the array store; frames reference arrays by id so
/// array parameters alias (C semantics). Execution runs over the
/// program's [`Resolution`] (built once in [`Interp::new`], or shared
/// via [`Interp::with_resolution`]).
pub struct Interp<'p> {
    program: &'p Program,
    resolved: Cow<'p, Resolution>,
    arrays: Vec<ArrayData>,
    /// Remaining execution fuel (statements); errors out at zero.
    fuel: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for `program` with a large default fuel
    /// budget (2^40 statements). Resolves the program once.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            resolved: Cow::Owned(Resolution::of(program)),
            arrays: Vec::new(),
            fuel: 1 << 40,
        }
    }

    /// Creates an interpreter sharing a prebuilt [`Resolution`] —
    /// sweep drivers that execute one program many times resolve once
    /// and pass the artifact here. `resolution` **must** have been
    /// built from an equal `program`; executing with a foreign
    /// resolution produces nonsense.
    pub fn with_resolution(program: &'p Program, resolution: &'p Resolution) -> Interp<'p> {
        Interp {
            program,
            resolved: Cow::Borrowed(resolution),
            arrays: Vec::new(),
            fuel: 1 << 40,
        }
    }

    /// The resolution this interpreter executes.
    pub fn resolution(&self) -> &Resolution {
        &self.resolved
    }

    /// Sets the execution fuel (number of statement executions allowed).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Calls a function whose arguments are all scalars and discards array
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates any [`RuntimeError`].
    pub fn call_scalar(
        &mut self,
        name: &str,
        args: &[ScalarVal],
    ) -> Result<Option<ScalarVal>, RuntimeError> {
        let args: Vec<ArgVal> = args.iter().map(|&s| ArgVal::Scalar(s)).collect();
        Ok(self.call_full(name, args, &mut NullHook)?.ret)
    }

    /// Calls a function with arbitrary arguments and a hook, returning the
    /// scalar result plus final array-parameter contents.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on arity mismatch, out-of-bounds access,
    /// integer division by zero, exceeded `while` bounds or exhausted fuel.
    pub fn call_full<H: ExecHook + ?Sized>(
        &mut self,
        name: &str,
        args: Vec<ArgVal>,
        hook: &mut H,
    ) -> Result<CallOutcome, RuntimeError> {
        let func = self
            .program
            .function(name)
            .ok_or_else(|| RuntimeError::new(format!("no function `{name}`")))?;
        let mut frame = self.make_frame(func, args)?;
        let fidx = frame.func as usize;
        let mut ret = None;
        {
            let mut m = self.machine();
            let resolved = m.resolved;
            let rfunc = resolved.function(fidx);
            if let Flow::Return(v) = m.exec_block(rfunc, &mut frame, &rfunc.body, hook)? {
                ret = v;
            }
        }
        let rfunc = self.resolved.function(fidx);
        let mut arrays = Vec::new();
        for (p, rp) in func.params.iter().zip(&rfunc.params) {
            if rp.is_array {
                if let Binding::Array(id) = frame.bindings[rp.slot.idx()] {
                    arrays.push((p.name.clone(), self.arrays[id].clone()));
                }
            }
        }
        Ok(CallOutcome { ret, arrays })
    }

    /// Builds an activation frame for `func` from argument values. Exposed
    /// for the platform simulator, which executes task statements one at a
    /// time inside a long-lived frame.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on arity or shape mismatch.
    pub fn make_frame(
        &mut self,
        func: &Function,
        args: Vec<ArgVal>,
    ) -> Result<Frame, RuntimeError> {
        let fidx = self
            .resolved
            .function_index(&func.name)
            .ok_or_else(|| RuntimeError::new(format!("no function `{}`", func.name)))?;
        let rfunc = self.resolved.function(fidx);
        if args.len() != func.params.len() {
            return Err(RuntimeError::new(format!(
                "`{}` expects {} argument(s), got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        if rfunc.params.len() != func.params.len() {
            return Err(RuntimeError::new(format!(
                "function `{}` does not match the interpreter's program",
                func.name
            )));
        }
        let mut bindings = vec![Binding::Unbound; rfunc.frame_len as usize];
        for ((p, rp), a) in func.params.iter().zip(&rfunc.params).zip(args) {
            let binding = match (a, &p.ty) {
                (ArgVal::Scalar(v), Type::Scalar(s)) => {
                    let v = coerce(v, *s)?;
                    Binding::Scalar(v)
                }
                (ArgVal::Array(data), Type::Array { elem, dims }) => {
                    if data.elem != *elem || &data.dims != dims {
                        return Err(RuntimeError::new(format!(
                            "array argument shape mismatch for `{}`",
                            p.name
                        )));
                    }
                    self.arrays.push(data);
                    Binding::Array(self.arrays.len() - 1)
                }
                _ => {
                    return Err(RuntimeError::new(format!(
                        "argument kind mismatch for `{}`",
                        p.name
                    )))
                }
            };
            bindings[rp.slot.idx()] = binding;
        }
        Ok(Frame {
            func: fidx as u32,
            bindings,
        })
    }

    /// Reads the current contents of an array variable in `frame`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if `name` is not a bound array.
    pub fn array_of(&self, frame: &Frame, name: &str) -> Result<&ArrayData, RuntimeError> {
        match self
            .resolved
            .slot_of(frame.func as usize, name)
            .map(|s| &frame.bindings[s.idx()])
        {
            Some(Binding::Array(id)) => Ok(&self.arrays[*id]),
            _ => Err(RuntimeError::new(format!("`{name}` is not a bound array"))),
        }
    }

    /// Reads the current value of a scalar variable in `frame`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if `name` is unbound or uninitialised.
    pub fn scalar_of(&self, frame: &Frame, name: &str) -> Result<ScalarVal, RuntimeError> {
        match self
            .resolved
            .slot_of(frame.func as usize, name)
            .map(|s| &frame.bindings[s.idx()])
        {
            Some(Binding::Scalar(v)) => Ok(*v),
            Some(Binding::Uninit(_)) => {
                Err(RuntimeError::new(format!("read of uninitialised `{name}`")))
            }
            _ => Err(RuntimeError::new(format!("`{name}` is not a bound scalar"))),
        }
    }

    /// Resets a scalar binding in `frame` to the uninitialised state.
    ///
    /// This is the privatization primitive of the parallel executor: a
    /// privatized scalar is reset before each task, so tasks can never
    /// observe each other's values through it (any read-before-write then
    /// fails loudly instead of silently racing). Names the frame's
    /// function does not reference are ignored.
    pub fn reset_scalar(&self, frame: &mut Frame, name: &str, scalar: Scalar) {
        if let Some(s) = self.resolved.slot_of(frame.func as usize, name) {
            frame.bindings[s.idx()] = Binding::Uninit(scalar);
        }
    }

    /// Executes one statement in `frame`, reporting events to `hook`.
    ///
    /// The statement is located by its [`StmtId`] in the resolution, so
    /// the program must have been renumbered (every parsed or
    /// transformed program is).
    ///
    /// # Errors
    ///
    /// See [`Interp::call_full`].
    pub fn exec_stmt<H: ExecHook + ?Sized>(
        &mut self,
        frame: &mut Frame,
        s: &Stmt,
        hook: &mut H,
    ) -> Result<Flow, RuntimeError> {
        self.exec_stmt_id(frame, s.id, hook)
    }

    /// Executes the statement with the given id in `frame` — the entry
    /// point the platform simulator uses to replay task statement lists
    /// without cloning any AST.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the id is unknown, belongs to a
    /// different function than `frame`, or execution fails (see
    /// [`Interp::call_full`]).
    pub fn exec_stmt_id<H: ExecHook + ?Sized>(
        &mut self,
        frame: &mut Frame,
        id: StmtId,
        hook: &mut H,
    ) -> Result<Flow, RuntimeError> {
        let (fidx, sidx) = self
            .resolved
            .stmt_loc(id)
            .ok_or_else(|| RuntimeError::new(format!("no statement {id}")))?;
        if fidx as u32 != frame.func {
            return Err(RuntimeError::new(format!(
                "statement {id} is not part of the frame's function"
            )));
        }
        let mut m = self.machine();
        let resolved = m.resolved;
        let rfunc = resolved.function(fidx);
        m.exec_stmt(rfunc, frame, rfunc.stmt(sidx), hook)
    }

    fn machine(&mut self) -> Machine<'_> {
        Machine {
            resolved: &self.resolved,
            arrays: &mut self.arrays,
            fuel: &mut self.fuel,
        }
    }
}

/// The execution engine: shared resolution + mutable interpreter state,
/// split so resolved statements (borrowed from the resolution) can be
/// walked while the array store mutates.
struct Machine<'a> {
    resolved: &'a Resolution,
    arrays: &'a mut Vec<ArrayData>,
    fuel: &'a mut u64,
}

impl<'a> Machine<'a> {
    #[inline]
    fn slot_name(&self, rfunc: &RFunction, slot: Slot) -> &'a str {
        self.resolved.name(rfunc.slot_symbols[slot.idx()])
    }

    fn exec_block<H: ExecHook + ?Sized>(
        &mut self,
        rfunc: &'a RFunction,
        frame: &mut Frame,
        block: &'a [u32],
        hook: &mut H,
    ) -> Result<Flow, RuntimeError> {
        for &i in block {
            if let Flow::Return(v) = self.exec_stmt(rfunc, frame, rfunc.stmt(i), hook)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt<H: ExecHook + ?Sized>(
        &mut self,
        rfunc: &'a RFunction,
        frame: &mut Frame,
        s: &'a RStmt,
        hook: &mut H,
    ) -> Result<Flow, RuntimeError> {
        if *self.fuel == 0 {
            return Err(RuntimeError::new("execution fuel exhausted"));
        }
        *self.fuel -= 1;
        hook.on_stmt(s.id);
        match &s.kind {
            RStmtKind::DeclScalar { slot, scalar, init } => {
                let binding = match init {
                    Some(e) => {
                        let v = self.eval(rfunc, frame, e, hook)?;
                        let v = coerce(v, *scalar)?;
                        hook.on_access(self.slot_name(rfunc, *slot), AccessKind::WriteScalar);
                        Binding::Scalar(v)
                    }
                    None => Binding::Uninit(*scalar),
                };
                // Redeclaration in a loop body resets the variable,
                // matching C block-scope semantics.
                frame.bindings[slot.idx()] = binding;
                Ok(Flow::Normal)
            }
            RStmtKind::DeclArray { slot, elem, dims } => {
                // Arrays are re-allocated zeroed on redeclaration.
                self.arrays.push(ArrayData::zeroed(*elem, dims.clone()));
                frame.bindings[slot.idx()] = Binding::Array(self.arrays.len() - 1);
                Ok(Flow::Normal)
            }
            RStmtKind::Assign { target, value } => {
                let v = self.eval(rfunc, frame, value, hook)?;
                match target {
                    RLValue::Var(slot) => {
                        let sc = match &frame.bindings[slot.idx()] {
                            Binding::Scalar(old) => old.scalar(),
                            Binding::Uninit(sc) => *sc,
                            Binding::Array(_) => {
                                return Err(RuntimeError::new(format!(
                                    "cannot assign whole array `{}`",
                                    self.slot_name(rfunc, *slot)
                                )))
                            }
                            Binding::Unbound => {
                                return Err(RuntimeError::new(format!(
                                    "unbound `{}`",
                                    self.slot_name(rfunc, *slot)
                                )))
                            }
                        };
                        frame.bindings[slot.idx()] = Binding::Scalar(coerce(v, sc)?);
                        hook.on_access(self.slot_name(rfunc, *slot), AccessKind::WriteScalar);
                    }
                    RLValue::Elem { array, indices } => {
                        let mut idx_buf = IndexBuf::default();
                        self.eval_indices(rfunc, frame, indices, hook, &mut idx_buf)?;
                        let id = match &frame.bindings[array.idx()] {
                            Binding::Array(id) => *id,
                            _ => {
                                return Err(RuntimeError::new(format!(
                                    "`{}` is not an array",
                                    self.slot_name(rfunc, *array)
                                )))
                            }
                        };
                        let arr = &mut self.arrays[id];
                        let flat = arr.flat_index(idx_buf.as_slice())?;
                        arr.data[flat] = coerce(v, arr.elem)?;
                        hook.on_access_elem(
                            self.slot_name(rfunc, *array),
                            AccessKind::WriteElem,
                            flat as u64,
                        );
                    }
                }
                Ok(Flow::Normal)
            }
            RStmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(rfunc, frame, cond, hook)?.as_bool()?;
                hook.on_op(OpClass::Branch);
                let blk = if c { then_blk } else { else_blk };
                self.exec_block(rfunc, frame, blk, hook)
            }
            RStmtKind::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = self.eval(rfunc, frame, lo, hook)?.as_int()?;
                let hi = self.eval(rfunc, frame, hi, hook)?.as_int()?;
                let var_name = self.slot_name(rfunc, *var);
                let mut i = lo;
                while i < hi {
                    hook.on_op(OpClass::LoopOverhead);
                    frame.bindings[var.idx()] = Binding::Scalar(ScalarVal::Int(i));
                    hook.on_access(var_name, AccessKind::WriteScalar);
                    if let Flow::Return(v) = self.exec_block(rfunc, frame, body, hook)? {
                        return Ok(Flow::Return(v));
                    }
                    i += *step;
                }
                // Final bound test.
                hook.on_op(OpClass::LoopOverhead);
                frame.bindings[var.idx()] = Binding::Scalar(ScalarVal::Int(i));
                Ok(Flow::Normal)
            }
            RStmtKind::While { cond, bound, body } => {
                let mut iters = 0u64;
                loop {
                    let c = self.eval(rfunc, frame, cond, hook)?.as_bool()?;
                    hook.on_op(OpClass::Branch);
                    if !c {
                        break;
                    }
                    iters += 1;
                    if iters > *bound {
                        return Err(RuntimeError::new(format!(
                            "while loop exceeded its declared bound of {bound} iterations \
                             (unsound WCET annotation)"
                        )));
                    }
                    if let Flow::Return(v) = self.exec_block(rfunc, frame, body, hook)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            RStmtKind::Call(call) => {
                self.eval_call(rfunc, frame, call, hook)?;
                Ok(Flow::Normal)
            }
            RStmtKind::Return { value } => {
                let v = match value {
                    Some(e) => Some(self.eval(rfunc, frame, e, hook)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn eval_indices<H: ExecHook + ?Sized>(
        &mut self,
        rfunc: &'a RFunction,
        frame: &mut Frame,
        indices: &'a [RExpr],
        hook: &mut H,
        out: &mut IndexBuf,
    ) -> Result<(), RuntimeError> {
        for e in indices {
            let v = self.eval(rfunc, frame, e, hook)?.as_int()?;
            // Address computation cost.
            hook.on_op(OpClass::IntAlu);
            out.push(v);
        }
        Ok(())
    }

    fn eval<H: ExecHook + ?Sized>(
        &mut self,
        rfunc: &'a RFunction,
        frame: &mut Frame,
        e: &'a RExpr,
        hook: &mut H,
    ) -> Result<ScalarVal, RuntimeError> {
        match e {
            RExpr::Int(v) => Ok(ScalarVal::Int(*v)),
            RExpr::Real(v) => Ok(ScalarVal::Real(*v)),
            RExpr::Bool(v) => Ok(ScalarVal::Bool(*v)),
            RExpr::Var(slot) => {
                let v = match &frame.bindings[slot.idx()] {
                    Binding::Scalar(v) => *v,
                    Binding::Uninit(_) => {
                        return Err(RuntimeError::new(format!(
                            "read of uninitialised `{}`",
                            self.slot_name(rfunc, *slot)
                        )))
                    }
                    _ => {
                        return Err(RuntimeError::new(format!(
                            "`{}` is not a bound scalar",
                            self.slot_name(rfunc, *slot)
                        )))
                    }
                };
                hook.on_access(self.slot_name(rfunc, *slot), AccessKind::ReadScalar);
                Ok(v)
            }
            RExpr::Elem { array, indices } => {
                let mut idx_buf = IndexBuf::default();
                self.eval_indices(rfunc, frame, indices, hook, &mut idx_buf)?;
                let id = match &frame.bindings[array.idx()] {
                    Binding::Array(id) => *id,
                    _ => {
                        return Err(RuntimeError::new(format!(
                            "`{}` is not an array",
                            self.slot_name(rfunc, *array)
                        )))
                    }
                };
                let arr = &self.arrays[id];
                let flat = arr.flat_index(idx_buf.as_slice())?;
                let v = arr.data[flat];
                hook.on_access_elem(
                    self.slot_name(rfunc, *array),
                    AccessKind::ReadElem,
                    flat as u64,
                );
                Ok(v)
            }
            RExpr::Unary { op, arg } => {
                let v = self.eval(rfunc, frame, arg, hook)?;
                match op {
                    UnOp::Neg => match v {
                        ScalarVal::Int(x) => {
                            hook.on_op(OpClass::IntAlu);
                            Ok(ScalarVal::Int(x.wrapping_neg()))
                        }
                        ScalarVal::Real(x) => {
                            hook.on_op(OpClass::FloatAdd);
                            Ok(ScalarVal::Real(-x))
                        }
                        ScalarVal::Bool(_) => Err(RuntimeError::new("cannot negate bool")),
                    },
                    UnOp::Not => {
                        hook.on_op(OpClass::Logic);
                        Ok(ScalarVal::Bool(!v.as_bool()?))
                    }
                }
            }
            RExpr::Binary { op, lhs, rhs } => {
                // Note: && and || are evaluated non-short-circuit; mini-C
                // expressions are side-effect free so this is semantics-
                // preserving and keeps WCET paths simple.
                let l = self.eval(rfunc, frame, lhs, hook)?;
                let r = self.eval(rfunc, frame, rhs, hook)?;
                eval_binop(*op, l, r, hook)
            }
            RExpr::Call(call) => {
                let v = self.eval_call(rfunc, frame, call, hook)?;
                v.ok_or_else(|| {
                    RuntimeError::new(format!(
                        "void function `{}` used in expression",
                        self.call_name(call)
                    ))
                })
            }
            RExpr::Cast { to, arg } => {
                let v = self.eval(rfunc, frame, arg, hook)?;
                hook.on_op(OpClass::Cast);
                cast(v, *to)
            }
        }
    }

    fn call_name(&self, call: &RCall) -> &'a str {
        match call {
            RCall::Intrinsic { sig, .. } => sig.name,
            RCall::User { func, .. } | RCall::UserBadArity { func } => {
                let rf = self.resolved.function(*func as usize);
                self.resolved.name(rf.name)
            }
            RCall::Unknown { name } => self.resolved.name(*name),
        }
    }

    fn eval_call<H: ExecHook + ?Sized>(
        &mut self,
        rfunc: &'a RFunction,
        frame: &mut Frame,
        call: &'a RCall,
        hook: &mut H,
    ) -> Result<Option<ScalarVal>, RuntimeError> {
        match call {
            RCall::Intrinsic { sig, args } => {
                // Sized by the compile-time-checked maximum intrinsic
                // arity, so no heap allocation per call.
                let mut vals = [ScalarVal::Int(0); crate::intrinsics::MAX_PARAMS];
                let mut n = 0;
                for (a, &pt) in args.iter().zip(sig.params) {
                    let v = self.eval(rfunc, frame, a, hook)?;
                    vals[n] = coerce(v, pt)?;
                    n += 1;
                }
                hook.on_op(OpClass::Intrinsic);
                hook.on_intrinsic(sig.name);
                Ok(Some(eval_intrinsic(sig.name, &vals[..n])?))
            }
            RCall::Unknown { name } => Err(RuntimeError::new(format!(
                "no function `{}`",
                self.resolved.name(*name)
            ))),
            RCall::UserBadArity { func } => {
                hook.on_op(OpClass::CallOverhead);
                let name = self.call_name(call);
                let _ = func;
                Err(RuntimeError::new(format!(
                    "arity mismatch calling `{name}`"
                )))
            }
            RCall::User { func, args } => {
                let callee = self.resolved.function(*func as usize);
                hook.on_op(OpClass::CallOverhead);
                let mut callee_frame = Frame {
                    func: *func,
                    bindings: vec![Binding::Unbound; callee.frame_len as usize],
                };
                // Evaluate arguments in the caller frame, in parameter
                // order (errors interleave exactly as evaluation does).
                for (a, rp) in args.iter().zip(&callee.params) {
                    let binding = match a {
                        RArg::Scalar { expr, to } => {
                            let v = self.eval(rfunc, frame, expr, hook)?;
                            Binding::Scalar(coerce(v, *to)?)
                        }
                        RArg::Array { slot } => match &frame.bindings[slot.idx()] {
                            Binding::Array(id) => Binding::Array(*id),
                            _ => {
                                return Err(RuntimeError::new(format!(
                                    "`{}` is not an array",
                                    self.slot_name(rfunc, *slot)
                                )))
                            }
                        },
                        RArg::ArrayMismatch { param } => {
                            return Err(RuntimeError::new(format!(
                                "array parameter `{param}` needs an array variable argument"
                            )))
                        }
                    };
                    callee_frame.bindings[rp.slot.idx()] = binding;
                }
                match self.exec_block(callee, &mut callee_frame, &callee.body, hook)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(None),
                }
            }
        }
    }
}

/// Small inline buffer for evaluated array indices (arrays are 1-D or
/// 2-D in practice; deeper shapes spill to the heap).
#[derive(Default)]
struct IndexBuf {
    inline: [i64; 4],
    len: usize,
    spill: Vec<i64>,
}

impl IndexBuf {
    fn push(&mut self, v: i64) {
        if self.spill.is_empty() && self.len < self.inline.len() {
            self.inline[self.len] = v;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(v);
        }
    }

    fn as_slice(&self) -> &[i64] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

fn coerce(v: ScalarVal, to: Scalar) -> Result<ScalarVal, RuntimeError> {
    match (v, to) {
        (ScalarVal::Int(x), Scalar::Real) => Ok(ScalarVal::Real(x as f64)),
        (v, to) if v.scalar() == to => Ok(v),
        (v, to) => Err(RuntimeError::new(format!(
            "cannot implicitly convert {:?} to {to}",
            v.scalar()
        ))),
    }
}

fn cast(v: ScalarVal, to: Scalar) -> Result<ScalarVal, RuntimeError> {
    Ok(match (v, to) {
        (ScalarVal::Int(x), Scalar::Int) => ScalarVal::Int(x),
        (ScalarVal::Int(x), Scalar::Real) => ScalarVal::Real(x as f64),
        (ScalarVal::Int(x), Scalar::Bool) => ScalarVal::Bool(x != 0),
        (ScalarVal::Real(x), Scalar::Int) => ScalarVal::Int(x as i64),
        (ScalarVal::Real(x), Scalar::Real) => ScalarVal::Real(x),
        (ScalarVal::Real(x), Scalar::Bool) => ScalarVal::Bool(x != 0.0),
        (ScalarVal::Bool(x), Scalar::Int) => ScalarVal::Int(x as i64),
        (ScalarVal::Bool(x), Scalar::Real) => ScalarVal::Real(x as i64 as f64),
        (ScalarVal::Bool(x), Scalar::Bool) => ScalarVal::Bool(x),
    })
}

fn eval_binop<H: ExecHook + ?Sized>(
    op: BinOp,
    l: ScalarVal,
    r: ScalarVal,
    hook: &mut H,
) -> Result<ScalarVal, RuntimeError> {
    use BinOp::*;
    if op.is_logical() {
        hook.on_op(OpClass::Logic);
        let l = l.as_bool()?;
        let r = r.as_bool()?;
        return Ok(ScalarVal::Bool(match op {
            And => l && r,
            Or => l || r,
            _ => unreachable!(),
        }));
    }
    if op.is_comparison() {
        hook.on_op(OpClass::Cmp);
        // bool == bool / bool != bool allowed.
        if l.scalar() == Scalar::Bool || r.scalar() == Scalar::Bool {
            let l = l.as_bool()?;
            let r = r.as_bool()?;
            return Ok(ScalarVal::Bool(match op {
                Eq => l == r,
                Ne => l != r,
                _ => return Err(RuntimeError::new("ordering comparison on bool")),
            }));
        }
        if l.scalar() == Scalar::Int && r.scalar() == Scalar::Int {
            let l = l.as_int()?;
            let r = r.as_int()?;
            return Ok(ScalarVal::Bool(match op {
                Eq => l == r,
                Ne => l != r,
                Lt => l < r,
                Le => l <= r,
                Gt => l > r,
                Ge => l >= r,
                _ => unreachable!(),
            }));
        }
        let l = l.as_real()?;
        let r = r.as_real()?;
        return Ok(ScalarVal::Bool(match op {
            Eq => l == r,
            Ne => l != r,
            Lt => l < r,
            Le => l <= r,
            Gt => l > r,
            Ge => l >= r,
            _ => unreachable!(),
        }));
    }
    // Arithmetic.
    if l.scalar() == Scalar::Int && r.scalar() == Scalar::Int {
        let a = l.as_int()?;
        let b = r.as_int()?;
        let v = match op {
            Add => {
                hook.on_op(OpClass::IntAlu);
                a.wrapping_add(b)
            }
            Sub => {
                hook.on_op(OpClass::IntAlu);
                a.wrapping_sub(b)
            }
            Mul => {
                hook.on_op(OpClass::IntMul);
                a.wrapping_mul(b)
            }
            Div => {
                hook.on_op(OpClass::IntDiv);
                if b == 0 {
                    return Err(RuntimeError::new("integer division by zero"));
                }
                a.wrapping_div(b)
            }
            Rem => {
                hook.on_op(OpClass::IntDiv);
                if b == 0 {
                    return Err(RuntimeError::new("integer remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            _ => unreachable!(),
        };
        return Ok(ScalarVal::Int(v));
    }
    let a = l.as_real()?;
    let b = r.as_real()?;
    let v = match op {
        Add => {
            hook.on_op(OpClass::FloatAdd);
            a + b
        }
        Sub => {
            hook.on_op(OpClass::FloatAdd);
            a - b
        }
        Mul => {
            hook.on_op(OpClass::FloatMul);
            a * b
        }
        Div => {
            hook.on_op(OpClass::FloatDiv);
            a / b
        }
        Rem => return Err(RuntimeError::new("`%` requires int operands")),
        _ => unreachable!(),
    };
    Ok(ScalarVal::Real(v))
}

fn eval_intrinsic(name: &str, args: &[ScalarVal]) -> Result<ScalarVal, RuntimeError> {
    let r = |i: usize| args[i].as_real();
    let n = |i: usize| args[i].as_int();
    Ok(match name {
        "sqrt" => ScalarVal::Real(r(0)?.sqrt()),
        "sin" => ScalarVal::Real(r(0)?.sin()),
        "cos" => ScalarVal::Real(r(0)?.cos()),
        "tan" => ScalarVal::Real(r(0)?.tan()),
        "atan2" => ScalarVal::Real(r(0)?.atan2(r(1)?)),
        "exp" => ScalarVal::Real(r(0)?.exp()),
        "log" => ScalarVal::Real(r(0)?.ln()),
        "pow" => ScalarVal::Real(r(0)?.powf(r(1)?)),
        "floor" => ScalarVal::Real(r(0)?.floor()),
        "fabs" => ScalarVal::Real(r(0)?.abs()),
        "fmin" => ScalarVal::Real(r(0)?.min(r(1)?)),
        "fmax" => ScalarVal::Real(r(0)?.max(r(1)?)),
        "iabs" => ScalarVal::Int(n(0)?.wrapping_abs()),
        "imin" => ScalarVal::Int(n(0)?.min(n(1)?)),
        "imax" => ScalarVal::Int(n(0)?.max(n(1)?)),
        _ => return Err(RuntimeError::new(format!("unknown intrinsic `{name}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn run_int(src: &str, func: &str, args: &[i64]) -> i64 {
        let p = parse_program(src).unwrap();
        crate::validate::validate(&p).unwrap();
        let mut it = Interp::new(&p);
        let args: Vec<ScalarVal> = args.iter().map(|&v| ScalarVal::Int(v)).collect();
        match it.call_scalar(func, &args).unwrap() {
            Some(ScalarVal::Int(v)) => v,
            other => panic!("expected int result, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_loops() {
        let src = "int tri(int n) { int s; int i; s = 0; \
                   for (i = 1; i <= n; i = i + 1) { s = s + i; } return s; }";
        assert_eq!(run_int(src, "tri", &[10]), 55);
        assert_eq!(run_int(src, "tri", &[0]), 0);
    }

    #[test]
    fn nested_loops_and_arrays() {
        let src = "int f() { int a[4][4]; int i; int j; int s; s = 0;
            for (i=0;i<4;i=i+1) { for (j=0;j<4;j=j+1) { a[i][j] = i*4+j; } }
            for (i=0;i<4;i=i+1) { s = s + a[i][i]; }
            return s; }";
        assert_eq!(run_int(src, "f", &[]), 5 + 10 + 15);
    }

    #[test]
    fn conditionals_and_while() {
        let src = "int collatz_steps(int n) { int c; c = 0;
            #pragma bound 200
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                c = c + 1;
            }
            return c; }";
        assert_eq!(run_int(src, "collatz_steps", &[6]), 8);
    }

    #[test]
    fn while_bound_violation_is_an_error() {
        let src = "int f() { int x; x = 0;
            #pragma bound 3
            while (x < 10) { x = x + 1; }
            return x; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let err = it.call_scalar("f", &[]).unwrap_err();
        assert!(err.msg.contains("exceeded"));
    }

    #[test]
    fn function_calls_and_intrinsics() {
        let src = "real hyp(real a, real b) { return sqrt(a*a + b*b); }
                   real f() { return hyp(3.0, 4.0); }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let v = it.call_scalar("f", &[]).unwrap().unwrap();
        assert_eq!(v, ScalarVal::Real(5.0));
    }

    #[test]
    fn arrays_pass_by_reference() {
        let src = "void fill(int buf[4], int v) { int i;
                       for (i=0;i<4;i=i+1) { buf[i] = v + i; } }
                   void f(int buf[4]) { fill(buf, 10); }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let out = it
            .call_full(
                "f",
                vec![ArgVal::Array(ArrayData::from_ints(&[0, 0, 0, 0]))],
                &mut NullHook,
            )
            .unwrap();
        let (name, arr) = &out.arrays[0];
        assert_eq!(name, "buf");
        assert_eq!(arr.data[3], ScalarVal::Int(13));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let src = "int f(int i) { int a[4]; return a[i]; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let err = it.call_scalar("f", &[ScalarVal::Int(4)]).unwrap_err();
        assert!(err.msg.contains("out of bounds"));
        let mut it = Interp::new(&p);
        assert!(it.call_scalar("f", &[ScalarVal::Int(-1)]).is_err());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let src = "int f(int d) { return 10 / d; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        assert!(it.call_scalar("f", &[ScalarVal::Int(0)]).is_err());
        let mut it = Interp::new(&p);
        assert_eq!(
            it.call_scalar("f", &[ScalarVal::Int(2)]).unwrap(),
            Some(ScalarVal::Int(5))
        );
    }

    #[test]
    fn uninitialised_read_is_an_error() {
        let src = "int f() { int x; return x; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let err = it.call_scalar("f", &[]).unwrap_err();
        assert!(err.msg.contains("uninitialised"));
    }

    #[test]
    fn counting_hook_observes_ops_and_accesses() {
        let src = "int f() { int s; int i; s = 0;
            for (i=0;i<8;i=i+1) { s = s + i * i; } return s; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let mut hook = CountingHook::default();
        let out = it.call_full("f", vec![], &mut hook).unwrap();
        assert_eq!(out.ret, Some(ScalarVal::Int(140)));
        assert_eq!(hook.ops[&OpClass::IntMul], 8);
        // 8 adds in body + loop bookkeeping is counted separately.
        assert_eq!(hook.ops[&OpClass::IntAlu], 8);
        assert_eq!(hook.ops[&OpClass::LoopOverhead], 9);
        assert!(hook.accesses > 0);
    }

    #[test]
    fn fuel_exhaustion_is_an_error() {
        let src = "int f() { int s; int i; s = 0;
            for (i=0;i<1000;i=i+1) { s = s + 1; } return s; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        it.set_fuel(10);
        assert!(it.call_scalar("f", &[]).unwrap_err().msg.contains("fuel"));
    }

    #[test]
    fn casts_round_trip() {
        let src = "int f(real x) { return (int) x; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        assert_eq!(
            it.call_scalar("f", &[ScalarVal::Real(3.7)]).unwrap(),
            Some(ScalarVal::Int(3))
        );
    }

    #[test]
    fn early_return_from_loop() {
        let src = "int find(int a[8], int v) { int i;
            for (i=0;i<8;i=i+1) { if (a[i] == v) { return i; } }
            return -1; }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let arr = ArrayData::from_ints(&[5, 9, 2, 7, 1, 3, 8, 4]);
        let out = it
            .call_full(
                "find",
                vec![ArgVal::Array(arr), ArgVal::Scalar(ScalarVal::Int(7))],
                &mut NullHook,
            )
            .unwrap();
        assert_eq!(out.ret, Some(ScalarVal::Int(3)));
    }

    #[test]
    fn intrinsic_values_match_std() {
        let src = "real f(real x, real y) { return atan2(x, y) + pow(x, 2.0) + fmax(x, y); }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let got = it
            .call_scalar("f", &[ScalarVal::Real(1.5), ScalarVal::Real(2.5)])
            .unwrap()
            .unwrap();
        let want = 1.5f64.atan2(2.5) + 1.5f64.powf(2.0) + 2.5;
        match got {
            ScalarVal::Real(v) => assert!((v - want).abs() < 1e-12),
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn exec_stmt_id_replays_individual_statements() {
        let src = "void f(int a[4]) { int i;
            for (i=0;i<4;i=i+1) { a[i] = i; } }";
        let p = parse_program(src).unwrap();
        let mut it = Interp::new(&p);
        let func = p.function("f").unwrap();
        let mut frame = it
            .make_frame(func, vec![ArgVal::Array(ArrayData::from_ints(&[0; 4]))])
            .unwrap();
        let loop_id = func.body.stmts[1].id;
        let flow = it.exec_stmt_id(&mut frame, loop_id, &mut NullHook).unwrap();
        assert_eq!(flow, Flow::Normal);
        assert_eq!(it.array_of(&frame, "a").unwrap().data[3], ScalarVal::Int(3));
        // Unknown ids are runtime errors, not panics.
        assert!(it
            .exec_stmt_id(&mut frame, StmtId(999), &mut NullHook)
            .is_err());
    }

    #[test]
    fn shared_resolution_matches_owned() {
        let src = "int tri(int n) { int s; int i; s = 0; \
                   for (i = 1; i <= n; i = i + 1) { s = s + i; } return s; }";
        let p = parse_program(src).unwrap();
        let resolution = crate::resolve::Resolution::of(&p);
        let mut shared = Interp::with_resolution(&p, &resolution);
        let mut owned = Interp::new(&p);
        let args = [ScalarVal::Int(10)];
        assert_eq!(
            shared.call_scalar("tri", &args).unwrap(),
            owned.call_scalar("tri", &args).unwrap()
        );
    }
}
