//! Read-only walkers over the AST.
//!
//! These helpers centralise the recursion patterns that the dependence
//! analysis, the HTG extractor and the WCET engines all need: visiting every
//! statement, every expression, and collecting read/write sets of variables.

use crate::ast::*;
use std::collections::BTreeSet;

/// Calls `f` on every statement of the block, in depth-first pre-order.
pub fn walk_stmts<'a>(b: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &b.stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                walk_stmts(then_blk, f);
                walk_stmts(else_blk, f);
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Calls `f` on every expression reachable from the statement (its own
/// expressions plus, recursively, nested statements' expressions).
pub fn walk_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        StmtKind::Assign { target, value } => {
            if let LValue::ArrayElem { indices, .. } = target {
                for i in indices {
                    walk_expr(i, f);
                }
            }
            walk_expr(value, f);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            walk_expr(cond, f);
            for st in &then_blk.stmts {
                walk_exprs(st, f);
            }
            for st in &else_blk.stmts {
                walk_exprs(st, f);
            }
        }
        StmtKind::For { lo, hi, body, .. } => {
            walk_expr(lo, f);
            walk_expr(hi, f);
            for st in &body.stmts {
                walk_exprs(st, f);
            }
        }
        StmtKind::While { cond, body, .. } => {
            walk_expr(cond, f);
            for st in &body.stmts {
                walk_exprs(st, f);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                walk_expr(e, f);
            }
        }
    }
}

/// Calls `f` on `e` and all sub-expressions, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::ArrayElem { indices, .. } => {
            for i in indices {
                walk_expr(i, f);
            }
        }
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => walk_expr(arg, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        _ => {}
    }
}

/// Variables read by an expression (array reads report the array name).
pub fn expr_reads(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk_expr(e, &mut |sub| match sub {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::ArrayElem { array, .. } => {
            out.insert(array.clone());
        }
        _ => {}
    });
    out
}

/// Read/write sets of a single statement (without descending into nested
/// statements for writes vs reads asymmetry: nested statements ARE included,
/// so this is the footprint of the whole subtree rooted at `s`).
///
/// For call statements, every array argument is conservatively counted as
/// both read and written; scalar arguments are reads.
pub fn stmt_rw(s: &Stmt) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    collect_rw(s, &mut reads, &mut writes);
    (reads, writes)
}

fn collect_rw(s: &Stmt, reads: &mut BTreeSet<String>, writes: &mut BTreeSet<String>) {
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                reads.extend(expr_reads(e));
            }
            writes.insert(name.clone());
        }
        StmtKind::Assign { target, value } => {
            reads.extend(expr_reads(value));
            if let LValue::ArrayElem { indices, .. } = target {
                for i in indices {
                    reads.extend(expr_reads(i));
                }
            }
            writes.insert(target.base().to_string());
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            reads.extend(expr_reads(cond));
            for st in &then_blk.stmts {
                collect_rw(st, reads, writes);
            }
            for st in &else_blk.stmts {
                collect_rw(st, reads, writes);
            }
        }
        StmtKind::For {
            var, lo, hi, body, ..
        } => {
            reads.extend(expr_reads(lo));
            reads.extend(expr_reads(hi));
            writes.insert(var.clone());
            reads.insert(var.clone());
            for st in &body.stmts {
                collect_rw(st, reads, writes);
            }
        }
        StmtKind::While { cond, body, .. } => {
            reads.extend(expr_reads(cond));
            for st in &body.stmts {
                collect_rw(st, reads, writes);
            }
        }
        StmtKind::Call { args, .. } => {
            // Conservative: array args may be read and written by the callee.
            for a in args {
                reads.extend(expr_reads(a));
                if let Expr::Var(n) = a {
                    writes.insert(n.clone());
                }
            }
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                reads.extend(expr_reads(e));
            }
        }
    }
}

/// Live-in reads of a statement sequence: variables that may be read
/// before being definitely written, walking the sequence in order.
///
/// This is the flow-*sensitive* counterpart of [`stmt_rw`]'s read set and
/// is what task-level dependence analysis needs: a `for` loop that begins
/// by assigning its induction variable does **not** read the variable's
/// incoming value, so reusing `i` across loops must not create a false
/// flow dependence.
///
/// Kill rules are conservative: only unconditional scalar assignments at
/// the current nesting level kill; array writes never kill (partial);
/// branches kill only what both arms kill; loop bodies are analysed as a
/// single iteration (sound: later iterations read values written within
/// the task itself).
pub fn live_in_reads<'a>(stmts: impl IntoIterator<Item = &'a Stmt>) -> BTreeSet<String> {
    let mut live = BTreeSet::new();
    let mut killed = BTreeSet::new();
    for s in stmts {
        live_stmt(s, &mut killed, &mut live);
    }
    live
}

fn live_expr(e: &Expr, killed: &BTreeSet<String>, live: &mut BTreeSet<String>) {
    for v in expr_reads(e) {
        if !killed.contains(&v) {
            live.insert(v);
        }
    }
}

fn live_stmt(s: &Stmt, killed: &mut BTreeSet<String>, live: &mut BTreeSet<String>) {
    match &s.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                live_expr(e, killed, live);
                // Only an initialised declaration defines a value.
                killed.insert(name.clone());
            }
        }
        StmtKind::Assign { target, value } => {
            live_expr(value, killed, live);
            match target {
                LValue::Var(n) => {
                    killed.insert(n.clone());
                }
                LValue::ArrayElem { array, indices } => {
                    for i in indices {
                        live_expr(i, killed, live);
                    }
                    // Partial write: does not kill, and the write target
                    // array itself is not a *read*.
                    let _ = array;
                }
            }
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            live_expr(cond, killed, live);
            let mut k_then = killed.clone();
            let mut k_else = killed.clone();
            for st in &then_blk.stmts {
                live_stmt(st, &mut k_then, live);
            }
            for st in &else_blk.stmts {
                live_stmt(st, &mut k_else, live);
            }
            // Only definite-on-both-paths writes kill.
            *killed = k_then.intersection(&k_else).cloned().collect();
        }
        StmtKind::For {
            var, lo, hi, body, ..
        } => {
            live_expr(lo, killed, live);
            live_expr(hi, killed, live);
            // The induction variable is assigned before any body read.
            killed.insert(var.clone());
            let mut k_body = killed.clone();
            for st in &body.stmts {
                live_stmt(st, &mut k_body, live);
            }
            // Body may not execute (zero trip count): keep outer kills.
        }
        StmtKind::While { cond, body, .. } => {
            live_expr(cond, killed, live);
            let mut k_body = killed.clone();
            for st in &body.stmts {
                live_stmt(st, &mut k_body, live);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                live_expr(a, killed, live);
            }
            // Callee may write array args (partial): no kills.
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                live_expr(e, killed, live);
            }
        }
    }
}

/// Names of all functions called anywhere under statement `s`.
pub fn called_functions(s: &Stmt) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let StmtKind::Call { name, .. } = &s.kind {
        out.insert(name.clone());
    }
    walk_exprs(s, &mut |e| {
        if let Expr::Call { name, .. } = e {
            out.insert(name.clone());
        }
    });
    match &s.kind {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            for st in then_blk.stmts.iter().chain(&else_blk.stmts) {
                out.extend(called_functions(st));
            }
        }
        StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
            for st in &body.stmts {
                out.extend(called_functions(st));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn first_fn(src: &str) -> Function {
        parse_program(src).unwrap().functions.remove(0)
    }

    #[test]
    fn walk_stmts_visits_nested() {
        let f = first_fn("void f(int n) { int i; for (i=0;i<n;i=i+1) { if (i<2) { i = i; } } }");
        let mut count = 0;
        walk_stmts(&f.body, &mut |_| count += 1);
        assert_eq!(count, 4); // decl, for, if, assign
    }

    #[test]
    fn rw_sets_of_assignment() {
        let f = first_fn("void f(real a[8], int i) { a[i] = a[i+1] * 2.0; }");
        let (r, w) = stmt_rw(&f.body.stmts[0]);
        assert!(r.contains("a") && r.contains("i"));
        assert_eq!(w.iter().collect::<Vec<_>>(), vec!["a"]);
    }

    #[test]
    fn rw_sets_of_loop_include_induction_var() {
        let f =
            first_fn("void f(int n) { int i; int s; s = 0; for (i=0;i<n;i=i+1) { s = s + i; } }");
        let (r, w) = stmt_rw(&f.body.stmts[3]);
        assert!(r.contains("n") && r.contains("i") && r.contains("s"));
        assert!(w.contains("i") && w.contains("s"));
    }

    #[test]
    fn call_args_conservative_rw() {
        let f = first_fn("void f(real buf[4]) { g(buf, 3); }");
        let (r, w) = stmt_rw(&f.body.stmts[0]);
        assert!(r.contains("buf"));
        assert!(w.contains("buf"));
    }

    #[test]
    fn live_in_excludes_killed_scalars() {
        let f =
            first_fn("void f(int n) { int i; int s; s = 0; for (i=0;i<n;i=i+1) { s = s + i; } }");
        let live = live_in_reads(&f.body.stmts);
        assert!(live.contains("n"));
        assert!(!live.contains("i"), "induction var assigned before read");
        assert!(!live.contains("s"), "s = 0 kills before the loop reads it");
    }

    #[test]
    fn live_in_includes_read_before_write() {
        let f = first_fn("void f(int x) { int y; y = x + 1; x = 0; }");
        let live = live_in_reads(&f.body.stmts);
        assert!(live.contains("x"));
        assert!(!live.contains("y"));
    }

    #[test]
    fn branch_kills_require_both_arms() {
        let f = first_fn("void f(bool c) { int x; if (c) { x = 1; } else { } int y; y = x; }");
        let live = live_in_reads(&f.body.stmts);
        assert!(live.contains("x"), "x only written on one path");
        let f2 =
            first_fn("void f(bool c) { int x; if (c) { x = 1; } else { x = 2; } int y; y = x; }");
        let live2 = live_in_reads(&f2.body.stmts);
        assert!(!live2.contains("x"), "x written on both paths");
    }

    #[test]
    fn array_writes_never_kill() {
        let f = first_fn("void f(real a[4]) { a[0] = 1.0; real x; x = a[1]; }");
        let live = live_in_reads(&f.body.stmts);
        assert!(live.contains("a"), "partial write does not kill the array");
    }

    #[test]
    fn finds_called_functions_in_exprs() {
        let f = first_fn("void f() { int x; x = g(1) + h(2); k(x); }");
        let calls: BTreeSet<String> = f.body.stmts.iter().flat_map(called_functions).collect();
        assert_eq!(calls.into_iter().collect::<Vec<_>>(), vec!["g", "h", "k"]);
    }
}
