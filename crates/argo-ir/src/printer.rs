//! Pretty-printer: emits mini-C source from the AST.
//!
//! The printer produces text the parser accepts, giving a round-trip
//! property that is exercised by the property tests:
//! `parse(print(p)) == p` (up to statement ids).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as mini-C source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(f, &mut out);
    }
    out
}

/// Renders a single function.
pub fn print_function(f: &Function, out: &mut String) {
    let ret = f.ret.map_or("void", |s| s.keyword());
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            let mut s = format!("{} {}", p.ty.elem().keyword(), p.name);
            for d in p.ty.dims() {
                let _ = write!(s, "[{d}]");
            }
            s
        })
        .collect();
    let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
    print_block(&f.body, 1, out);
    out.push_str("}\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(b: &Block, level: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, level, out);
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &s.kind {
        StmtKind::Decl { name, ty, init } => {
            let mut d = format!("{} {}", ty.elem().keyword(), name);
            for dim in ty.dims() {
                let _ = write!(d, "[{dim}]");
            }
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{d} = {};", print_expr(e));
                }
                None => {
                    let _ = writeln!(out, "{d};");
                }
            }
        }
        StmtKind::Assign { target, value } => {
            let _ = writeln!(out, "{} = {};", print_lvalue(target), print_expr(value));
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(then_blk, level + 1, out);
            if else_blk.stmts.is_empty() {
                indent(level, out);
                out.push_str("}\n");
            } else {
                indent(level, out);
                out.push_str("} else {\n");
                print_block(else_blk, level + 1, out);
                indent(level, out);
                out.push_str("}\n");
            }
        }
        StmtKind::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let _ = writeln!(
                out,
                "for ({var} = {}; {var} < {}; {var} = {var} + {step}) {{",
                print_expr(lo),
                print_expr(hi)
            );
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::While { cond, bound, body } => {
            let _ = writeln!(out, "#pragma bound {bound}");
            indent(level, out);
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            let _ = writeln!(out, "{name}({});", args.join(", "));
        }
        StmtKind::Return { value } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", print_expr(e));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
    }
}

/// Renders an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::ArrayElem { array, indices } => {
            let mut s = array.clone();
            for i in indices {
                let _ = write!(s, "[{}]", print_expr(i));
            }
            s
        }
    }
}

/// Renders an expression with full parenthesisation (safe for re-parsing).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::RealLit(v) => {
            // Guarantee a re-parseable real literal (always with `.` or `e`).
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::BoolLit(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::ArrayElem { array, indices } => {
            let mut s = array.clone();
            for i in indices {
                let _ = write!(s, "[{}]", print_expr(i));
            }
            s
        }
        Expr::Unary { op, arg } => format!("({op}{})", print_expr(arg)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", print_expr(lhs), print_expr(rhs))
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Cast { to, arg } => format!("(({}) {})", to.keyword(), print_expr(arg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    /// Strips statement ids so structural equality can be compared.
    fn strip_ids(p: &mut Program) {
        fn walk(b: &mut Block) {
            for s in &mut b.stmts {
                s.id = StmtId(0);
                match &mut s.kind {
                    StmtKind::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk);
                        walk(else_blk);
                    }
                    StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(body),
                    _ => {}
                }
            }
        }
        for f in &mut p.functions {
            walk(&mut f.body);
        }
    }

    #[test]
    fn round_trips_representative_program() {
        let src = r#"
            real dot(real a[16], real b[16], int n) {
                real s; int i;
                s = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + a[i] * b[i];
                }
                if (s < 0.0) { s = (-s); } else { }
                #pragma bound 4
                while (s >= 16.0) { s = s / 2.0; }
                return s;
            }
        "#;
        let mut p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let mut p2 = parse_program(&printed).unwrap();
        strip_ids(&mut p1);
        strip_ids(&mut p2);
        assert_eq!(p1, p2, "printed program:\n{printed}");
    }

    #[test]
    fn real_literals_reparse_as_reals() {
        assert_eq!(print_expr(&Expr::real(2.0)), "2.0");
        assert_eq!(print_expr(&Expr::real(0.5)), "0.5");
    }

    #[test]
    fn prints_casts_reparseably() {
        let src = "void f() { real x; x = (real) 3; }";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(parse_program(&printed).is_ok(), "printed:\n{printed}");
    }
}
