//! Abstract syntax tree of the mini-C IR.
//!
//! The AST is *structured*: control flow is expressed only through `if`,
//! bounded `for` loops and (explicitly bounded) `while` loops. This is the
//! property the ARGO paper's predictability requirements rest on — every
//! statement has a statically known iteration space, so WCET analysis and
//! task extraction never meet irreducible control flow.

use crate::types::{Scalar, Type};
use std::fmt;

/// Unique identifier of a statement within a [`Program`].
///
/// Ids are assigned by [`Program::renumber`] in depth-first pre-order and are
/// used by the HTG extractor, the scheduler and the WCET engines to refer to
/// program points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Returns `true` for comparison operators (result type `bool`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Returns `true` for logical operators (operands and result `bool`).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Returns `true` for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// Surface-syntax token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Scalar variable read.
    Var(String),
    /// Array element read, `a[i]` / `a[i][j]`.
    ArrayElem {
        /// Array variable name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call in expression position (user function or intrinsic).
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions (array variables are passed by name).
        args: Vec<Expr>,
    },
    /// Explicit cast to a scalar type.
    Cast {
        /// Target scalar type.
        to: Scalar,
        /// Operand.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// `Expr::IntLit` convenience.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// `Expr::RealLit` convenience.
    pub fn real(v: f64) -> Expr {
        Expr::RealLit(v)
    }

    /// `Expr::Var` convenience.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds `a[i]` for a 1-D access.
    pub fn idx1(array: impl Into<String>, i: Expr) -> Expr {
        Expr::ArrayElem {
            array: array.into(),
            indices: vec![i],
        }
    }

    /// Builds `a[i][j]` for a 2-D access.
    pub fn idx2(array: impl Into<String>, i: Expr, j: Expr) -> Expr {
        Expr::ArrayElem {
            array: array.into(),
            indices: vec![i, j],
        }
    }

    /// Returns the constant integer value if this is an `IntLit`.
    pub fn as_int_const(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            _ => None,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    ArrayElem {
        /// Array variable name.
        array: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
}

impl LValue {
    /// Name of the underlying variable.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::ArrayElem { array, .. } => array,
        }
    }
}

/// A (possibly empty) sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in program order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Creates a block from statements.
    pub fn of(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }
}

/// A statement together with its program-unique id.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Program-unique id (0 until [`Program::renumber`] runs).
    pub id: StmtId,
    /// The statement proper.
    pub kind: StmtKind,
}

impl Stmt {
    /// Wraps a [`StmtKind`] with a placeholder id.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId(0),
            kind,
        }
    }
}

/// Statement kinds of the structured mini-C subset.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local variable declaration with optional scalar initialiser.
    Decl {
        /// Variable name (unique within the function).
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initialiser (scalars only).
        init: Option<Expr>,
    },
    /// Assignment `target = value;`.
    Assign {
        /// Assigned location.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// Two-armed conditional (else branch may be empty).
    If {
        /// Condition (type `bool`).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch.
        else_blk: Block,
    },
    /// Canonical counted loop `for (v = lo; v < hi; v = v + step)`.
    ///
    /// `step` is a positive compile-time constant, which makes the trip
    /// count `max(0, ceil((hi - lo) / step))` computable by the value
    /// analysis whenever `lo`/`hi` bounds are known.
    For {
        /// Induction variable (a declared `int`).
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (exclusive).
        hi: Expr,
        /// Constant positive step.
        step: i64,
        /// Loop body.
        body: Block,
    },
    /// Condition-controlled loop with a mandatory static iteration bound
    /// (`#pragma bound N` in the surface syntax) so WCET stays computable.
    While {
        /// Loop condition.
        cond: Expr,
        /// Static bound on the number of iterations.
        bound: u64,
        /// Loop body.
        body: Block,
    },
    /// Procedure call in statement position.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Return from the enclosing function.
    Return {
        /// Returned value (`None` for `void` functions).
        value: Option<Expr>,
    },
}

/// A function parameter. Scalars are passed by value; arrays by reference
/// (C semantics), which is how tasks exchange buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type (`None` = `void`).
    pub ret: Option<Scalar>,
    /// Function body.
    pub body: Block,
}

impl Function {
    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A complete mini-C program: a set of functions. By convention the
/// tool-chain entry point is the function named `main` unless a different
/// root is requested.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Assigns fresh, program-unique [`StmtId`]s in depth-first pre-order.
    ///
    /// Returns the total number of statements. Must be re-run after any
    /// structural transformation.
    pub fn renumber(&mut self) -> u32 {
        let mut next = 0u32;
        for f in &mut self.functions {
            renumber_block(&mut f.body, &mut next);
        }
        next
    }

    /// Total number of statements (after [`Program::renumber`]).
    pub fn stmt_count(&self) -> usize {
        fn count(b: &Block) -> usize {
            b.stmts
                .iter()
                .map(|s| {
                    1 + match &s.kind {
                        StmtKind::If {
                            then_blk, else_blk, ..
                        } => count(then_blk) + count(else_blk),
                        StmtKind::For { body, .. } | StmtKind::While { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

fn renumber_block(b: &mut Block, next: &mut u32) {
    for s in &mut b.stmts {
        s.id = StmtId(*next);
        *next += 1;
        match &mut s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                renumber_block(then_blk, next);
                renumber_block(else_blk, next);
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                renumber_block(body, next);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        // int f() { int i; for (i=0;i<4;i=i+1) { if (i<2) {} else {} } return i; }
        let body = Block::of(vec![
            Stmt::new(StmtKind::Decl {
                name: "i".into(),
                ty: Scalar::Int.into(),
                init: None,
            }),
            Stmt::new(StmtKind::For {
                var: "i".into(),
                lo: Expr::int(0),
                hi: Expr::int(4),
                step: 1,
                body: Block::of(vec![Stmt::new(StmtKind::If {
                    cond: Expr::bin(BinOp::Lt, Expr::var("i"), Expr::int(2)),
                    then_blk: Block::new(),
                    else_blk: Block::new(),
                })]),
            }),
            Stmt::new(StmtKind::Return {
                value: Some(Expr::var("i")),
            }),
        ]);
        Program {
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                ret: Some(Scalar::Int),
                body,
            }],
        }
    }

    #[test]
    fn renumber_assigns_unique_preorder_ids() {
        let mut p = sample_program();
        let n = p.renumber();
        assert_eq!(n, 4);
        let f = p.function("f").unwrap();
        assert_eq!(f.body.stmts[0].id, StmtId(0));
        assert_eq!(f.body.stmts[1].id, StmtId(1));
        match &f.body.stmts[1].kind {
            StmtKind::For { body, .. } => assert_eq!(body.stmts[0].id, StmtId(2)),
            _ => panic!("expected for"),
        }
        assert_eq!(f.body.stmts[2].id, StmtId(3));
    }

    #[test]
    fn stmt_count_matches_renumber() {
        let mut p = sample_program();
        let n = p.renumber();
        assert_eq!(p.stmt_count() as u32, n);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::bin(BinOp::Add, Expr::var("x"), Expr::int(1));
        match e {
            Expr::Binary { op: BinOp::Add, .. } => {}
            _ => panic!("builder produced wrong shape"),
        }
        assert_eq!(Expr::int(7).as_int_const(), Some(7));
        assert_eq!(Expr::var("x").as_int_const(), None);
    }

    #[test]
    fn lvalue_base_name() {
        assert_eq!(LValue::Var("x".into()).base(), "x");
        let lv = LValue::ArrayElem {
            array: "a".into(),
            indices: vec![Expr::int(0)],
        };
        assert_eq!(lv.base(), "a");
    }
}
