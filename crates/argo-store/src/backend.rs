//! Injectable filesystem backend.
//!
//! Every byte the store reads or writes goes through an [`IoBackend`],
//! so fault-injection layers (the `argo-chaos` crate) can interpose
//! deterministic failures — write errors, torn writes, failed renames,
//! read errors, latency — on the *live* I/O path without touching the
//! real filesystem semantics the store is built on. Production code
//! uses [`RealIo`], a zero-cost passthrough to [`std::fs`].
//!
//! The trait surface is deliberately the store's exact touch-point set
//! (eight operations), not a general VFS: each method corresponds to
//! one failure class the store must degrade gracefully under.

use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use std::time::SystemTime;

/// One directory entry as seen through [`IoBackend::read_dir`]: just
/// the metadata the store consumes (name, kind, size, mtime).
#[derive(Debug, Clone)]
pub struct DirEntryInfo {
    /// File or directory name (last path component).
    pub name: String,
    /// `true` for directories.
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub len: u64,
    /// Last-modified time ([`SystemTime::UNIX_EPOCH`] when unknown).
    pub modified: SystemTime,
}

/// The store's filesystem access, as a fault-injectable trait.
///
/// Implementations must be thread-safe: one backend is shared by every
/// read and write of a [`Store`](crate::Store) handle. A failed
/// [`IoBackend::write_file`] may leave a partial file behind — exactly
/// like a crashed writer — and the store's tmp-then-rename protocol
/// already tolerates that (the orphan is never readable, gc sweeps it).
pub trait IoBackend: Send + Sync + std::fmt::Debug {
    /// [`fs::create_dir_all`].
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Reads a whole file ([`File::open`] + read to end).
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`]; a missing
    /// file is `NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// The store's full durable-write sequence: create, write all
    /// bytes, fsync. A failure may leave a partial file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// [`fs::rename`] (atomic publish).
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// [`fs::remove_file`].
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Lists a directory's entries with the metadata the store needs.
    /// Entries whose metadata cannot be read are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`] when the
    /// directory itself cannot be read.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>>;

    /// Sets a file's mtime (the store's LRU clock).
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn set_modified(&self, path: &Path, t: SystemTime) -> io::Result<()>;

    /// [`fs::remove_dir_all`].
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) [`io::Error`].
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The production backend: a direct passthrough to [`std::fs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl IoBackend for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            let Ok(entry) = entry else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            out.push(DirEntryInfo {
                name: entry.file_name().to_string_lossy().into_owned(),
                is_dir: meta.is_dir(),
                len: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }

    fn set_modified(&self, path: &Path, t: SystemTime) -> io::Result<()> {
        File::options().write(true).open(path)?.set_modified(t)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }
}
