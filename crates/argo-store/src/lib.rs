//! # argo-store — persistent content-addressed artifact store
//!
//! An on-disk, content-addressed cache for pipeline artifacts, keyed by
//! the canonical cross-process-stable [`Fingerprint`]s of PR 2. It is
//! the persistence layer behind `argo-dse`'s cache tiers and the
//! prerequisite for the `argo-serve` service direction: a cold process
//! on an unchanged workspace reads every artifact back instead of
//! recomputing it.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   tmp/                       in-flight writes (unique per process)
//!   <namespace>/
//!     <16-hex-digit key>.bin   one entry per fingerprint
//! ```
//!
//! Namespaces separate the cache tiers (`frontend`, `seed-costs`,
//! `schedule`, `point`, …); the file name is the entry's key
//! fingerprint in fixed-width hex. Nothing else is stored — the store
//! is a pure content-addressed map, and a directory listing is the
//! index.
//!
//! ## Entry format and schema versioning
//!
//! Every entry file is self-describing:
//!
//! ```text
//! magic  b"ARGO"                          4 bytes
//! schema version                          u32 LE
//! namespace                               u64 LE length + UTF-8 bytes
//! key fingerprint                         u64 LE
//! content fingerprint (0 = checksum-only) u64 LE
//! payload length                          u64 LE
//! payload FNV-1a checksum                 u64 LE
//! payload                                 length bytes
//! ```
//!
//! A reader validates all of it: magic, schema version (an entry
//! written by a different schema is counted in `version_skew` and
//! treated as a miss — never misread), namespace and key echo (a
//! mis-addressed file is corruption), payload length against the actual
//! file size, and the FNV-1a checksum. Typed reads decode the payload
//! with [`argo_core::codec`] and, for [`Artifact`] types, re-derive the
//! content fingerprint and compare it to the recorded one — so any
//! round-trip infidelity degrades to a counted miss instead of a wrong
//! artifact. Corrupt entries are unlinked on sight (self-healing); all
//! failure classes are counted, none panic.
//!
//! ## Atomicity and concurrency
//!
//! Writes go to `tmp/<pid>-<seq>.tmp` and are published with
//! [`std::fs::rename`], which is atomic on POSIX when source and target
//! share a filesystem (they do — `tmp/` lives inside the store
//! directory). Concurrent processes sharing a store directory therefore
//! never observe a torn entry: a reader sees either the old complete
//! file, the new complete file, or no file. A crash mid-write leaves
//! only a `tmp/` orphan that no reader ever opens; orphans older than
//! an hour are swept by [`Store::gc`]. Two processes racing to publish
//! the same key both write valid content (the store is
//! content-addressed — same key ⇒ same payload), so either rename
//! winning is correct.
//!
//! ## Garbage collection
//!
//! [`Store::gc`] enforces a byte budget with LRU eviction: entries are
//! ranked by file modification time, which [`Store`] refreshes on every
//! hit, and the oldest are unlinked until the store fits the budget.
//! Entries currently being read are pinned ([`PinGuard`]) and never
//! evicted mid-read.
//!
//! ## Failure modes
//!
//! Every filesystem operation goes through an injectable [`IoBackend`]
//! ([`Store::open_with_io`]), which is how the `argo-chaos` fault
//! layer proves the degradation contract below on the *live* I/O path.
//! The store never panics on and never propagates an I/O failure to a
//! pipeline; each class degrades to a counted outcome:
//!
//! | failure | observed as | counter | entry afterwards |
//! |---|---|---|---|
//! | write/create error | dropped write | `write_errors` | absent (old value, if any, survives) |
//! | failed fsync | dropped write | `write_errors` | absent; partial `tmp/` orphan, swept by gc |
//! | failed rename (publish) | dropped write | `write_errors` | absent; tmp file unlinked best-effort |
//! | torn/short write (crash, chaos) | corrupt miss on next read | `misses` + `corrupt` | unlinked on sight (self-heal) |
//! | read error | plain miss | `misses` | left intact (may hit later) |
//! | checksum / header mismatch | corrupt miss | `misses` + `corrupt` | unlinked on sight |
//! | undecodable / infidel payload | corrupt miss | `misses` + `corrupt` | unlinked on sight |
//! | other schema version | version-skew miss | `misses` + `version_skew` | left intact (gc may evict) |
//! | induced latency | slower op | latency histograms | unchanged |
//!
//! Because a dropped write leaves the previous (or no) entry and a
//! corrupt entry is rejected before decoding, a reader sees either the
//! exact bytes that were stored or a miss — **never wrong data** —
//! which is what makes warm-start replay byte-identical even after a
//! faulty run. [`Store::fsck`] audits a store offline against the same
//! classes and (with repair) unlinks what it finds.

use argo_core::codec::Codec;
use argo_core::{Artifact, Fingerprint};
use argo_trace::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

pub mod backend;
pub use backend::{DirEntryInfo, IoBackend, RealIo};

/// Current on-disk schema version. Bump whenever the entry header or
/// any [`Codec`] encoding changes shape; old entries then read as
/// `version_skew` misses and are rewritten, never misread.
pub const SCHEMA_VERSION: u32 = 1;

/// Entry file magic, the first four bytes of every valid entry.
pub const MAGIC: [u8; 4] = *b"ARGO";

/// Tmp-file orphans older than this are swept by [`Store::gc`] (a
/// crashed writer's leftovers; live writers publish within
/// milliseconds).
const TMP_SWEEP_AGE: Duration = Duration::from_secs(3600);

const HEX_KEY_LEN: usize = 16;

/// Process-global tmp-file sequence: two [`Store`] handles over the
/// same directory in one process (the `argo-serve` shape) must not
/// reuse each other's in-flight names — pid alone is not unique enough.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Monotonic cumulative counters of one [`Store`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Reads that returned a valid entry.
    pub hits: u64,
    /// Reads that found no entry (including entries rejected below).
    pub misses: u64,
    /// Entries rejected for corruption: bad magic, truncation, checksum
    /// or fingerprint mismatch, undecodable payload, mis-addressed
    /// header. Each is also counted as a miss.
    pub corrupt: u64,
    /// Entries rejected because they were written by a different schema
    /// version. Each is also counted as a miss.
    pub version_skew: u64,
    /// Entries unlinked by [`Store::gc`] to satisfy the byte budget.
    pub evictions: u64,
    /// Writes dropped because of filesystem errors (the store degrades
    /// to pass-through; callers never see the error).
    pub write_errors: u64,
}

impl StoreCounters {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One entry as listed by [`Store::ls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// Namespace (tier) directory the entry lives in.
    pub namespace: String,
    /// Key fingerprint parsed from the file name.
    pub key: Fingerprint,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-use time (file mtime; refreshed on every hit).
    pub last_used: SystemTime,
}

/// Point-in-time summary returned by [`Store::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live entry count across all namespaces.
    pub entries: u64,
    /// Total bytes of live entries.
    pub bytes: u64,
    /// Cumulative counters of this handle.
    pub counters: StoreCounters,
}

/// Outcome of one [`Store::gc`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entries unlinked to satisfy the budget.
    pub evicted: u64,
    /// Bytes reclaimed from evicted entries.
    pub reclaimed_bytes: u64,
    /// Live bytes remaining after the run.
    pub remaining_bytes: u64,
    /// Stale tmp-file orphans swept.
    pub tmp_swept: u64,
}

/// Keeps an entry alive across a read: while a [`PinGuard`] for a path
/// exists, [`Store::gc`] will not evict that entry.
#[derive(Debug)]
pub struct PinGuard<'a> {
    store: &'a Store,
    path: PathBuf,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let mut pins = self.store.pins.lock().unwrap();
        pins.remove(&self.path);
    }
}

/// A persistent, content-addressed artifact store rooted at one
/// directory. See the [module docs](self) for layout, versioning,
/// atomicity and GC semantics.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    io: Arc<dyn IoBackend>,
    pins: Mutex<HashSet<PathBuf>>,
    /// Per-handle metrics registry (`argo_store_*` names). Deliberately
    /// NOT the process-global [`argo_trace::metrics`] registry: tests
    /// and `argo-serve` open several stores per process, and each
    /// handle's counts must stay isolated.
    registry: Registry,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    corrupt: Arc<Counter>,
    version_skew: Arc<Counter>,
    evictions: Arc<Counter>,
    write_errors: Arc<Counter>,
    get_latency: Arc<Histogram>,
    put_latency: Arc<Histogram>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] if the directory (or its
    /// `tmp/` subdirectory) cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        Store::open_with_io(dir, Arc::new(RealIo))
    }

    /// Opens a store whose every filesystem operation goes through
    /// `io` — the hook the `argo-chaos` fault layer uses to inject
    /// deterministic I/O failures on the live path. Production callers
    /// use [`Store::open`] (a [`RealIo`] passthrough).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] if the directory (or its
    /// `tmp/` subdirectory) cannot be created.
    pub fn open_with_io(dir: impl Into<PathBuf>, io: Arc<dyn IoBackend>) -> io::Result<Store> {
        let dir = dir.into();
        io.create_dir_all(&dir.join("tmp"))?;
        let registry = Registry::new();
        Ok(Store {
            dir,
            io,
            pins: Mutex::new(HashSet::new()),
            hits: registry.counter("argo_store_hits_total"),
            misses: registry.counter("argo_store_misses_total"),
            corrupt: registry.counter("argo_store_corrupt_total"),
            version_skew: registry.counter("argo_store_version_skew_total"),
            evictions: registry.counter("argo_store_evictions_total"),
            write_errors: registry.counter("argo_store_write_errors_total"),
            get_latency: registry.histogram("argo_store_get_latency_us", LATENCY_US_BUCKETS),
            put_latency: registry.histogram("argo_store_put_latency_us", LATENCY_US_BUCKETS),
            registry,
        })
    }

    /// The handle's metrics registry: the counters plus
    /// `argo_store_get_latency_us` / `argo_store_put_latency_us`
    /// histograms. `argo-serve`'s `metrics` endpoint and the CLI's
    /// `stats --json` render from here.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the cumulative counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            corrupt: self.corrupt.get(),
            version_skew: self.version_skew.get(),
            evictions: self.evictions.get(),
            write_errors: self.write_errors.get(),
        }
    }

    fn entry_path(&self, namespace: &str, key: Fingerprint) -> PathBuf {
        self.dir.join(namespace).join(format!("{:016x}.bin", key.0))
    }

    /// Pins `(namespace, key)` against eviction for the guard's
    /// lifetime. Reads pin internally; exposing it lets callers (and
    /// tests) hold an entry across a GC run.
    pub fn pin(&self, namespace: &str, key: Fingerprint) -> PinGuard<'_> {
        let path = self.entry_path(namespace, key);
        self.pins.lock().unwrap().insert(path.clone());
        PinGuard { store: self, path }
    }

    // --- writes ---------------------------------------------------------

    /// Stores an [`Artifact`] under its namespace and key, recording
    /// the artifact's content fingerprint for end-to-end validation on
    /// read-back. Filesystem errors are absorbed (counted in
    /// [`StoreCounters::write_errors`]); the store never fails a
    /// pipeline run.
    pub fn put_artifact<T: Codec + Artifact>(&self, namespace: &str, key: Fingerprint, value: &T) {
        self.put_raw(namespace, key, value.fingerprint(), &value.to_bytes());
    }

    /// Stores any [`Codec`] value (checksum-integrity only — no content
    /// fingerprint re-derivation on read-back).
    pub fn put_value<T: Codec>(&self, namespace: &str, key: Fingerprint, value: &T) {
        self.put_raw(namespace, key, Fingerprint(0), &value.to_bytes());
    }

    fn put_raw(&self, namespace: &str, key: Fingerprint, content: Fingerprint, payload: &[u8]) {
        let t0 = Instant::now();
        if self.try_put(namespace, key, content, payload).is_err() {
            self.write_errors.inc();
        }
        self.put_latency.observe_duration_us(t0.elapsed());
    }

    fn try_put(
        &self,
        namespace: &str,
        key: Fingerprint,
        content: Fingerprint,
        payload: &[u8],
    ) -> io::Result<()> {
        let final_path = self.entry_path(namespace, key);
        if let Some(parent) = final_path.parent() {
            self.io.create_dir_all(parent)?;
        }
        let mut bytes = Vec::with_capacity(payload.len() + 64);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(namespace.len() as u64).to_le_bytes());
        bytes.extend_from_slice(namespace.as_bytes());
        bytes.extend_from_slice(&key.0.to_le_bytes());
        bytes.extend_from_slice(&content.0.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        // Unique tmp name per process and write: concurrent writers
        // (threads or processes) never share an in-flight file, and the
        // final rename is atomic — readers see old, new, or nothing.
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join("tmp")
            .join(format!("{}-{seq}.tmp", std::process::id()));
        // A failed write_file may leave a partial tmp file — the same
        // residue as a crashed writer; gc sweeps it, readers never see
        // it. The caller counts the dropped write.
        self.io.write_file(&tmp, &bytes)?;
        match self.io.rename(&tmp, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = self.io.remove_file(&tmp);
                Err(e)
            }
        }
    }

    // --- reads ----------------------------------------------------------

    /// Reads an [`Artifact`] back, validating header, checksum, payload
    /// decode **and** the re-derived content fingerprint. Any failure
    /// is a counted miss (`corrupt` / `version_skew`), never an error.
    pub fn get_artifact<T: Codec + Artifact>(
        &self,
        namespace: &str,
        key: Fingerprint,
    ) -> Option<T> {
        let (content, payload) = self.get_raw(namespace, key)?;
        match T::from_bytes(&payload) {
            Ok(value) if value.fingerprint() == content => Some(value),
            Ok(_) => {
                // Decoded cleanly but to different content than was
                // stored — round-trip infidelity. Reject and self-heal.
                self.reject_corrupt(namespace, key)
            }
            Err(_) => self.reject_corrupt(namespace, key),
        }
    }

    /// Reads any [`Codec`] value back (checksum-integrity only).
    pub fn get_value<T: Codec>(&self, namespace: &str, key: Fingerprint) -> Option<T> {
        let (_, payload) = self.get_raw(namespace, key)?;
        match T::from_bytes(&payload) {
            Ok(value) => Some(value),
            Err(_) => self.reject_corrupt(namespace, key),
        }
    }

    fn reject_corrupt<T>(&self, namespace: &str, key: Fingerprint) -> Option<T> {
        // get_raw already counted a hit for the valid envelope; convert
        // it into a corrupt miss now that the payload failed.
        self.hits.sub(1);
        self.misses.inc();
        self.corrupt.inc();
        let _ = self.io.remove_file(&self.entry_path(namespace, key));
        None
    }

    /// Reads and validates one raw entry, returning the recorded
    /// content fingerprint and payload. Counts a hit or (possibly
    /// corrupt/skewed) miss; refreshes the entry's LRU clock.
    pub fn get_raw(&self, namespace: &str, key: Fingerprint) -> Option<(Fingerprint, Vec<u8>)> {
        let t0 = Instant::now();
        let out = self.get_raw_inner(namespace, key);
        self.get_latency.observe_duration_us(t0.elapsed());
        out
    }

    fn get_raw_inner(&self, namespace: &str, key: Fingerprint) -> Option<(Fingerprint, Vec<u8>)> {
        // Pin before opening so a concurrent gc never unlinks the file
        // mid-read (POSIX would let the read finish, but the next
        // reader would miss — the pin keeps hot entries resident).
        let _pin = self.pin(namespace, key);
        let path = self.entry_path(namespace, key);
        // A read error (missing file, or an injected fault) is a plain
        // miss: the entry — if any — is left intact for a later retry.
        let Ok(bytes) = self.io.read(&path) else {
            self.misses.inc();
            return None;
        };
        match self.parse_entry(&bytes, namespace, key) {
            EntryParse::Valid { content, payload } => {
                self.hits.inc();
                // LRU clock: gc ranks by mtime, so refresh it on use.
                let _ = self.io.set_modified(&path, SystemTime::now());
                Some((content, payload))
            }
            EntryParse::VersionSkew => {
                self.misses.inc();
                self.version_skew.inc();
                // Leave the file for gc: a *newer* schema's entry must
                // survive this process, and an older one is harmless.
                None
            }
            EntryParse::Corrupt => {
                self.misses.inc();
                self.corrupt.inc();
                let _ = self.io.remove_file(&path);
                None
            }
        }
    }

    fn parse_entry(&self, bytes: &[u8], namespace: &str, key: Fingerprint) -> EntryParse {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = bytes.get(pos..pos + n)?;
            pos += n;
            Some(s)
        };
        let Some(magic) = take(4) else {
            return EntryParse::Corrupt;
        };
        if magic != MAGIC {
            return EntryParse::Corrupt;
        }
        let Some(ver) = take(4) else {
            return EntryParse::Corrupt;
        };
        if u32::from_le_bytes(ver.try_into().unwrap()) != SCHEMA_VERSION {
            return EntryParse::VersionSkew;
        }
        let Some(ns_len) = take(8) else {
            return EntryParse::Corrupt;
        };
        let Ok(ns_len) = usize::try_from(u64::from_le_bytes(ns_len.try_into().unwrap())) else {
            return EntryParse::Corrupt;
        };
        if ns_len > bytes.len() {
            return EntryParse::Corrupt;
        }
        let Some(ns) = take(ns_len) else {
            return EntryParse::Corrupt;
        };
        if ns != namespace.as_bytes() {
            return EntryParse::Corrupt;
        }
        let (Some(k), Some(content), Some(len), Some(sum)) = (take(8), take(8), take(8), take(8))
        else {
            return EntryParse::Corrupt;
        };
        if u64::from_le_bytes(k.try_into().unwrap()) != key.0 {
            return EntryParse::Corrupt;
        }
        let content = Fingerprint(u64::from_le_bytes(content.try_into().unwrap()));
        let Ok(len) = usize::try_from(u64::from_le_bytes(len.try_into().unwrap())) else {
            return EntryParse::Corrupt;
        };
        let sum = u64::from_le_bytes(sum.try_into().unwrap());
        let Some(payload) = take(len) else {
            return EntryParse::Corrupt;
        };
        if pos != bytes.len() || fnv1a(payload) != sum {
            return EntryParse::Corrupt;
        }
        EntryParse::Valid {
            content,
            payload: payload.to_vec(),
        }
    }

    // --- maintenance ----------------------------------------------------

    /// Lists all live entries, newest-used first.
    pub fn ls(&self) -> Vec<EntryInfo> {
        let mut out = Vec::new();
        let Ok(namespaces) = self.io.read_dir(&self.dir) else {
            return out;
        };
        for ns in namespaces {
            if ns.name == "tmp" || !ns.is_dir {
                continue;
            }
            let Ok(entries) = self.io.read_dir(&self.dir.join(&ns.name)) else {
                continue;
            };
            for entry in entries {
                let Some(hex) = entry
                    .name
                    .strip_suffix(".bin")
                    .filter(|h| h.len() == HEX_KEY_LEN)
                else {
                    continue;
                };
                let Ok(key) = u64::from_str_radix(hex, 16) else {
                    continue;
                };
                out.push(EntryInfo {
                    namespace: ns.name.clone(),
                    key: Fingerprint(key),
                    bytes: entry.len,
                    last_used: entry.modified,
                });
            }
        }
        out.sort_by(|a, b| {
            b.last_used
                .cmp(&a.last_used)
                .then_with(|| a.namespace.cmp(&b.namespace))
                .then_with(|| a.key.0.cmp(&b.key.0))
        });
        out
    }

    /// Total bytes of live entries.
    pub fn total_bytes(&self) -> u64 {
        self.ls().iter().map(|e| e.bytes).sum()
    }

    /// Point-in-time stats (entry count, bytes, counters).
    pub fn stats(&self) -> StoreStats {
        let entries = self.ls();
        StoreStats {
            entries: entries.len() as u64,
            bytes: entries.iter().map(|e| e.bytes).sum(),
            counters: self.counters(),
        }
    }

    /// Evicts least-recently-used entries until the store fits
    /// `budget_bytes`, sweeping stale tmp orphans along the way. Pinned
    /// entries (reads in flight) are never evicted, even over budget.
    pub fn gc(&self, budget_bytes: u64) -> GcStats {
        let mut stats = GcStats::default();

        // Sweep crashed writers' orphans (never readable — writes that
        // completed were renamed out of tmp/).
        let tmp_dir = self.dir.join("tmp");
        if let Ok(entries) = self.io.read_dir(&tmp_dir) {
            let now = SystemTime::now();
            for entry in entries {
                let stale = now
                    .duration_since(entry.modified)
                    .is_ok_and(|age| age >= TMP_SWEEP_AGE);
                if stale && self.io.remove_file(&tmp_dir.join(&entry.name)).is_ok() {
                    stats.tmp_swept += 1;
                }
            }
        }

        let entries = self.ls();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        let pins = self.pins.lock().unwrap().clone();
        // ls() is newest-first; walk from the oldest end.
        for entry in entries.iter().rev() {
            if total <= budget_bytes {
                break;
            }
            let path = self.entry_path(&entry.namespace, entry.key);
            if pins.contains(&path) {
                continue;
            }
            if self.io.remove_file(&path).is_ok() {
                total -= entry.bytes;
                stats.evicted += 1;
                stats.reclaimed_bytes += entry.bytes;
                self.evictions.inc();
            }
        }
        stats.remaining_bytes = total;
        stats
    }

    /// Removes every entry (counters are kept — `clear` is an
    /// operation on the data, not the handle).
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error encountered.
    pub fn clear(&self) -> io::Result<()> {
        let Ok(namespaces) = self.io.read_dir(&self.dir) else {
            return Ok(());
        };
        for ns in namespaces {
            if ns.is_dir {
                self.io.remove_dir_all(&self.dir.join(&ns.name))?;
            }
        }
        self.io.create_dir_all(&self.dir.join("tmp"))?;
        Ok(())
    }

    /// Audits every entry in the store offline, classifying each as
    /// valid, corrupt (bad magic/header/checksum/truncation) or
    /// version-skewed, and every file under `tmp/` as an orphan (fsck
    /// runs against a quiescent store; live writers publish within
    /// milliseconds). Reads are raw-envelope checks only — no payload
    /// decode, no counters bumped, no LRU refresh, no self-healing.
    ///
    /// With `repair`, findings are unlinked: corrupt entries (as a
    /// read would), tmp orphans (as gc eventually would) and — unlike
    /// the read path, which preserves them for newer schemas —
    /// version-skewed entries too: fsck repair is an explicit operator
    /// action to reclaim a store in place.
    pub fn fsck(&self, repair: bool) -> FsckReport {
        let mut report = FsckReport::default();
        for entry in self.ls() {
            report.scanned += 1;
            let path = self.entry_path(&entry.namespace, entry.key);
            let class = match self.io.read(&path) {
                Ok(bytes) => match self.parse_entry(&bytes, &entry.namespace, entry.key) {
                    EntryParse::Valid { .. } => {
                        report.valid += 1;
                        continue;
                    }
                    EntryParse::VersionSkew => {
                        report.version_skew += 1;
                        FsckClass::VersionSkew
                    }
                    EntryParse::Corrupt => {
                        report.corrupt += 1;
                        FsckClass::Corrupt
                    }
                },
                // Vanished or unreadable mid-scan: count it corrupt but
                // never unlink what we could not inspect.
                Err(_) => {
                    report.corrupt += 1;
                    report.findings.push(FsckFinding {
                        path,
                        class: FsckClass::Corrupt,
                    });
                    continue;
                }
            };
            if repair && self.io.remove_file(&path).is_ok() {
                report.repaired += 1;
            }
            report.findings.push(FsckFinding { path, class });
        }
        let tmp_dir = self.dir.join("tmp");
        if let Ok(entries) = self.io.read_dir(&tmp_dir) {
            for entry in entries {
                report.tmp_orphans += 1;
                let path = tmp_dir.join(&entry.name);
                if repair && self.io.remove_file(&path).is_ok() {
                    report.repaired += 1;
                }
                report.findings.push(FsckFinding {
                    path,
                    class: FsckClass::TmpOrphan,
                });
            }
        }
        report
    }
}

/// Classification of one [`Store::fsck`] finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckClass {
    /// Bad magic, truncated/mis-addressed header, checksum mismatch,
    /// or the file could not be read at all.
    Corrupt,
    /// Written by a different schema version.
    VersionSkew,
    /// An in-flight tmp file, orphaned by a crashed (or killed) writer.
    TmpOrphan,
}

impl FsckClass {
    /// Stable kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FsckClass::Corrupt => "corrupt",
            FsckClass::VersionSkew => "version-skew",
            FsckClass::TmpOrphan => "tmp-orphan",
        }
    }
}

/// One problematic file found by [`Store::fsck`].
#[derive(Debug, Clone)]
pub struct FsckFinding {
    /// Absolute path of the offending file.
    pub path: PathBuf,
    /// Why it was flagged.
    pub class: FsckClass,
}

/// Outcome of one [`Store::fsck`] run.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Entries examined (tmp orphans are extra).
    pub scanned: u64,
    /// Entries that passed every envelope check.
    pub valid: u64,
    /// Entries flagged [`FsckClass::Corrupt`].
    pub corrupt: u64,
    /// Entries flagged [`FsckClass::VersionSkew`].
    pub version_skew: u64,
    /// Files under `tmp/` ([`FsckClass::TmpOrphan`]).
    pub tmp_orphans: u64,
    /// Files unlinked (repair mode only).
    pub repaired: u64,
    /// Every flagged file, in scan order.
    pub findings: Vec<FsckFinding>,
}

impl FsckReport {
    /// Total problems found (corrupt + version-skew + tmp orphans).
    pub fn problems(&self) -> u64 {
        self.corrupt + self.version_skew + self.tmp_orphans
    }
}

enum EntryParse {
    Valid {
        content: Fingerprint,
        payload: Vec<u8>,
    },
    VersionSkew,
    Corrupt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, File};
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// Unique per-test store dir under the system temp dir (std-only;
    /// no tempfile crate in the container). Removed on drop.
    struct TestDir(PathBuf);

    impl TestDir {
        fn new() -> TestDir {
            let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("argo-store-test-{}-{seq}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn put_get_value_round_trips(store: &Store) {
        let key = Fingerprint(0xabcd);
        let value: Vec<u64> = vec![1, 2, 3, 99];
        store.put_value("unit", key, &value);
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), Some(value));
    }

    #[test]
    fn round_trip_and_counters() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        put_get_value_round_trips(&store);
        assert_eq!(store.get_value::<Vec<u64>>("unit", Fingerprint(7)), None);
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.corrupt), (1, 1, 0));
    }

    #[test]
    fn cold_handle_reads_back() {
        let td = TestDir::new();
        {
            let store = Store::open(&td.0).unwrap();
            put_get_value_round_trips(&store);
        }
        // Fresh handle over the same dir: the write must persist.
        let cold = Store::open(&td.0).unwrap();
        assert_eq!(
            cold.get_value::<Vec<u64>>("unit", Fingerprint(0xabcd)),
            Some(vec![1, 2, 3, 99])
        );
        assert_eq!(cold.counters().hits, 1);
    }

    #[test]
    fn truncated_entry_is_a_counted_miss_and_self_heals() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let key = Fingerprint(0x11);
        store.put_value("unit", key, &vec![1u64; 64]);
        let path = store.entry_path("unit", key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        let c = store.counters();
        assert_eq!((c.misses, c.corrupt), (1, 1));
        assert!(!path.exists(), "corrupt entry is unlinked");
        // The next lookup is a plain miss, not corrupt again.
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        assert_eq!(store.counters().corrupt, 1);
    }

    #[test]
    fn garbage_bytes_are_a_counted_miss() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let key = Fingerprint(0x22);
        let path = store.entry_path("unit", key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&path, garbage).unwrap();
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        let c = store.counters();
        assert_eq!((c.misses, c.corrupt), (1, 1));
    }

    #[test]
    fn checksum_passes_but_payload_undecodable_is_corrupt() {
        // A valid envelope around a payload that fails Codec decode:
        // the typed read rejects and self-heals.
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let key = Fingerprint(0x33);
        store.put_raw("unit", key, Fingerprint(0), &[0xff; 3]);
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.corrupt), (0, 1, 1));
        assert!(!store.entry_path("unit", key).exists());
    }

    #[test]
    fn wrong_schema_version_is_version_skew_not_corrupt() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let key = Fingerprint(0x44);
        store.put_value("unit", key, &vec![5u64]);
        let path = store.entry_path("unit", key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        let c = store.counters();
        assert_eq!((c.misses, c.version_skew, c.corrupt), (1, 1, 0));
        assert!(path.exists(), "future-schema entries are left intact");
    }

    #[test]
    fn crash_mid_write_leaves_only_an_unreadable_tmp_orphan() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        // Simulate a crash: the in-flight bytes reached tmp/ but the
        // rename never happened.
        fs::write(td.0.join("tmp").join("9999-0.tmp"), b"half an entry").unwrap();
        let key = Fingerprint(0x55);
        assert_eq!(store.get_value::<Vec<u64>>("unit", key), None);
        let c = store.counters();
        assert_eq!((c.misses, c.corrupt), (1, 0), "orphan is a plain miss");
        assert_eq!(store.ls().len(), 0, "tmp orphans are not entries");
    }

    #[test]
    fn mis_addressed_entry_is_corrupt() {
        // A file copied to the wrong key (or wrong namespace) must not
        // serve under that address.
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        store.put_value("unit", Fingerprint(0x66), &vec![9u64]);
        let src = store.entry_path("unit", Fingerprint(0x66));
        let dst = store.entry_path("unit", Fingerprint(0x77));
        fs::copy(&src, &dst).unwrap();
        assert_eq!(store.get_value::<Vec<u64>>("unit", Fingerprint(0x77)), None);
        assert_eq!(store.counters().corrupt, 1);
        let other = store.entry_path("other", Fingerprint(0x66));
        fs::create_dir_all(other.parent().unwrap()).unwrap();
        fs::copy(&src, &other).unwrap();
        assert_eq!(
            store.get_value::<Vec<u64>>("other", Fingerprint(0x66)),
            None
        );
        assert_eq!(store.counters().corrupt, 2);
    }

    #[test]
    fn gc_respects_budget_and_lru_order() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        for i in 0..8u64 {
            store.put_value("unit", Fingerprint(i), &vec![i; 32]);
        }
        let per_entry = store.total_bytes() / 8;
        // Touch entry 0 so it becomes the most recently used.
        let now = SystemTime::now();
        for (i, age) in (0..8u64).zip((1..9u64).rev()) {
            let path = store.entry_path("unit", Fingerprint(i));
            let f = File::options().write(true).open(&path).unwrap();
            f.set_modified(now - Duration::from_secs(age * 10)).unwrap();
        }
        assert_eq!(
            store.get_value::<Vec<u64>>("unit", Fingerprint(0)),
            Some(vec![0u64; 32])
        );
        let budget = per_entry * 4;
        let gc = store.gc(budget);
        assert_eq!(gc.evicted, 4);
        assert!(gc.remaining_bytes <= budget);
        // The freshly-used entry 0 survives; the stalest (1..=4) go.
        assert!(store.entry_path("unit", Fingerprint(0)).exists());
        for i in 1..5u64 {
            assert!(
                !store.entry_path("unit", Fingerprint(i)).exists(),
                "entry {i}"
            );
        }
        assert_eq!(store.counters().evictions, 4);
    }

    #[test]
    fn gc_never_evicts_a_pinned_entry() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        for i in 0..4u64 {
            store.put_value("unit", Fingerprint(i), &vec![i; 32]);
        }
        let now = SystemTime::now();
        for i in 0..4u64 {
            let path = store.entry_path("unit", Fingerprint(i));
            let f = File::options().write(true).open(&path).unwrap();
            f.set_modified(now - Duration::from_secs((8 - i) * 10))
                .unwrap();
        }
        // Pin the oldest entry — a reader mid-read — then demand an
        // impossible budget.
        let pin = store.pin("unit", Fingerprint(0));
        let gc = store.gc(0);
        assert_eq!(gc.evicted, 3);
        assert!(store.entry_path("unit", Fingerprint(0)).exists());
        drop(pin);
        let gc = store.gc(0);
        assert_eq!(gc.evicted, 1);
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn gc_sweeps_stale_tmp_orphans_only() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let stale = td.0.join("tmp").join("1-0.tmp");
        let fresh = td.0.join("tmp").join("1-1.tmp");
        fs::write(&stale, b"old").unwrap();
        fs::write(&fresh, b"new").unwrap();
        File::options()
            .write(true)
            .open(&stale)
            .unwrap()
            .set_modified(SystemTime::now() - TMP_SWEEP_AGE * 2)
            .unwrap();
        let gc = store.gc(u64::MAX);
        assert_eq!(gc.tmp_swept, 1);
        assert!(!stale.exists());
        assert!(fresh.exists(), "a live writer's tmp file survives");
    }

    #[test]
    fn ls_stats_and_clear() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        store.put_value("a", Fingerprint(1), &vec![1u64; 16]);
        store.put_value("b", Fingerprint(2), &vec![2u64; 16]);
        let entries = store.ls();
        assert_eq!(entries.len(), 2);
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, store.total_bytes());
        store.clear().unwrap();
        assert_eq!(store.ls().len(), 0);
        assert_eq!(store.get_value::<Vec<u64>>("a", Fingerprint(1)), None);
    }

    #[test]
    fn registry_tracks_latency_and_counters_per_handle() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let other = Store::open(&td.0).unwrap();
        for i in 0..5u64 {
            store.put_value("unit", Fingerprint(i), &vec![i; 16]);
        }
        for i in 0..5u64 {
            assert!(store
                .get_value::<Vec<u64>>("unit", Fingerprint(i))
                .is_some());
        }
        assert!(store
            .get_value::<Vec<u64>>("unit", Fingerprint(99))
            .is_none());
        let get = store
            .registry()
            .get_histogram("argo_store_get_latency_us")
            .unwrap();
        let put = store
            .registry()
            .get_histogram("argo_store_put_latency_us")
            .unwrap();
        assert_eq!(put.count(), 5);
        assert_eq!(get.count(), 6, "hits and misses both time the read path");
        assert!(get.p99() >= get.p50());
        // Registries are per handle: the second store saw none of it.
        let cold = other
            .registry()
            .get_histogram("argo_store_get_latency_us")
            .unwrap();
        assert_eq!(cold.count(), 0);
        let text = store.registry().prometheus();
        assert!(text.contains("argo_store_hits_total 5"), "{text}");
        assert!(text.contains("argo_store_misses_total 1"), "{text}");
        assert!(text.contains("argo_store_get_latency_us_count 6"), "{text}");
    }

    #[test]
    fn fsck_classifies_and_repairs() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        // Two healthy entries, one truncated, one version-skewed, one
        // tmp orphan.
        for i in 0..4u64 {
            store.put_value("unit", Fingerprint(i), &vec![i; 32]);
        }
        let truncated = store.entry_path("unit", Fingerprint(2));
        let bytes = fs::read(&truncated).unwrap();
        fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        let skewed = store.entry_path("unit", Fingerprint(3));
        let mut bytes = fs::read(&skewed).unwrap();
        bytes[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        fs::write(&skewed, &bytes).unwrap();
        fs::write(td.0.join("tmp").join("1-0.tmp"), b"half").unwrap();

        let report = store.fsck(false);
        assert_eq!(report.scanned, 4);
        assert_eq!(report.valid, 2);
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.version_skew, 1);
        assert_eq!(report.tmp_orphans, 1);
        assert_eq!(report.problems(), 3);
        assert_eq!(report.repaired, 0);
        assert_eq!(report.findings.len(), 3);
        assert!(truncated.exists(), "report mode never unlinks");
        // fsck bumps no counters and heals nothing by itself.
        assert_eq!(store.counters(), StoreCounters::default());

        let report = store.fsck(true);
        assert_eq!(report.repaired, 3);
        assert!(!truncated.exists());
        assert!(!skewed.exists());
        assert_eq!(store.fsck(false).problems(), 0);
        // The healthy entries still read back after repair.
        assert_eq!(
            store.get_value::<Vec<u64>>("unit", Fingerprint(0)),
            Some(vec![0u64; 32])
        );
    }

    #[test]
    fn open_with_io_routes_through_the_backend() {
        /// Counts operations, delegating to [`RealIo`].
        #[derive(Debug, Default)]
        struct CountingIo {
            reads: AtomicU64,
            writes: AtomicU64,
        }
        impl IoBackend for CountingIo {
            fn create_dir_all(&self, path: &Path) -> io::Result<()> {
                RealIo.create_dir_all(path)
            }
            fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
                self.reads.fetch_add(1, Ordering::Relaxed);
                RealIo.read(path)
            }
            fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
                self.writes.fetch_add(1, Ordering::Relaxed);
                RealIo.write_file(path, bytes)
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                RealIo.rename(from, to)
            }
            fn remove_file(&self, path: &Path) -> io::Result<()> {
                RealIo.remove_file(path)
            }
            fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
                RealIo.read_dir(path)
            }
            fn set_modified(&self, path: &Path, t: SystemTime) -> io::Result<()> {
                RealIo.set_modified(path, t)
            }
            fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
                RealIo.remove_dir_all(path)
            }
        }

        let td = TestDir::new();
        let io = Arc::new(CountingIo::default());
        let store = Store::open_with_io(&td.0, io.clone()).unwrap();
        put_get_value_round_trips(&store);
        assert_eq!(io.writes.load(Ordering::Relaxed), 1);
        assert_eq!(io.reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_writers_and_readers_share_a_dir_safely() {
        let td = TestDir::new();
        let store = Store::open(&td.0).unwrap();
        let second = Store::open(&td.0).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = if t % 2 == 0 { &store } else { &second };
                s.spawn(move || {
                    for i in 0..50u64 {
                        let key = Fingerprint(i % 8);
                        store.put_value("race", key, &vec![i % 8; 64]);
                        if let Some(v) = store.get_value::<Vec<u64>>("race", key) {
                            assert_eq!(v, vec![i % 8; 64], "torn or mixed read");
                        }
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.corrupt, 0, "no torn writes observed");
        assert_eq!(second.counters().corrupt, 0);
    }
}
