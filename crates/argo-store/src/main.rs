//! `argo-store` — inspect and maintain a persistent artifact store.
//!
//! ```sh
//! argo-store stats --dir .argo-store
//! argo-store stats --dir .argo-store --json
//! argo-store ls    --dir .argo-store
//! argo-store gc    --dir .argo-store --budget 67108864
//! argo-store clear --dir .argo-store
//! ```
//!
//! Exits 0 on success, 2 on usage or I/O errors.

use argo_store::Store;
use std::process::ExitCode;
use std::time::SystemTime;

const USAGE: &str = "argo-store — persistent artifact store maintenance

USAGE:
    argo-store stats --dir DIR [--json]  entry count, bytes, counters
    argo-store ls    --dir DIR           all entries, newest-used first
    argo-store gc    --dir DIR --budget BYTES
                                         evict LRU entries over the budget
    argo-store clear --dir DIR           remove every entry
    argo-store help
";

struct Options {
    dir: String,
    budget: Option<u64>,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut dir = None;
    let mut budget = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(value()?.to_string()),
            "--budget" => {
                budget = Some(value()?.parse().map_err(|_| "bad --budget".to_string())?);
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag `{other}` (see `argo-store help`)")),
        }
    }
    Ok(Options {
        dir: dir.ok_or("missing --dir DIR")?,
        budget,
        json,
    })
}

/// `stats --json` output: one machine-readable object, keys matching
/// the `StoreStats`/`StoreCounters` field names, so the `argo-serve`
/// health endpoint and CI scripts can parse counters without scraping
/// the human-readable text.
fn stats_json(dir: &str, stats: &argo_store::StoreStats) -> String {
    let c = stats.counters;
    format!(
        "{{\"store\": \"{}\", \"entries\": {}, \"bytes\": {}, \"counters\": \
         {{\"hits\": {}, \"misses\": {}, \"corrupt\": {}, \"version_skew\": {}, \
         \"evictions\": {}, \"write_errors\": {}}}}}",
        dir.escape_default(),
        stats.entries,
        stats.bytes,
        c.hits,
        c.misses,
        c.corrupt,
        c.version_skew,
        c.evictions,
        c.write_errors
    )
}

fn run(cmd: &str, args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;
    let store = Store::open(&opts.dir).map_err(|e| format!("opening {}: {e}", opts.dir))?;
    match cmd {
        "stats" => {
            let stats = store.stats();
            if opts.json {
                println!("{}", stats_json(&opts.dir, &stats));
                return Ok(());
            }
            println!("store: {}", opts.dir);
            println!("entries: {}", stats.entries);
            println!("bytes: {}", stats.bytes);
            let c = stats.counters;
            println!(
                "counters: {} hits, {} misses, {} corrupt, {} version-skew, \
                 {} evictions, {} write-errors",
                c.hits, c.misses, c.corrupt, c.version_skew, c.evictions, c.write_errors
            );
            Ok(())
        }
        "ls" => {
            let now = SystemTime::now();
            for entry in store.ls() {
                let age = now
                    .duration_since(entry.last_used)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                println!(
                    "{:<12} {:016x} {:>10} B  used {age}s ago",
                    entry.namespace, entry.key.0, entry.bytes
                );
            }
            Ok(())
        }
        "gc" => {
            let budget = opts.budget.ok_or("gc needs --budget BYTES")?;
            let gc = store.gc(budget);
            println!(
                "evicted {} entries ({} B), swept {} tmp orphans, {} B remain",
                gc.evicted, gc.reclaimed_bytes, gc.tmp_swept, gc.remaining_bytes
            );
            Ok(())
        }
        "clear" => {
            store
                .clear()
                .map_err(|e| format!("clearing {}: {e}", opts.dir))?;
            println!("cleared {}", opts.dir);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(cmd) => match run(cmd, &args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("argo-store: {e}");
                ExitCode::from(2)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let args: Vec<String> = ["--dir", "/tmp/s", "--budget", "1024"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.dir, "/tmp/s");
        assert_eq!(o.budget, Some(1024));
        assert!(!o.json);
        assert!(parse_args(&[]).is_err(), "--dir is required");
        assert!(parse_args(&["--budget".to_string(), "x".into()]).is_err());
        assert!(parse_args(&["--frob".to_string()]).is_err());

        let args: Vec<String> = ["--dir", "/tmp/s", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).unwrap().json);
    }

    #[test]
    fn stats_json_shape() {
        let stats = argo_store::StoreStats {
            entries: 3,
            bytes: 512,
            counters: argo_store::StoreCounters {
                hits: 7,
                misses: 2,
                ..Default::default()
            },
        };
        let json = stats_json("/tmp/s", &stats);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"entries\": 3"), "{json}");
        assert!(json.contains("\"bytes\": 512"), "{json}");
        assert!(json.contains("\"hits\": 7"), "{json}");
        assert!(json.contains("\"misses\": 2"), "{json}");
        assert!(json.contains("\"write_errors\": 0"), "{json}");
    }
}
