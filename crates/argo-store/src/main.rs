//! `argo-store` — inspect and maintain a persistent artifact store.
//!
//! ```sh
//! argo-store stats --dir .argo-store
//! argo-store stats --dir .argo-store --json
//! argo-store ls    --dir .argo-store
//! argo-store gc    --dir .argo-store --budget 67108864
//! argo-store fsck  --dir .argo-store [--repair] [--json]
//! argo-store clear --dir .argo-store
//! ```
//!
//! Exits 0 on success, 2 on usage or I/O errors. `fsck` additionally
//! exits 1 when it finds problems (corrupt, version-skewed or
//! orphan-tmp files), so scripts can gate on store health.

use argo_store::{FsckReport, Store};
use std::process::ExitCode;
use std::time::SystemTime;

const USAGE: &str = "argo-store — persistent artifact store maintenance

USAGE:
    argo-store stats --dir DIR [--json]  entry count, bytes, counters
    argo-store ls    --dir DIR           all entries, newest-used first
    argo-store gc    --dir DIR --budget BYTES
                                         evict LRU entries over the budget
    argo-store fsck  --dir DIR [--repair] [--json]
                                         audit every entry; exit 1 on findings
    argo-store clear --dir DIR           remove every entry
    argo-store help
";

struct Options {
    dir: String,
    budget: Option<u64>,
    json: bool,
    repair: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut dir = None;
    let mut budget = None;
    let mut json = false;
    let mut repair = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(value()?.to_string()),
            "--budget" => {
                budget = Some(value()?.parse().map_err(|_| "bad --budget".to_string())?);
            }
            "--json" => json = true,
            "--repair" => repair = true,
            other => return Err(format!("unknown flag `{other}` (see `argo-store help`)")),
        }
    }
    Ok(Options {
        dir: dir.ok_or("missing --dir DIR")?,
        budget,
        json,
        repair,
    })
}

/// One histogram as a JSON fragment: `{"p50_us": …, "p99_us": …,
/// "count": …}`. Quantiles are 0 when the histogram is empty.
fn latency_json(h: &argo_trace::Histogram) -> String {
    format!(
        "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"count\": {}}}",
        h.p50(),
        h.p99(),
        h.count()
    )
}

/// `stats --json` output: one machine-readable object, keys matching
/// the `StoreStats`/`StoreCounters` field names, so the `argo-serve`
/// health endpoint and CI scripts can parse counters without scraping
/// the human-readable text. The `latency` object carries this handle's
/// get/put histograms (for a CLI run that means the `stats` walk
/// itself — cold handles start at zero).
fn stats_json(dir: &str, store: &Store) -> String {
    let stats = store.stats();
    let c = stats.counters;
    let get = store
        .registry()
        .get_histogram("argo_store_get_latency_us")
        .expect("store registry always has the get histogram");
    let put = store
        .registry()
        .get_histogram("argo_store_put_latency_us")
        .expect("store registry always has the put histogram");
    format!(
        "{{\"store\": \"{}\", \"entries\": {}, \"bytes\": {}, \"counters\": \
         {{\"hits\": {}, \"misses\": {}, \"corrupt\": {}, \"version_skew\": {}, \
         \"evictions\": {}, \"write_errors\": {}}}, \"latency\": \
         {{\"get\": {}, \"put\": {}}}}}",
        dir.escape_default(),
        stats.entries,
        stats.bytes,
        c.hits,
        c.misses,
        c.corrupt,
        c.version_skew,
        c.evictions,
        c.write_errors,
        latency_json(&get),
        latency_json(&put)
    )
}

/// `fsck --json` output: per-class counts plus the flagged paths.
fn fsck_json(report: &FsckReport) -> String {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"class\": \"{}\", \"path\": \"{}\"}}",
                f.class.label(),
                f.path.display().to_string().escape_default()
            )
        })
        .collect();
    format!(
        "{{\"scanned\": {}, \"valid\": {}, \"corrupt\": {}, \"version_skew\": {}, \
         \"tmp_orphans\": {}, \"repaired\": {}, \"problems\": {}, \"findings\": [{}]}}",
        report.scanned,
        report.valid,
        report.corrupt,
        report.version_skew,
        report.tmp_orphans,
        report.repaired,
        report.problems(),
        findings.join(", ")
    )
}

fn run(cmd: &str, args: &[String]) -> Result<ExitCode, String> {
    let opts = parse_args(args)?;
    let store = Store::open(&opts.dir).map_err(|e| format!("opening {}: {e}", opts.dir))?;
    match cmd {
        "stats" => {
            if opts.json {
                println!("{}", stats_json(&opts.dir, &store));
                return Ok(ExitCode::SUCCESS);
            }
            let stats = store.stats();
            println!("store: {}", opts.dir);
            println!("entries: {}", stats.entries);
            println!("bytes: {}", stats.bytes);
            let c = stats.counters;
            println!(
                "counters: {} hits, {} misses, {} corrupt, {} version-skew, \
                 {} evictions, {} write-errors",
                c.hits, c.misses, c.corrupt, c.version_skew, c.evictions, c.write_errors
            );
            Ok(ExitCode::SUCCESS)
        }
        "ls" => {
            let now = SystemTime::now();
            for entry in store.ls() {
                let age = now
                    .duration_since(entry.last_used)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                println!(
                    "{:<12} {:016x} {:>10} B  used {age}s ago",
                    entry.namespace, entry.key.0, entry.bytes
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let budget = opts.budget.ok_or("gc needs --budget BYTES")?;
            let gc = store.gc(budget);
            println!(
                "evicted {} entries ({} B), swept {} tmp orphans, {} B remain",
                gc.evicted, gc.reclaimed_bytes, gc.tmp_swept, gc.remaining_bytes
            );
            Ok(ExitCode::SUCCESS)
        }
        "fsck" => {
            let report = store.fsck(opts.repair);
            if opts.json {
                println!("{}", fsck_json(&report));
            } else {
                for finding in &report.findings {
                    println!("{:<12} {}", finding.class.label(), finding.path.display());
                }
                println!(
                    "scanned {} entries: {} valid, {} corrupt, {} version-skew, \
                     {} tmp orphans{}",
                    report.scanned,
                    report.valid,
                    report.corrupt,
                    report.version_skew,
                    report.tmp_orphans,
                    if opts.repair {
                        format!("; repaired {}", report.repaired)
                    } else {
                        String::new()
                    }
                );
            }
            Ok(if report.problems() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "clear" => {
            store
                .clear()
                .map_err(|e| format!("clearing {}: {e}", opts.dir))?;
            println!("cleared {}", opts.dir);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(cmd) => match run(cmd, &args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("argo-store: {e}");
                ExitCode::from(2)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let args: Vec<String> = ["--dir", "/tmp/s", "--budget", "1024"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.dir, "/tmp/s");
        assert_eq!(o.budget, Some(1024));
        assert!(!o.json);
        assert!(!o.repair);
        assert!(parse_args(&[]).is_err(), "--dir is required");
        assert!(parse_args(&["--budget".to_string(), "x".into()]).is_err());
        assert!(parse_args(&["--frob".to_string()]).is_err());

        let args: Vec<String> = ["--dir", "/tmp/s", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).unwrap().json);

        let args: Vec<String> = ["--dir", "/tmp/s", "--repair"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).unwrap().repair);
    }

    #[test]
    fn fsck_json_shape() {
        let dir = std::env::temp_dir().join(format!("argo-store-fsck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        use argo_core::Fingerprint;
        store.put_value("unit", Fingerprint(1), &vec![1u64; 8]);
        std::fs::write(dir.join("tmp").join("1-0.tmp"), b"half").unwrap();
        let json = fsck_json(&store.fsck(false));
        assert!(json.contains("\"scanned\": 1"), "{json}");
        assert!(json.contains("\"valid\": 1"), "{json}");
        assert!(json.contains("\"tmp_orphans\": 1"), "{json}");
        assert!(json.contains("\"problems\": 1"), "{json}");
        assert!(json.contains("\"class\": \"tmp-orphan\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_json_shape() {
        let dir = std::env::temp_dir().join(format!("argo-store-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        use argo_core::Fingerprint;
        for i in 0..3u64 {
            store.put_value("unit", Fingerprint(i), &vec![i; 8]);
        }
        let _ = store.get_value::<Vec<u64>>("unit", Fingerprint(0));
        let _ = store.get_value::<Vec<u64>>("unit", Fingerprint(9)); // miss
        let json = stats_json("/tmp/s", &store);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"entries\": 3"), "{json}");
        assert!(json.contains("\"hits\": 1"), "{json}");
        assert!(json.contains("\"misses\": 1"), "{json}");
        assert!(json.contains("\"write_errors\": 0"), "{json}");
        assert!(json.contains("\"latency\""), "{json}");
        assert!(json.contains("\"get\": {\"p50_us\""), "{json}");
        assert!(json.contains("\"put\": {\"p50_us\""), "{json}");
        assert!(
            json.contains("\"count\": 3"),
            "put histogram saw 3 writes: {json}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
