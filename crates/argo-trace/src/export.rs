//! Exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a text flame summary (top-N self-time by
//! span name).

use crate::span::{thread_names, SpanRecord, Tracer};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Minimal JSON string escaping for span/thread names.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders records as Chrome trace-event JSON: one complete (`"ph":
/// "X"`) event per span — balanced by construction, unlike paired B/E
/// events — plus one `thread_name` metadata event per recording
/// thread. Timestamps are microseconds since the tracer's epoch.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in thread_names() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(&name)
        );
    }
    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            r.thread,
            esc(&r.name),
            r.start_ns as f64 / 1_000.0,
            r.dur_ns as f64 / 1_000.0,
            r.id,
            r.parent,
        );
    }
    out.push_str("]}");
    out
}

/// Writes the tracer's current snapshot as Chrome trace JSON to `path`.
pub fn write_chrome_trace(tracer: &Tracer, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(&tracer.snapshot()))
}

/// Per-name totals in a flame summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameRow {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds: total minus the time of child
    /// spans *present in the snapshot* (an evicted child's time stays
    /// attributed to its parent).
    pub self_ns: u64,
}

/// Aggregates records by name into self/total time, sorted by self
/// time descending. Parent ids that don't resolve within `records`
/// are treated as roots.
pub fn flame_rows(records: &[SpanRecord]) -> Vec<FlameRow> {
    let ids: HashMap<u64, usize> = records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let mut child_ns: Vec<u64> = vec![0; records.len()];
    for r in records {
        if r.parent != 0 {
            if let Some(&pi) = ids.get(&r.parent) {
                child_ns[pi] += r.dur_ns;
            }
        }
    }
    let mut by_name: HashMap<&str, FlameRow> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let row = by_name.entry(r.name.as_ref()).or_insert_with(|| FlameRow {
            name: r.name.to_string(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.count += 1;
        row.total_ns += r.dur_ns;
        row.self_ns += r.dur_ns.saturating_sub(child_ns[i]);
    }
    let mut rows: Vec<FlameRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Renders the top-`n` flame rows as an aligned text table.
pub fn flame_summary(records: &[SpanRecord], n: usize) -> String {
    let rows = flame_rows(records);
    let mut out = format!(
        "flame summary — top {} of {} span names by self time\n{:>12}  {:>12}  {:>7}  name\n",
        n.min(rows.len()),
        rows.len(),
        "self",
        "total",
        "count"
    );
    for row in rows.iter().take(n) {
        let _ = writeln!(
            out,
            "{:>12}  {:>12}  {:>7}  {}",
            fmt_ms(row.self_ns),
            fmt_ms(row.total_ns),
            row.count,
            row.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn rec(id: u64, parent: u64, name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            thread: 1,
            start_ns: start,
            dur_ns: dur,
            seq: id,
        }
    }

    #[test]
    fn self_time_subtracts_present_children_only() {
        let records = vec![
            rec(1, 2, "child", 100, 400_000),
            rec(2, 0, "parent", 0, 1_000_000),
            // Parent id 99 is not in the snapshot (evicted): treated
            // as a root, charged nowhere.
            rec(3, 99, "orphan", 2_000_000, 300_000),
        ];
        let rows = flame_rows(&records);
        let parent = rows.iter().find(|r| r.name == "parent").unwrap();
        assert_eq!(parent.total_ns, 1_000_000);
        assert_eq!(parent.self_ns, 600_000);
        let orphan = rows.iter().find(|r| r.name == "orphan").unwrap();
        assert_eq!(orphan.self_ns, 300_000);
        let text = flame_summary(&records, 10);
        assert!(text.contains("parent"), "{text}");
        assert!(text.contains("0.600ms"), "{text}");
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let t = Tracer::new(8);
        t.enable();
        {
            let _a = t.span("outer \"quoted\"");
            let _b = t.span("inner");
        }
        let json = chrome_trace(&t.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ph\":\"M\""), "thread metadata present");
        // Balanced braces/brackets — cheap structural sanity before
        // the real JSON-parse test in tests/trace.rs.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
