//! `argo-trace` — std-only hierarchical span tracing + metrics for the
//! ARGO toolflow.
//!
//! One crate unifies the repo's observability mechanisms:
//!
//! - **Spans** ([`Tracer`], [`Span`]): RAII guards forming a
//!   per-thread hierarchy (session → stage → sub-phase → per-point),
//!   recorded into a bounded ring buffer with atomic slot claim.
//!   `StageObserver` events become spans through the
//!   `argo_core::TracingObserver` adapter; `argo_dse::TimingObserver`
//!   folds the same durations through a [`SpanAgg`].
//! - **Exporters** ([`chrome_trace`], [`flame_summary`]): Chrome
//!   trace-event JSON (open in Perfetto or `chrome://tracing`) and a
//!   text top-N self-time table, both behind `--trace out.json` on
//!   `argo-dse explore`, `argo-verify` and `argo-serve`.
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): atomic counters/gauges and fixed-bucket latency
//!   histograms with p50/p90/p99 derivation, rendered as Prometheus
//!   text exposition (the `argo-serve` `metrics` request).
//!
//! # Cost model
//!
//! Everything is **off by default** and gated on one relaxed atomic
//! load: [`spans_on`] for the global tracer, [`metrics_on`] for
//! hot-subsystem counters (annealer proposals, BnB expansions, WCET
//! fixpoint rounds). Instrumented inner loops count into locals and
//! publish once per call *after* checking the gate, so a disabled
//! build does no shared-memory traffic on the hot paths —
//! `bench_hotpaths` pins this. Request/IO-level metrics (serve request
//! latency, store get/put latency) are always on: one histogram
//! observe per request or file operation. Spans and metrics are only
//! ever surfaced through side channels (`--trace` files, the `metrics`
//! request, `stats --json`, stderr summaries) — never in deterministic
//! response bodies or CSV, so byte-identical replay contracts are
//! unaffected.
//!
//! # OBSERVABILITY
//!
//! Metric name → subsystem → meaning:
//!
//! | metric | subsystem | meaning |
//! |---|---|---|
//! | `argo_serve_request_latency_us{kind=…}` | argo-serve | Wall time per completed request, by request kind (histogram, µs). |
//! | `argo_serve_slow_requests_total` | argo-serve | Requests whose wall time exceeded the daemon's slow threshold (each is dumped to stderr). |
//! | `argo_store_hits_total` / `argo_store_misses_total` | argo-store | Artifact reads served / not served by the store (per-store registry; a self-healed corrupt read converts a hit into a miss). |
//! | `argo_store_corrupt_total` / `argo_store_version_skew_total` | argo-store | Reads rejected by checksum/fingerprint validation / by entry-version mismatch. |
//! | `argo_store_evictions_total` / `argo_store_write_errors_total` | argo-store | Entries removed by LRU GC / failed atomic writes. |
//! | `argo_store_get_latency_us` / `argo_store_put_latency_us` | argo-store | Read / write latency per store operation (histogram, µs). |
//! | `argo_dse_point_wall_us` | argo-dse | Wall time per evaluated design point (histogram, µs). |
//! | `argo_dse_worker_busy_us_total` / `argo_dse_worker_wall_us_total` | argo-dse | Executor busy time vs. elapsed wall time × workers; their ratio is worker utilization. |
//! | `argo_sched_anneal_proposals_total` / `argo_sched_anneal_accepts_total` | argo-sched | Simulated-annealing moves proposed / accepted (gated on [`metrics_on`]). |
//! | `argo_sched_bnb_expanded_total` / `argo_sched_bnb_pruned_total` | argo-sched | Branch-and-bound nodes expanded / subtrees cut by the lower bound (gated). |
//! | `argo_wcet_fixpoint_iters` | argo-wcet | Widening-fixpoint rounds per analyzed loop body (histogram, gated). |
//!
//! Span names: `stage.frontend` / `stage.seed-costs` / `stage.backend`
//! / `stage.verify` (one per pipeline stage execution, from the
//! session driver), `backend.round` (one per § II-E feedback round),
//! `dse.point` (one per design-point evaluation), `serve.request`
//! (one per daemon request actually executed).
//!
//! # Example
//!
//! ```
//! argo_trace::enable_spans();
//! {
//!     let _outer = argo_trace::span("stage.backend");
//!     let _inner = argo_trace::span("backend.round");
//! }
//! let records = argo_trace::global().snapshot();
//! assert!(records.iter().any(|r| r.name == "backend.round"));
//! let json = argo_trace::chrome_trace(&records);
//! assert!(json.contains("\"ph\":\"X\""));
//!
//! let lat = argo_trace::metrics()
//!     .histogram("doc_latency_us", argo_trace::LATENCY_US_BUCKETS);
//! lat.observe(120);
//! assert!(argo_trace::metrics().prometheus().contains("doc_latency_us_count 1"));
//! ```

mod export;
mod metrics;
mod span;

pub use export::{chrome_trace, flame_rows, flame_summary, write_chrome_trace, FlameRow};
pub use metrics::{Counter, Gauge, Histogram, Registry, COUNT_BUCKETS, LATENCY_US_BUCKETS};
pub use span::{current_thread_id, thread_names, Span, SpanAgg, SpanRecord, Tracer};

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Ring capacity of the [`global`] tracer (completed spans retained).
pub const GLOBAL_RING_CAPACITY: usize = 65_536;

static SPANS_ON: AtomicBool = AtomicBool::new(false);
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// The process-wide tracer (disabled until [`enable_spans`]).
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(GLOBAL_RING_CAPACITY))
}

/// The process-wide metrics registry. Always usable; whether
/// *hot-path* instrumentation feeds it is governed by [`metrics_on`].
pub fn metrics() -> &'static Registry {
    static METRICS: OnceLock<Registry> = OnceLock::new();
    METRICS.get_or_init(Registry::new)
}

/// Whether the global tracer records spans — one relaxed load, the
/// instrumentation fast path.
#[inline]
pub fn spans_on() -> bool {
    SPANS_ON.load(Ordering::Relaxed)
}

/// Whether gated hot-subsystem metrics publish — one relaxed load.
#[inline]
pub fn metrics_on() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Turns on global span recording (`--trace` does this).
pub fn enable_spans() {
    global().enable();
    SPANS_ON.store(true, Ordering::Relaxed);
}

/// Turns on gated hot-subsystem metrics (the daemon and `--trace` do
/// this).
pub fn enable_metrics() {
    METRICS_ON.store(true, Ordering::Relaxed);
}

/// Opens a span on the [`global`] tracer; inert (and allocation-free)
/// while [`spans_on`] is false.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> Span<'static> {
    if spans_on() {
        global().span(name)
    } else {
        Span::inert()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_global_span_is_inert() {
        // Note: other tests (or the doctest) may have enabled the
        // global tracer; this only checks the inert constructor path.
        let guard = super::Span::inert();
        assert_eq!(guard.id(), 0);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = super::metrics().counter("argo_trace_selftest_total");
        c.inc();
        assert!(super::metrics().counter("argo_trace_selftest_total").get() >= 1);
    }
}
