//! Metrics: atomic counters/gauges, fixed-bucket histograms with
//! quantile derivation, and a registry with Prometheus text exposition.
//!
//! Metric names follow Prometheus conventions
//! (`subsystem_quantity_unit`, `_total` suffix on counters) and may
//! carry a literal label set: `argo_serve_request_latency_us{kind="compile"}`
//! is one registry entry; the exposition splits the base name from the
//! labels so `# TYPE` lines and histogram `_bucket` series come out
//! well-formed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter. (One internal exception: `argo-store` decrements
/// a hit when a self-healing re-read turns it into a miss; `sub` exists
/// for that correction and saturates at zero.)
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Microsecond latency buckets: 1 µs – 10 s, roughly ×2–×2.5 steps.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Small-count buckets (iteration/round counts): 1 – 128.
pub const COUNT_BUCKETS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];

/// Fixed-bucket histogram: bucket `i` counts observations `<=
/// bounds[i]` (Prometheus `le` semantics) plus one overflow bucket.
/// Observation and quantile reads are lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is the `+Inf` overflow.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = match self.bounds.binary_search(&v) {
            Ok(i) | Err(i) => i,
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    pub fn observe_duration_us(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside
    /// the bucket that crosses the target rank. Values in the overflow
    /// bucket clamp to the largest bound; an empty histogram reads 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cum = 0u64;
        let mut lower = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            let upper = self.bounds.get(i).copied();
            if c > 0 && (cum + c) as f64 >= target {
                let Some(upper) = upper else {
                    // Overflow bucket: no upper bound to interpolate to.
                    return lower as f64;
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lower as f64 + frac * (upper - lower) as f64;
            }
            cum += c;
            if let Some(u) = upper {
                lower = u;
            }
        }
        lower as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// `(cumulative_count, bound)` pairs plus the `+Inf` total, for
    /// exposition.
    pub fn cumulative(&self) -> (Vec<(u64, u64)>, u64) {
        let mut cum = 0u64;
        let mut rows = Vec::with_capacity(self.bounds.len());
        for (i, bound) in self.bounds.iter().enumerate() {
            cum += self.buckets[i].load(Ordering::Relaxed);
            rows.push((cum, *bound));
        }
        cum += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        (rows, cum)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named-metric registry. Get-or-create lookups take a mutex (call
/// them at setup, hold the `Arc` on hot paths); the exposition walks
/// the map in name order, so output is deterministic for a given set
/// of values.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, created over `bounds` on first use
    /// (later calls keep the original bounds).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// The histogram named `name`, if registered.
    pub fn get_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// The counter named `name`, if registered.
    pub fn get_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Prometheus text exposition (format 0.0.4) of every registered
    /// metric, in name order.
    pub fn prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in metrics.iter() {
            let (base, labels) = split_labels(name);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let (rows, total) = h.cumulative();
                    for (cum, bound) in rows {
                        let series = merge_label(base, labels, &format!("le=\"{bound}\""));
                        let _ = writeln!(out, "{series} {cum}");
                    }
                    let series = merge_label(base, labels, "le=\"+Inf\"");
                    let _ = writeln!(out, "{series} {total}");
                    let suffix = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
                    let _ = writeln!(out, "{base}_sum{suffix} {}", h.sum());
                    let _ = writeln!(out, "{base}_count{suffix} {total}");
                }
            }
        }
        out
    }
}

/// Splits `name{a="b"}` into (`name`, Some(`a="b"`)).
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Builds `base_bucket{existing,extra}`.
fn merge_label(base: &str, labels: Option<&str>, extra: &str) -> String {
    match labels {
        Some(l) => format!("{base}_bucket{{{l},{extra}}}"),
        None => format!("{base}_bucket{{{extra}}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("argo_test_total");
        c.inc();
        c.add(4);
        c.sub(2);
        assert_eq!(c.get(), 3);
        assert_eq!(
            r.counter("argo_test_total").get(),
            3,
            "get-or-create returns the same cell"
        );
        let g = r.gauge("argo_test_gauge");
        g.set(-7);
        g.add(2);
        assert_eq!(g.get(), -5);
        c.sub(100);
        assert_eq!(c.get(), 0, "sub saturates");
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let h = Histogram::new(&[10, 20, 30]);
        // A value exactly on a bound lands in that bound's bucket.
        h.observe(10);
        h.observe(11);
        h.observe(30);
        h.observe(31); // overflow
        let (rows, total) = h.cumulative();
        assert_eq!(rows, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(total, 4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 82);
    }

    /// Reference quantile on the raw sorted sample: nearest-rank.
    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The histogram's enclosing-bucket bounds for a value.
    fn bucket_bounds(bounds: &[u64], v: u64) -> (u64, u64) {
        let mut lower = 0;
        for &b in bounds {
            if v <= b {
                return (lower, b);
            }
            lower = b;
        }
        (lower, u64::MAX)
    }

    #[test]
    fn quantiles_match_sorted_reference_within_bucket_width() {
        // Deterministic pseudo-random samples (LCG), heavy tail.
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut samples: Vec<u64> = (0..500)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 900_000 + 1
            })
            .collect();
        let h = Histogram::new(LATENCY_US_BUCKETS);
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let reference = reference_quantile(&samples, q);
            let (lo, hi) = bucket_bounds(LATENCY_US_BUCKETS, reference);
            let estimate = h.quantile(q);
            assert!(
                estimate >= lo as f64 && estimate <= hi as f64,
                "q={q}: estimate {estimate} outside reference bucket [{lo}, {hi}] (ref {reference})"
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[10, 20]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reads 0");
        h.observe(5);
        assert!(h.quantile(0.0) > 0.0, "q=0 targets the first observation");
        h.observe(1_000); // overflow bucket
        assert_eq!(h.quantile(1.0), 20.0, "overflow clamps to the top bound");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("argo_req_total{kind=\"compile\"}").add(3);
        r.counter("argo_req_total{kind=\"verify\"}").inc();
        r.gauge("argo_queue_depth").set(2);
        let h = r.histogram("argo_lat_us{kind=\"compile\"}", &[10, 100]);
        h.observe(7);
        h.observe(50);
        h.observe(5_000);
        let text = r.prometheus();
        assert!(text.contains("# TYPE argo_req_total counter"));
        assert_eq!(
            text.matches("# TYPE argo_req_total counter").count(),
            1,
            "one TYPE line per base name:\n{text}"
        );
        assert!(text.contains("argo_req_total{kind=\"compile\"} 3"));
        assert!(text.contains("# TYPE argo_queue_depth gauge"));
        assert!(text.contains("argo_queue_depth 2"));
        assert!(text.contains("argo_lat_us_bucket{kind=\"compile\",le=\"10\"} 1"));
        assert!(text.contains("argo_lat_us_bucket{kind=\"compile\",le=\"+Inf\"} 3"));
        assert!(text.contains("argo_lat_us_sum{kind=\"compile\"} 5057"));
        assert!(text.contains("argo_lat_us_count{kind=\"compile\"} 3"));
    }
}
