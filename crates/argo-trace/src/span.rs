//! Hierarchical spans: RAII guards, a bounded ring buffer of completed
//! span records, and a by-name aggregator.
//!
//! A [`Tracer`] hands out [`Span`] guards. While a guard is alive, new
//! spans started on the same thread become its children (parent links
//! ride a thread-local stack, so cross-thread sessions each get their
//! own hierarchy). Dropping the guard timestamps the span and pushes a
//! [`SpanRecord`] into the tracer's ring buffer: a slot is claimed with
//! one atomic `fetch_add` (no global lock), and the oldest record is
//! evicted when the ring wraps. Eviction removes *older* (lower-`seq`)
//! records first, and a child always completes — and is therefore
//! recorded — before its parent, so eviction can orphan a child's
//! parent *reference* but never re-point it: consumers treat a parent
//! id missing from a snapshot as "root". A disabled tracer hands out
//! inert guards that touch no shared state.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root. The parent may have
    /// been evicted from the ring by the time a snapshot is taken;
    /// consumers must treat an unresolvable parent as a root.
    pub parent: u64,
    /// Span name (aggregation key for flame summaries).
    pub name: Cow<'static, str>,
    /// Small process-unique id of the recording thread (see
    /// [`thread_names`]).
    pub thread: u32,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Global record sequence number (ring order; children of a span
    /// always carry a lower `seq` than the span itself).
    pub seq: u64,
}

impl SpanRecord {
    /// End time in nanoseconds since the tracer's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

// --- Thread identity: a small dense id per OS thread, plus a name
// registry for trace exporters. Ids are process-global (shared by all
// tracers) so records from different tracers agree on thread labels.

static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

fn name_registry() -> &'static Mutex<BTreeMap<u32, String>> {
    static NAMES: OnceLock<Mutex<BTreeMap<u32, String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static THREAD_ID: Cell<u32> = const { Cell::new(0) };
    /// Stack of (tracer token, span id) for open spans on this thread.
    static OPEN: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's small trace id, assigning one (and registering
/// the thread's name) on first use.
pub fn current_thread_id() -> u32 {
    THREAD_ID.with(|cell| {
        let v = cell.get();
        if v != 0 {
            return v;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{id}"));
        name_registry().lock().unwrap().insert(id, name);
        cell.set(id);
        id
    })
}

/// Snapshot of the thread-id → thread-name registry (every thread that
/// has recorded at least one span).
pub fn thread_names() -> Vec<(u32, String)> {
    name_registry()
        .lock()
        .unwrap()
        .iter()
        .map(|(&id, name)| (id, name.clone()))
        .collect()
}

// --- Tracer.

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A span recorder: RAII guards in, [`SpanRecord`]s out of a bounded
/// ring buffer. Cheap to share (`&Tracer` is `Sync`); see the module
/// docs for the concurrency story.
pub struct Tracer {
    /// Distinguishes this tracer's entries on the shared thread-local
    /// parent stack (tests run several tracers on one thread).
    token: u64,
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    cursor: AtomicU64,
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    evicted: AtomicU64,
}

impl Tracer {
    /// A disabled tracer whose ring holds `capacity` completed spans
    /// (oldest evicted first). Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            evicted: AtomicU64::new(0),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (open guards become inert at drop).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Number of records evicted by ring wrap-around so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Opens a span. The guard records on drop; if the tracer is
    /// disabled the guard is inert (no allocation, no shared state).
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'_> {
        if !self.is_enabled() {
            return Span { live: None };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|&&(token, _)| token == self.token)
                .map_or(0, |&(_, id)| id);
            stack.push((self.token, id));
            parent
        });
        Span {
            live: Some(LiveSpan {
                tracer: self,
                id,
                parent,
                name: name.into(),
                start: Instant::now(),
            }),
        }
    }

    /// Records an already-timed span ending now (start is back-dated by
    /// `elapsed`), parented under the thread's innermost open span.
    /// This is the hook for adapters that learn a duration from an
    /// event stream (e.g. a `StageObserver` finish event) rather than
    /// from a guard.
    pub fn record_complete(&self, name: impl Into<Cow<'static, str>>, elapsed: Duration) {
        if !self.is_enabled() {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|&&(token, _)| token == self.token)
                .map_or(0, |&(_, id)| id)
        });
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        let dur_ns = elapsed.as_nanos() as u64;
        self.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            thread: current_thread_id(),
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            seq: 0,
        });
    }

    fn push(&self, mut record: SpanRecord) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap();
        if guard.is_some() {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(record);
    }

    /// All retained records, oldest first. Records evicted by ring
    /// wrap-around are gone; a record whose `parent` is not in the
    /// snapshot must be treated as a root.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap().clone())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Clears the ring (the eviction counter is kept).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock().unwrap() = None;
        }
    }
}

struct LiveSpan<'t> {
    tracer: &'t Tracer,
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    start: Instant,
}

/// RAII span guard: the span runs from construction to drop. Obtained
/// from [`Tracer::span`] (or the crate-level [`crate::span`] for the
/// global tracer); inert when tracing is disabled.
pub struct Span<'t> {
    live: Option<LiveSpan<'t>>,
}

impl Span<'_> {
    /// A guard that records nothing (what a disabled tracer returns).
    pub fn inert() -> Span<'static> {
        Span { live: None }
    }

    /// This span's id, or 0 for an inert guard.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur = live.start.elapsed();
        OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in the common case; a linear scan tolerates guards
            // dropped out of declaration order.
            if let Some(pos) = stack
                .iter()
                .rposition(|&entry| entry == (live.tracer.token, live.id))
            {
                stack.remove(pos);
            }
        });
        let start_ns = live
            .start
            .saturating_duration_since(live.tracer.epoch)
            .as_nanos() as u64;
        live.tracer.push(SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            thread: current_thread_id(),
            start_ns,
            dur_ns: dur.as_nanos() as u64,
            seq: 0,
        });
    }
}

/// Thread-safe by-name aggregation of completed spans: `(runs, total
/// nanoseconds)` per span name. This is the "span aggregator" behind
/// `argo-dse`'s `TimingObserver` — the same stage durations the tracer
/// records as spans, folded into totals.
#[derive(Debug, Default)]
pub struct SpanAgg {
    totals: Mutex<BTreeMap<Cow<'static, str>, (u64, u64)>>,
}

impl SpanAgg {
    /// An empty aggregator.
    pub fn new() -> SpanAgg {
        SpanAgg::default()
    }

    /// Folds one completed span into the totals.
    pub fn record(&self, name: impl Into<Cow<'static, str>>, elapsed: Duration) {
        let mut totals = self.totals.lock().unwrap();
        let entry = totals.entry(name.into()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += elapsed.as_nanos() as u64;
    }

    /// `(runs, total nanoseconds)` for `name` (zeros when unseen).
    pub fn get(&self, name: &str) -> (u64, u64) {
        self.totals
            .lock()
            .unwrap()
            .get(name)
            .copied()
            .unwrap_or((0, 0))
    }

    /// All `(name, runs, total nanoseconds)` entries, by name.
    pub fn entries(&self) -> Vec<(String, u64, u64)> {
        self.totals
            .lock()
            .unwrap()
            .iter()
            .map(|(name, &(runs, nanos))| (name.to_string(), runs, nanos))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(16);
        {
            let _a = tracer.span("a");
            let _b = tracer.span("b");
        }
        tracer.record_complete("c", Duration::from_millis(1));
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn nesting_links_parent_and_child() {
        let tracer = Tracer::new(16);
        tracer.enable();
        {
            let a = tracer.span("a");
            let b = tracer.span("b");
            assert_ne!(a.id(), b.id());
            drop(b);
            tracer.record_complete("timed", Duration::from_micros(5));
        }
        let records = tracer.snapshot();
        assert_eq!(records.len(), 3);
        let a = records.iter().find(|r| r.name == "a").unwrap();
        let b = records.iter().find(|r| r.name == "b").unwrap();
        let timed = records.iter().find(|r| r.name == "timed").unwrap();
        assert_eq!(a.parent, 0);
        assert_eq!(b.parent, a.id);
        assert_eq!(
            timed.parent, a.id,
            "record_complete parents under the open span"
        );
        assert!(b.seq < a.seq, "children complete before their parent");
        assert!(a.start_ns <= b.start_ns);
        assert!(a.end_ns() >= b.end_ns());
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let tracer = Tracer::new(4);
        tracer.enable();
        for i in 0..10u64 {
            let _s = tracer.span(format!("s{i}"));
        }
        let records = tracer.snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(tracer.evicted(), 6);
        let names: Vec<_> = records.iter().map(|r| r.name.as_ref()).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"], "oldest evicted first");
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn two_tracers_on_one_thread_keep_separate_parents() {
        let t1 = Tracer::new(8);
        let t2 = Tracer::new(8);
        t1.enable();
        t2.enable();
        {
            let _a = t1.span("t1-root");
            let _b = t2.span("t2-root");
            let _c = t1.span("t1-child");
            let _d = t2.span("t2-child");
        }
        let r1 = t1.snapshot();
        let r2 = t2.snapshot();
        let root1 = r1.iter().find(|r| r.name == "t1-root").unwrap();
        let child1 = r1.iter().find(|r| r.name == "t1-child").unwrap();
        assert_eq!(child1.parent, root1.id);
        let root2 = r2.iter().find(|r| r.name == "t2-root").unwrap();
        let child2 = r2.iter().find(|r| r.name == "t2-child").unwrap();
        assert_eq!(child2.parent, root2.id);
    }

    #[test]
    fn threads_get_distinct_ids_and_names() {
        let tracer = std::sync::Arc::new(Tracer::new(64));
        tracer.enable();
        let t = tracer.clone();
        std::thread::Builder::new()
            .name("span-worker".into())
            .spawn(move || {
                let _s = t.span("on-worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let _s = tracer.span("on-main");
        drop(_s);
        let records = tracer.snapshot();
        let worker = records.iter().find(|r| r.name == "on-worker").unwrap();
        let main = records.iter().find(|r| r.name == "on-main").unwrap();
        assert_ne!(worker.thread, main.thread);
        let names = thread_names();
        assert!(names
            .iter()
            .any(|(id, n)| *id == worker.thread && n == "span-worker"));
    }

    #[test]
    fn aggregator_sums_by_name() {
        let agg = SpanAgg::new();
        agg.record("stage.frontend", Duration::from_nanos(100));
        agg.record("stage.frontend", Duration::from_nanos(50));
        agg.record("stage.backend", Duration::from_nanos(7));
        assert_eq!(agg.get("stage.frontend"), (2, 150));
        assert_eq!(agg.get("stage.backend"), (1, 7));
        assert_eq!(agg.get("stage.verify"), (0, 0));
        assert_eq!(agg.entries().len(), 2);
    }
}
