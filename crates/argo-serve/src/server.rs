//! The daemon: a bounded worker pool serving typed toolflow requests
//! over JSON lines, with single-flight dedupe and a shared
//! persistent store.
//!
//! One reader thread per connection parses request lines and performs
//! admission control; accepted work requests are queued for a fixed
//! pool of worker threads. `stats` and `shutdown` are control requests
//! and are answered inline by the reader. Every work request is routed
//! through [`SingleFlight`] on its canonical fingerprint, so
//! concurrent identical requests (same or different connections) run
//! the pipeline exactly once and share one response body, byte for
//! byte. Because the [`Explorer`]'s cache can be backed by an
//! [`argo_store`] directory — safe to share across processes thanks to
//! its atomic writes — a warm store answers repeated requests with
//! zero pipeline stages: the point archive serves the finished
//! outcome directly.

use crate::proto::{self, Envelope, Request};
use crate::singleflight::{LeaderFailed, SingleFlight};
use argo_core::{CancelToken, Diagnostic, FeedbackSnapshot, Stage, StageObserver, StageSummary};
use argo_dse::executor::parallel_map;
use argo_dse::{pareto_front, DesignSpace, Explorer, ReportRow, StageTimings, TimingObserver};
use argo_search::Budget;
use argo_trace::{Counter, Histogram, LATENCY_US_BUCKETS};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control and worker-pool knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing queued requests.
    pub workers: usize,
    /// Maximum queued (admitted, not yet executing) requests; beyond
    /// this, requests are rejected with an `over-capacity` error.
    pub queue_limit: usize,
    /// Maximum design-space size an `explore` request may ask for.
    pub max_points: usize,
    /// Hard cap on a `search` request's evaluation budget (requested
    /// budgets are clamped, not rejected).
    pub max_evaluations: usize,
    /// Threads used *inside* one explore/search evaluation.
    pub eval_threads: usize,
    /// Work requests slower than this are logged to stderr with their
    /// per-stage breakdown and counted in
    /// `argo_serve_slow_requests_total` (`None` = no slow log).
    pub slow_request_ms: Option<u64>,
    /// Per-request deadline, measured from *admission* (so queue wait
    /// counts). A request past its deadline gets a `deadline-exceeded`
    /// error frame: immediately if it expired while queued, otherwise
    /// at the next stage boundary via the session's [`CancelToken`]
    /// checkpoint. `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_limit: 64,
            max_points: 256,
            max_evaluations: 256,
            eval_threads: 2,
            slow_request_ms: None,
            deadline_ms: None,
        }
    }
}

/// A bound listening endpoint.
pub enum Listener {
    /// TCP (use port 0 to let the OS pick).
    Tcp(TcpListener),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener on `addr` (e.g. `127.0.0.1:0`).
    pub fn tcp(addr: &str) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix socket listener at `path` (removed first if stale).
    #[cfg(unix)]
    pub fn unix(path: &str) -> io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Human-readable bound address (`127.0.0.1:4100` or a path).
    fn describe(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".into()),
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".into()),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                // One-line request/response frames: latency beats
                // batching, so disable Nagle.
                let _ = stream.set_nodelay(true);
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted connection (either family), readable and writable.
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-socket stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A connection's write half, shared between the reader thread (error
/// and control frames) and whichever worker executes its requests.
/// Frames are written whole-line under the lock, so frames from
/// concurrent requests interleave only at line granularity.
#[derive(Clone)]
struct SharedWriter(Arc<Mutex<Conn>>);

impl SharedWriter {
    /// Writes one frame; errors are swallowed (a client that hung up
    /// mid-request loses its frames, nothing else).
    fn line(&self, frame: &str) {
        let mut conn = self.0.lock().unwrap();
        let _ = conn.write_all(frame.as_bytes());
        let _ = conn.write_all(b"\n");
        let _ = conn.flush();
    }
}

/// An admitted work request waiting for a worker.
struct Job {
    envelope: Envelope,
    writer: SharedWriter,
    session: u64,
    /// Admission time; the per-request deadline (if configured) is
    /// measured from here, so time spent queued counts against it.
    enqueued: Instant,
}

/// Aborts a session at stage boundaries once its request's
/// [`CancelToken`] trips (deadline passed or explicit cancel). Pure
/// checkpoint — it observes no events.
struct CancelObserver(CancelToken);

impl StageObserver for CancelObserver {
    fn checkpoint(&self, stage: Stage) -> Result<(), Diagnostic> {
        self.0.check(stage)
    }
}

/// Forwards a session's stage events to the client as progress frames,
/// stamped with the per-session `seq` so the client can restore
/// emission order.
struct ForwardObserver {
    writer: SharedWriter,
    id: u64,
}

impl StageObserver for ForwardObserver {
    fn on_stage_start(&self, stage: Stage, seq: u64) {
        self.writer.line(&format!(
            "{{\"frame\":\"progress\",\"id\":{},\"seq\":{},\"event\":\"start\",\"stage\":\"{}\"}}",
            self.id,
            seq,
            stage.label()
        ));
    }

    fn on_stage_finish(&self, summary: &StageSummary) {
        self.writer.line(&format!(
            "{{\"frame\":\"progress\",\"id\":{},\"seq\":{},\"event\":\"finish\",\
             \"stage\":\"{}\",\"detail\":\"{}\",\"elapsed_us\":{},\"fingerprint\":\"{}\"}}",
            self.id,
            summary.seq,
            summary.stage.label(),
            proto::esc(&summary.detail),
            summary.elapsed.as_micros(),
            summary.fingerprint
        ));
    }

    fn on_stage_error(&self, stage: Stage, seq: u64, diagnostic: &Diagnostic) {
        self.writer.line(&format!(
            "{{\"frame\":\"progress\",\"id\":{},\"seq\":{},\"event\":\"error\",\
             \"stage\":\"{}\",\"error\":{}}}",
            self.id,
            seq,
            stage.label(),
            proto::diag_json(diagnostic)
        ));
    }

    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        self.writer.line(&format!(
            "{{\"frame\":\"progress\",\"id\":{},\"seq\":{},\"event\":\"feedback\",\
             \"round\":{},\"makespan\":{}}}",
            self.id, snapshot.seq, snapshot.round, snapshot.makespan
        ));
    }
}

/// Fans one session's events out to two observers (the client's
/// progress stream and the server-wide stage counters).
struct Fanout<'a>(&'a dyn StageObserver, &'a dyn StageObserver);

impl StageObserver for Fanout<'_> {
    fn on_stage_start(&self, stage: Stage, seq: u64) {
        self.0.on_stage_start(stage, seq);
        self.1.on_stage_start(stage, seq);
    }

    fn on_stage_finish(&self, summary: &StageSummary) {
        self.0.on_stage_finish(summary);
        self.1.on_stage_finish(summary);
    }

    fn on_stage_error(&self, stage: Stage, seq: u64, diagnostic: &Diagnostic) {
        self.0.on_stage_error(stage, seq, diagnostic);
        self.1.on_stage_error(stage, seq, diagnostic);
    }

    fn on_feedback_round(&self, snapshot: &FeedbackSnapshot) {
        self.0.on_feedback_round(snapshot);
        self.1.on_feedback_round(snapshot);
    }

    // Wrapper observers must forward `checkpoint`, or an inner
    // CancelObserver's deadline would be silently ignored.
    fn checkpoint(&self, stage: Stage) -> Result<(), Diagnostic> {
        self.0.checkpoint(stage)?;
        self.1.checkpoint(stage)
    }
}

#[derive(Default)]
struct RequestCounters {
    compile: AtomicU64,
    verify: AtomicU64,
    explore: AtomicU64,
    search: AtomicU64,
    stats: AtomicU64,
    rejected: AtomicU64,
}

/// Per-kind request-latency histograms
/// (`argo_serve_request_latency_us{kind=…}`), resolved once at
/// [`Server::start`] so the request path never touches the registry
/// lock.
struct LatencyHandles {
    compile: Arc<Histogram>,
    verify: Arc<Histogram>,
    explore: Arc<Histogram>,
    search: Arc<Histogram>,
}

impl LatencyHandles {
    fn resolve() -> LatencyHandles {
        let m = argo_trace::metrics();
        let h = |kind: &str| {
            m.histogram(
                &format!("argo_serve_request_latency_us{{kind=\"{kind}\"}}"),
                LATENCY_US_BUCKETS,
            )
        };
        LatencyHandles {
            compile: h("compile"),
            verify: h("verify"),
            explore: h("explore"),
            search: h("search"),
        }
    }

    fn for_request(&self, request: &Request) -> &Histogram {
        match request {
            Request::Compile(_) => &self.compile,
            Request::Verify(_) => &self.verify,
            Request::Explore(_) => &self.explore,
            Request::Search(_) => &self.search,
            Request::Stats | Request::Metrics | Request::Shutdown => {
                unreachable!("control requests are not timed")
            }
        }
    }
}

struct Inner {
    explorer: Explorer,
    flight: SingleFlight,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Active sessions: session id → requests served on it so far.
    sessions: Mutex<HashMap<u64, u64>>,
    next_session: AtomicU64,
    served_total: AtomicU64,
    counters: RequestCounters,
    /// Per-session stage-timing observers, retained after the session
    /// retires (a few counters each). Stage wall time is accumulated
    /// here ONLY — the server-wide view is the sum over sessions.
    /// (Before the `argo-trace` rewrite each stage was counted twice:
    /// once into a global observer and once into the per-session
    /// progress stream's timing.)
    session_obs: Mutex<HashMap<u64, Arc<TimingObserver>>>,
    /// Per-kind request latency histograms in the global registry.
    latency: LatencyHandles,
    /// `argo_serve_slow_requests_total` — requests over the slow-log
    /// threshold.
    slow_requests: Arc<Counter>,
    /// `argo_serve_panics_total` — request executions that panicked
    /// and were isolated into an `internal-error` frame.
    panics: Arc<Counter>,
    /// `argo_serve_deadline_exceeded_total` — requests answered with a
    /// `deadline-exceeded` frame (expired in queue or mid-pipeline).
    deadlines: Arc<Counter>,
    /// How to dial ourselves to unblock `accept` on shutdown.
    self_addr: String,
    unix: bool,
}

/// A running server: join it, query it, or shut it down.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: String,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Constructor namespace for the daemon (see [`Server::start`]).
pub struct Server;

impl Server {
    /// Starts the daemon on `listener`, serving `explorer` (already
    /// configured: thread count, optional [`argo_store`] backing,
    /// registered extra programs) with `cfg`'s admission limits.
    /// Returns once the acceptor and worker threads are running.
    pub fn start(
        listener: Listener,
        explorer: Explorer,
        cfg: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let addr = listener.describe();
        // The daemon always keeps its metrics registry live: gated
        // instrumentation in the schedulers/WCET/executor publishes,
        // and the `metrics` request exposes it.
        argo_trace::enable_metrics();
        let inner = Arc::new(Inner {
            explorer,
            flight: SingleFlight::new(),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            served_total: AtomicU64::new(0),
            counters: RequestCounters::default(),
            session_obs: Mutex::new(HashMap::new()),
            latency: LatencyHandles::resolve(),
            slow_requests: argo_trace::metrics().counter("argo_serve_slow_requests_total"),
            panics: argo_trace::metrics().counter("argo_serve_panics_total"),
            deadlines: argo_trace::metrics().counter("argo_serve_deadline_exceeded_total"),
            self_addr: addr.clone(),
            unix: !matches!(listener, Listener::Tcp(_)),
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.accept_loop(listener))
        };

        Ok(ServerHandle {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (`host:port`, or the socket path).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests a clean shutdown (same effect as a `shutdown` request).
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Waits for the acceptor and all workers to exit.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Cache counters of the shared explorer (for tests and drivers).
    pub fn cache_stats(&self) -> argo_dse::CacheStats {
        self.inner.explorer.cache_stats()
    }

    /// Server-global stage-run counters: the sum over all sessions'
    /// observers (for tests and drivers).
    pub fn stage_timings(&self) -> StageTimings {
        self.inner.stage_timings_total()
    }

    /// Per-session stage timings, including retired sessions, sorted
    /// by session id. Summing these reproduces [`Self::stage_timings`]
    /// exactly — there is no second accumulation path.
    pub fn session_stage_timings(&self) -> Vec<(u64, StageTimings)> {
        let map = self.inner.session_obs.lock().unwrap();
        let mut out: Vec<(u64, StageTimings)> =
            map.iter().map(|(&id, obs)| (id, obs.snapshot())).collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// `(executed, coalesced)` single-flight counters.
    pub fn singleflight_counts(&self) -> (u64, u64) {
        (self.inner.flight.executed(), self.inner.flight.coalesced())
    }

    /// Single-flight leaders that panicked (their followers received
    /// `leader-failed` error frames).
    pub fn leader_failures(&self) -> u64 {
        self.inner.flight.leader_failures()
    }
}

impl Inner {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue_cv.notify_all();
        // Unblock the acceptor with a throwaway connection to ourselves.
        if self.unix {
            #[cfg(unix)]
            {
                let _ = UnixStream::connect(&self.self_addr);
            }
        } else {
            let _ = TcpStream::connect(&self.self_addr);
        }
    }

    fn accept_loop(self: Arc<Inner>, listener: Listener) {
        loop {
            let conn = match listener.accept() {
                Ok(conn) => conn,
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let session = self.next_session.fetch_add(1, Ordering::Relaxed);
            self.sessions.lock().unwrap().insert(session, 0);
            let inner = Arc::clone(&self);
            // Reader threads are detached: they exit when their client
            // hangs up, and die with the process on shutdown.
            std::thread::spawn(move || inner.reader_loop(conn, session));
        }
    }

    fn reader_loop(self: Arc<Inner>, conn: Conn, session: u64) {
        let reader = match conn.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(_) => {
                self.retire_session(session);
                return;
            }
        };
        let writer = SharedWriter(Arc::new(Mutex::new(conn)));

        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            // During a graceful drain the reader keeps answering:
            // control requests still work, and `dispatch` rejects new
            // work with a `shutting-down` frame instead of silently
            // dropping the connection mid-request.
            match proto::parse_request(&line) {
                Err(message) => {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    writer.line(&protocol_error(0, "bad-request", &message));
                }
                Ok(envelope) => self.dispatch(envelope, &writer, session),
            }
        }
        self.retire_session(session);
    }

    fn retire_session(&self, session: u64) {
        self.sessions.lock().unwrap().remove(&session);
    }

    /// The session's timing observer, created on first use.
    fn session_observer(&self, session: u64) -> Arc<TimingObserver> {
        Arc::clone(self.session_obs.lock().unwrap().entry(session).or_default())
    }

    /// Sum of every session's stage timings — the single source for
    /// `stats` and [`ServerHandle::stage_timings`].
    fn stage_timings_total(&self) -> StageTimings {
        let map = self.session_obs.lock().unwrap();
        let mut total = StageTimings::default();
        for obs in map.values() {
            total.merge(&obs.snapshot());
        }
        total
    }

    fn served(&self, session: u64) {
        self.served_total.fetch_add(1, Ordering::Relaxed);
        if let Some(count) = self.sessions.lock().unwrap().get_mut(&session) {
            *count += 1;
        }
    }

    /// Admission control + routing for one parsed request.
    fn dispatch(&self, envelope: Envelope, writer: &SharedWriter, session: u64) {
        match &envelope.request {
            Request::Stats => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                let body = self.stats_body();
                writer.line(&format!(
                    "{{\"frame\":\"response\",\"id\":{},{}}}",
                    envelope.id, body
                ));
                self.served(session);
            }
            Request::Metrics => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                let body = self.metrics_body();
                writer.line(&format!(
                    "{{\"frame\":\"response\",\"id\":{},{}}}",
                    envelope.id, body
                ));
                self.served(session);
            }
            Request::Shutdown => {
                writer.line(&format!(
                    "{{\"frame\":\"response\",\"id\":{},\"ok\":true,\"kind\":\"shutdown\"}}",
                    envelope.id
                ));
                self.served(session);
                self.begin_shutdown();
            }
            Request::Explore(sweep) if sweep.space().len() > self.cfg.max_points => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                writer.line(&protocol_error(
                    envelope.id,
                    "space-too-large",
                    &format!(
                        "design space has {} points, limit is {}",
                        sweep.space().len(),
                        self.cfg.max_points
                    ),
                ));
            }
            Request::Search(spec) if spec.sweep.space().len() > self.cfg.max_points => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                writer.line(&protocol_error(
                    envelope.id,
                    "space-too-large",
                    &format!(
                        "design space has {} points, limit is {}",
                        spec.sweep.space().len(),
                        self.cfg.max_points
                    ),
                ));
            }
            Request::Compile(_) | Request::Verify(_) | Request::Explore(_) | Request::Search(_) => {
                // Graceful drain: once shutdown begins, in-flight and
                // queued work still completes, but no new work enters.
                if self.shutdown.load(Ordering::SeqCst) {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    writer.line(&protocol_error(
                        envelope.id,
                        "shutting-down",
                        "daemon is draining; resend to a fresh instance",
                    ));
                    return;
                }
                let mut queue = self.queue.lock().unwrap();
                if queue.len() >= self.cfg.queue_limit {
                    drop(queue);
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    writer.line(&protocol_error(
                        envelope.id,
                        "over-capacity",
                        &format!("request queue is full ({} pending)", self.cfg.queue_limit),
                    ));
                    return;
                }
                queue.push_back(Job {
                    envelope,
                    writer: writer.clone(),
                    session,
                    enqueued: Instant::now(),
                });
                drop(queue);
                self.queue_cv.notify_one();
            }
        }
    }

    fn worker_loop(self: Arc<Inner>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self.queue_cv.wait(queue).unwrap();
                }
            };
            self.run_job(job);
        }
    }

    fn run_job(&self, job: Job) {
        let Job {
            envelope,
            writer,
            session,
            enqueued,
        } = job;
        let counter = match &envelope.request {
            Request::Compile(_) => &self.counters.compile,
            Request::Verify(_) => &self.counters.verify,
            Request::Explore(_) => &self.counters.explore,
            Request::Search(_) => &self.counters.search,
            Request::Stats | Request::Metrics | Request::Shutdown => {
                unreachable!("control requests answered inline")
            }
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // The deadline clock started at admission: a request that
        // expired while queued is answered without running anything.
        let token = match self.cfg.deadline_ms {
            Some(ms) => CancelToken::with_deadline(enqueued + Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        if token.is_expired() {
            self.deadlines.inc();
            writer.line(&protocol_error(
                envelope.id,
                "deadline-exceeded",
                "request deadline elapsed while queued",
            ));
            self.served(session);
            return;
        }
        let obs = self.session_observer(session);
        // The before-snapshot only feeds the slow-request breakdown;
        // skip it on the hot path when no threshold is configured.
        let before = self.cfg.slow_request_ms.map(|_| obs.snapshot());
        let t0 = Instant::now();
        let span = argo_trace::span("serve.request");

        let key = envelope
            .request
            .fingerprint()
            .expect("work requests have a fingerprint");
        let progress = envelope.progress.then(|| ForwardObserver {
            writer: writer.clone(),
            id: envelope.id,
        });
        // The body is deterministic (no ids, no timings), so coalesced
        // followers can reuse the leader's bytes verbatim. Progress
        // frames stream only from the executing leader, to its client.
        //
        // Panic isolation: a panicking execution is caught *inside*
        // the flight closure, so leader and followers all get the same
        // structured `internal-error` body and the worker thread
        // survives. The `LeaderFailed` arm below is defence in depth —
        // it fires only if a panic escapes this catch.
        let body = self.flight.run(key, || {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.execute(
                    &envelope.request,
                    envelope.id,
                    &token,
                    &obs,
                    progress.as_ref().map(|p| p as &dyn StageObserver),
                    progress.as_ref().map(|_| &writer),
                )
            }));
            attempt.unwrap_or_else(|payload| {
                self.panics.inc();
                eprintln!(
                    "argo-serve: request id={} kind={} panicked: {}",
                    envelope.id,
                    envelope.request.kind(),
                    panic_message(&payload)
                );
                error_body(
                    "internal-error",
                    &format!("request execution panicked: {}", panic_message(&payload)),
                )
            })
        });
        let body: Arc<str> = body.unwrap_or_else(|failure: LeaderFailed| {
            Arc::from(error_body("leader-failed", &failure.to_string()))
        });
        drop(span);
        let elapsed = t0.elapsed();
        self.latency
            .for_request(&envelope.request)
            .observe_duration_us(elapsed);
        if let (Some(threshold), Some(before)) = (self.cfg.slow_request_ms, before) {
            if elapsed.as_millis() as u64 >= threshold {
                self.slow_requests.inc();
                self.log_slow_request(&envelope, elapsed, &before, &obs.snapshot());
            }
        }
        // Bodies produced by `error_body` become error frames; all
        // others are responses. (Failure *diagnostics* from the
        // pipeline stay `"ok":false` responses — error frames are the
        // infrastructure talking, not the toolflow.)
        let frame = if body.starts_with("\"error\":") {
            "error"
        } else {
            "response"
        };
        writer.line(&format!(
            "{{\"frame\":\"{frame}\",\"id\":{},{}}}",
            envelope.id, body
        ));
        self.served(session);
    }

    /// Slow-request log line: total latency plus the per-stage wall
    /// time this request added to its session's observer. Coalesced
    /// followers show zero stage time — the leader ran the pipeline.
    fn log_slow_request(
        &self,
        envelope: &Envelope,
        elapsed: Duration,
        before: &StageTimings,
        after: &StageTimings,
    ) {
        let delta = |b: argo_dse::TierTiming, a: argo_dse::TierTiming| {
            (a.nanos.saturating_sub(b.nanos)) as f64 / 1e6
        };
        eprintln!(
            "argo-serve: slow request id={} kind={} took {:.1}ms \
             (frontend {:.1}ms, seed-costs {:.1}ms, backend {:.1}ms, verify {:.1}ms)",
            envelope.id,
            envelope.request.kind(),
            elapsed.as_secs_f64() * 1e3,
            delta(before.frontend, after.frontend),
            delta(before.seed_costs, after.seed_costs),
            delta(before.backend, after.backend),
            delta(before.verify, after.verify),
        );
    }

    /// Executes one work request and renders its deterministic body.
    ///
    /// A deadline that trips mid-pipeline (via `token`'s stage-boundary
    /// checkpoints) turns the whole request into a `deadline-exceeded`
    /// error body — a transient outcome the lower tiers neither memoize
    /// nor archive, so a retry after the deadline recomputes cleanly.
    fn execute(
        &self,
        request: &Request,
        id: u64,
        token: &CancelToken,
        obs: &TimingObserver,
        forward: Option<&dyn StageObserver>,
        progress_writer: Option<&SharedWriter>,
    ) -> String {
        match request {
            Request::Compile(spec) => {
                let row = self.evaluate_one(spec, token, obs, forward);
                self.transient_error_body(&row)
                    .unwrap_or_else(|| point_body("compile", &row, proto::metrics_json))
            }
            Request::Verify(spec) => {
                let row = self.evaluate_one(spec, token, obs, forward);
                self.transient_error_body(&row).unwrap_or_else(|| {
                    point_body("verify", &row, |m| {
                        format!("{{\"verified\":true,\"findings\":{}}}", m.verify_findings)
                    })
                })
            }
            Request::Explore(sweep) => {
                let space = sweep.space();
                let rows = self.evaluate_space(&space, id, token, obs, progress_writer);
                if token.is_tripped() {
                    self.deadlines.inc();
                    let done = rows.iter().filter(|r| r.outcome.is_ok()).count();
                    return error_body(
                        "deadline-exceeded",
                        &format!(
                            "deadline elapsed during the sweep ({done} of {} points finished)",
                            rows.len()
                        ),
                    );
                }
                sweep_body("explore", &rows, None)
            }
            Request::Search(spec) => {
                let space = spec.sweep.space();
                let strategy = argo_search::parse_strategy(&spec.strategy)
                    .expect("strategy validated at parse time");
                let evaluations = spec
                    .budget
                    .unwrap_or(self.cfg.max_evaluations)
                    .min(self.cfg.max_evaluations);
                let mut budget = Budget::evaluations(evaluations);
                if let Some(stall) = spec.stall {
                    budget = budget.with_stall(stall);
                }
                let report = self.explorer.search(&space, &*strategy, budget);
                // The search loop owns its evaluation schedule, so the
                // deadline is checked on completion rather than per
                // stage.
                if token.is_tripped() {
                    self.deadlines.inc();
                    return error_body("deadline-exceeded", "deadline elapsed during the search");
                }
                let extra = format!(
                    "\"strategy\":\"{}\",\"lattice\":{},\"evaluated\":{},",
                    proto::esc(&spec.strategy),
                    space.len(),
                    report.rows.len()
                );
                sweep_body("search", &report.rows, Some(&extra))
            }
            Request::Stats | Request::Metrics | Request::Shutdown => {
                unreachable!("control requests answered inline")
            }
        }
    }

    /// The error body for a single-point row whose outcome is a
    /// *transient* infrastructure failure (deadline, isolated panic) —
    /// those travel as error frames, not `"ok":false` responses,
    /// because they say nothing about the design point itself.
    fn transient_error_body(&self, row: &ReportRow) -> Option<String> {
        match &row.outcome {
            Err(d) if d.code.is_transient() => {
                if d.code == argo_core::ErrorCode::DeadlineExceeded {
                    self.deadlines.inc();
                }
                Some(error_body(d.code.label(), &d.message))
            }
            _ => None,
        }
    }

    fn evaluate_one(
        &self,
        spec: &crate::proto::PointSpec,
        token: &CancelToken,
        obs: &TimingObserver,
        forward: Option<&dyn StageObserver>,
    ) -> ReportRow {
        let space = spec.space();
        let point = spec.point();
        let cancel = CancelObserver(token.clone());
        match forward {
            Some(fwd) => {
                let fanout = Fanout(fwd, obs);
                let chained = Fanout(&cancel, &fanout);
                self.explorer
                    .evaluate_point_observed(point, &space, &chained)
            }
            None => {
                let chained = Fanout(&cancel, obs);
                self.explorer
                    .evaluate_point_observed(point, &space, &chained)
            }
        }
    }

    /// Evaluates a whole space on this request's thread budget, with
    /// optional `done/total` progress frames (atomic progress slot: the
    /// workers bump a counter, one reporter thread polls and emits).
    fn evaluate_space(
        &self,
        space: &DesignSpace,
        id: u64,
        token: &CancelToken,
        obs: &TimingObserver,
        progress_writer: Option<&SharedWriter>,
    ) -> Vec<ReportRow> {
        let points = space.points();
        let total = points.len();
        let threads = self.cfg.eval_threads.max(1);
        let cancel = CancelObserver(token.clone());
        let eval = |point| {
            let chained = Fanout(&cancel, obs);
            self.explorer
                .evaluate_point_observed(point, space, &chained)
        };

        let Some(writer) = progress_writer else {
            return parallel_map(points, threads, &|_i, point| eval(point));
        };

        let done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let reporter = scope.spawn(|| {
                let mut last = usize::MAX;
                loop {
                    let now = done.load(Ordering::Acquire);
                    if now != last {
                        writer.line(&format!(
                            "{{\"frame\":\"progress\",\"id\":{id},\"done\":{now},\"total\":{total}}}"
                        ));
                        last = now;
                    }
                    if stop.load(Ordering::Acquire) && now == total {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            });
            let rows = parallel_map(points, threads, &|_i, point| {
                let row = eval(point);
                done.fetch_add(1, Ordering::Release);
                row
            });
            stop.store(true, Ordering::Release);
            let _ = reporter.join();
            rows
        })
    }

    fn stats_body(&self) -> String {
        let sessions = self.sessions.lock().unwrap();
        let active = sessions.len();
        drop(sessions);
        let queue_depth = self.queue.lock().unwrap().len();
        let c = &self.counters;
        let timing = self.stage_timings_total();
        let cache = self.explorer.cache_stats();
        let store = match self.explorer.store() {
            Some(store) => {
                let s = store.stats();
                let sc = s.counters;
                format!(
                    "{{\"entries\":{},\"bytes\":{},\"counters\":{{\"hits\":{},\"misses\":{},\
                     \"corrupt\":{},\"version_skew\":{},\"evictions\":{},\"write_errors\":{}}}}}",
                    s.entries,
                    s.bytes,
                    sc.hits,
                    sc.misses,
                    sc.corrupt,
                    sc.version_skew,
                    sc.evictions,
                    sc.write_errors
                )
            }
            None => "null".into(),
        };
        format!(
            "\"ok\":true,\"kind\":\"stats\",\"result\":{{\
             \"sessions\":{{\"active\":{},\"served\":{}}},\
             \"requests\":{{\"compile\":{},\"verify\":{},\"explore\":{},\"search\":{},\
             \"stats\":{},\"rejected\":{}}},\
             \"singleflight\":{{\"executed\":{},\"coalesced\":{},\"leader_failures\":{}}},\
             \"faults\":{{\"panics\":{},\"deadline_exceeded\":{}}},\
             \"queue\":{{\"depth\":{},\"limit\":{}}},\"workers\":{},\
             \"stages\":{{\"frontend_runs\":{},\"seed_cost_runs\":{},\"backend_runs\":{},\
             \"verify_runs\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"store_hits\":{},\"store_misses\":{},\
             \"point_store_hits\":{},\"point_store_misses\":{},\"combined_hit_rate\":{:.4}}},\
             \"store\":{}}}",
            active,
            self.served_total.load(Ordering::Relaxed),
            c.compile.load(Ordering::Relaxed),
            c.verify.load(Ordering::Relaxed),
            c.explore.load(Ordering::Relaxed),
            c.search.load(Ordering::Relaxed),
            c.stats.load(Ordering::Relaxed),
            c.rejected.load(Ordering::Relaxed),
            self.flight.executed(),
            self.flight.coalesced(),
            self.flight.leader_failures(),
            self.panics.get(),
            self.deadlines.get(),
            queue_depth,
            self.cfg.queue_limit,
            self.cfg.workers,
            timing.frontend.runs,
            timing.seed_costs.runs,
            timing.backend.runs,
            timing.verify.runs,
            cache.hits(),
            cache.misses(),
            cache.store_hits(),
            cache.store_misses(),
            cache.point_store_hits,
            cache.point_store_misses,
            cache.combined_hit_rate(),
            store
        )
    }

    /// The `metrics` response: Prometheus text exposition of the
    /// process-global registry (request latency, slow requests, the
    /// gated scheduler/WCET/executor metrics) concatenated with the
    /// backing store's per-handle registry, if any.
    fn metrics_body(&self) -> String {
        let mut text = argo_trace::metrics().prometheus();
        if let Some(store) = self.explorer.store() {
            text.push_str(&store.registry().prometheus());
        }
        format!(
            "\"ok\":true,\"kind\":\"metrics\",\"result\":{{\"prometheus\":\"{}\"}}",
            proto::esc(&text)
        )
    }
}

/// Renders the body of an error frame. Bodies with this shape (leading
/// `"error":`) are emitted as `"frame":"error"` by the response path —
/// the convention that lets a coalesced body carry its frame kind.
fn error_body(code: &str, message: &str) -> String {
    format!(
        "\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}",
        code,
        proto::esc(message)
    )
}

/// Renders a complete error frame (request never reached a worker).
fn protocol_error(id: u64, code: &str, message: &str) -> String {
    format!(
        "{{\"frame\":\"error\",\"id\":{},{}}}",
        id,
        error_body(code, message)
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Deterministic body for a one-point request.
fn point_body(
    kind: &str,
    row: &ReportRow,
    result: impl Fn(&argo_dse::PointMetrics) -> String,
) -> String {
    let label = proto::esc(&row.point.label());
    match &row.outcome {
        Ok(metrics) => format!(
            "\"ok\":true,\"kind\":\"{kind}\",\"result\":{{\"label\":\"{label}\",\
             \"spm_effective\":{},\"body\":{}}}",
            row.spm_effective,
            result(metrics)
        ),
        Err(diagnostic) => format!(
            "\"ok\":false,\"kind\":\"{kind}\",\"label\":\"{label}\",\"error\":{}",
            proto::diag_json(diagnostic)
        ),
    }
}

/// Deterministic body for a sweep/search: totals plus the Pareto set.
fn sweep_body(kind: &str, rows: &[ReportRow], extra: Option<&str>) -> String {
    let failures = rows.iter().filter(|r| r.outcome.is_err()).count();
    let objectives: Vec<_> = rows.iter().filter_map(ReportRow::objectives).collect();
    let succeeded: Vec<&ReportRow> = rows.iter().filter(|r| r.outcome.is_ok()).collect();
    let front = pareto_front(&objectives);
    let mut pareto = String::new();
    for (i, &idx) in front.iter().enumerate() {
        let row = succeeded[idx];
        let metrics = row.outcome.as_ref().expect("pareto rows succeeded");
        if i > 0 {
            pareto.push(',');
        }
        pareto.push_str(&format!(
            "{{\"label\":\"{}\",\"cores\":{},\"par_bound\":{},\"spm\":{},\"speedup\":{:.4}}}",
            proto::esc(&row.point.label()),
            row.point.cores,
            metrics.par_bound,
            row.spm_effective,
            metrics.speedup
        ));
    }
    format!(
        "\"ok\":true,\"kind\":\"{kind}\",\"result\":{{{}\"points\":{},\"failures\":{},\
         \"pareto\":[{}]}}",
        extra.unwrap_or(""),
        rows.len(),
        failures,
        pareto
    )
}
