//! Wire protocol: a minimal JSON reader/writer (std only, no deps) and
//! the typed request layer on top of it.
//!
//! Every request arrives as one JSON object on one line; every reply
//! frame leaves as one JSON object on one line (see the crate docs for
//! the frame reference). Requests are parsed into typed specs
//! ([`PointSpec`], [`SweepSpec`], [`SearchSpec`]) using the same label
//! vocabulary as the `argo-dse` CLI (`list|bnb|anneal`,
//! `loop|block|stmt`, `bus|noc`, `naive|static|windows`), and every
//! work request has a canonical [`Fingerprint`] over its *parsed*
//! fields — two requests that mean the same thing coalesce in the
//! single-flight layer no matter how their JSON was formatted.

use argo_core::{Diagnostic, Fingerprint, FingerprintHasher, SchedulerKind};
use argo_dse::space::{
    granularity_label, parse_granularity, parse_mhp, parse_scheduler, scheduler_label,
};
use argo_dse::{DesignSpace, ExplorationPoint, PlatformKind, PointMetrics};
use argo_htg::Granularity;
use argo_wcet::system::MhpMode;

/// A parsed JSON value. Objects preserve key order (the parser is for
/// requests, not for general documents — duplicate keys keep the last).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (requests only carry integers that fit an f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document, requiring full consumption.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Wire label of an MHP mode (the request vocabulary, which matches the
/// CLI labels rather than the longer `Display` forms).
pub fn mhp_label(mhp: MhpMode) -> &'static str {
    match mhp {
        MhpMode::Naive => "naive",
        MhpMode::Static => "static",
        MhpMode::Windows => "windows",
    }
}

/// One fully-specified point request (`compile` / `verify`).
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Use-case name resolved by the server's explorer.
    pub app: String,
    /// Platform family.
    pub platform: PlatformKind,
    /// Core count.
    pub cores: usize,
    /// Mapping/scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Task extraction granularity.
    pub granularity: Granularity,
    /// DOALL chunking on/off.
    pub chunk: bool,
    /// Per-core SPM override in bytes (`None` = platform default).
    pub spm: Option<u64>,
    /// MHP precision of the system-level analysis.
    pub mhp: MhpMode,
    /// Synthetic-input seed.
    pub seed: u64,
    /// Backend feedback rounds.
    pub rounds: u32,
}

impl PointSpec {
    /// The exploration point this spec describes.
    pub fn point(&self) -> ExplorationPoint {
        ExplorationPoint {
            app: self.app.clone(),
            platform: self.platform,
            cores: self.cores,
            scheduler: self.scheduler,
            granularity: self.granularity,
            chunk_loops: self.chunk,
            spm_bytes: self.spm,
            mhp: self.mhp,
        }
    }

    /// The one-point design space carrying the cross-point knobs.
    pub fn space(&self) -> DesignSpace {
        let mut space = DesignSpace::new().app(&self.app);
        space.mhp = self.mhp;
        space.feedback_rounds = self.rounds;
        space.seed = self.seed;
        space
    }

    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_str(&self.app)
            .write_str(self.platform.label())
            .write_u64(self.cores as u64)
            .write_str(scheduler_label(self.scheduler))
            .write_str(granularity_label(self.granularity))
            .write_bool(self.chunk);
        h.write_bool(self.spm.is_some());
        h.write_u64(self.spm.unwrap_or(0));
        h.write_str(mhp_label(self.mhp))
            .write_u64(self.seed)
            .write_u64(self.rounds as u64);
    }
}

/// A design-space request (`explore`): every axis is a list.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Use-case names.
    pub apps: Vec<String>,
    /// Platform families.
    pub platforms: Vec<PlatformKind>,
    /// Core counts.
    pub cores: Vec<usize>,
    /// Scheduler kinds.
    pub schedulers: Vec<SchedulerKind>,
    /// Task granularities.
    pub granularities: Vec<Granularity>,
    /// Chunking variants.
    pub chunking: Vec<bool>,
    /// SPM capacities (`None` = platform default).
    pub spms: Vec<Option<u64>>,
    /// MHP precision (single value).
    pub mhp: MhpMode,
    /// Synthetic-input seed.
    pub seed: u64,
    /// Backend feedback rounds.
    pub rounds: u32,
}

impl SweepSpec {
    /// The design space this spec describes.
    pub fn space(&self) -> DesignSpace {
        let mut space = DesignSpace::new();
        space.apps = self.apps.clone();
        space.platforms = self.platforms.clone();
        space.cores = self.cores.clone();
        space.schedulers = self.schedulers.clone();
        space.granularities = self.granularities.clone();
        space.chunking = self.chunking.clone();
        space.spm_capacities = self.spms.clone();
        space.mhp = self.mhp;
        space.feedback_rounds = self.rounds;
        space.seed = self.seed;
        space
    }

    fn feed(&self, h: &mut FingerprintHasher) {
        h.write_u64(self.apps.len() as u64);
        for app in &self.apps {
            h.write_str(app);
        }
        h.write_u64(self.platforms.len() as u64);
        for p in &self.platforms {
            h.write_str(p.label());
        }
        h.write_u64(self.cores.len() as u64);
        for &c in &self.cores {
            h.write_u64(c as u64);
        }
        h.write_u64(self.schedulers.len() as u64);
        for &s in &self.schedulers {
            h.write_str(scheduler_label(s));
        }
        h.write_u64(self.granularities.len() as u64);
        for &g in &self.granularities {
            h.write_str(granularity_label(g));
        }
        h.write_u64(self.chunking.len() as u64);
        for &c in &self.chunking {
            h.write_bool(c);
        }
        h.write_u64(self.spms.len() as u64);
        for &spm in &self.spms {
            h.write_bool(spm.is_some());
            h.write_u64(spm.unwrap_or(0));
        }
        h.write_str(mhp_label(self.mhp))
            .write_u64(self.seed)
            .write_u64(self.rounds as u64);
    }
}

/// A steered-search request (`search`): a sweep plus strategy/budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// The lattice to steer over.
    pub sweep: SweepSpec,
    /// Strategy label (`ga`, `anneal`, `halving`) — validated at parse
    /// time against `argo_search::parse_strategy`.
    pub strategy: String,
    /// Requested evaluation budget (`None` = the server's cap).
    pub budget: Option<usize>,
    /// Optional stall limit.
    pub stall: Option<usize>,
}

/// A typed request, parsed off the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile one point, reply with its metrics.
    Compile(PointSpec),
    /// Compile one point, reply with its verification verdict.
    Verify(PointSpec),
    /// Evaluate a whole design space.
    Explore(SweepSpec),
    /// Steered search over a design space.
    Search(SearchSpec),
    /// Server/session/cache/store counters.
    Stats,
    /// Prometheus text exposition of the daemon's metrics registries.
    Metrics,
    /// Clean server shutdown.
    Shutdown,
}

impl Request {
    /// Canonical fingerprint of a *work* request (the single-flight
    /// key): a hash over the parsed, typed fields — formatting, field
    /// order and ignored fields (`id`, `progress`) do not matter.
    /// `stats` and `shutdown` are not work requests and have no key.
    pub fn fingerprint(&self) -> Option<Fingerprint> {
        let mut h = FingerprintHasher::new();
        match self {
            Request::Compile(p) => {
                h.write_str("serve-compile");
                p.feed(&mut h);
            }
            Request::Verify(p) => {
                h.write_str("serve-verify");
                p.feed(&mut h);
            }
            Request::Explore(s) => {
                h.write_str("serve-explore");
                s.feed(&mut h);
            }
            Request::Search(s) => {
                h.write_str("serve-search");
                s.sweep.feed(&mut h);
                h.write_str(&s.strategy);
                h.write_bool(s.budget.is_some());
                h.write_u64(s.budget.unwrap_or(0) as u64);
                h.write_bool(s.stall.is_some());
                h.write_u64(s.stall.unwrap_or(0) as u64);
            }
            Request::Stats | Request::Metrics | Request::Shutdown => return None,
        }
        Some(h.finish())
    }

    /// The wire label of this request's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Compile(_) => "compile",
            Request::Verify(_) => "verify",
            Request::Explore(_) => "explore",
            Request::Search(_) => "search",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// The request envelope: client-chosen `id` (echoed on every frame for
/// this request), the progress flag, and the typed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client correlation id (defaults to 0).
    pub id: u64,
    /// Whether the client wants progress frames.
    pub progress: bool,
    /// The request itself.
    pub request: Request,
}

fn field_u64(obj: &Value, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_bool(obj: &Value, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn field_str<'v>(obj: &'v Value, key: &str, default: &'static str) -> Result<&'v str, String>
where
    'static: 'v,
{
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn field_spm(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be null or a non-negative integer")),
    }
}

fn point_spec(obj: &Value) -> Result<PointSpec, String> {
    Ok(PointSpec {
        app: field_str(obj, "app", "egpws")?.to_string(),
        platform: PlatformKind::parse(field_str(obj, "platform", "bus")?)?,
        cores: field_u64(obj, "cores", 4)? as usize,
        scheduler: parse_scheduler(field_str(obj, "scheduler", "list")?)?,
        granularity: parse_granularity(field_str(obj, "granularity", "loop")?)?,
        chunk: field_bool(obj, "chunk", true)?,
        spm: field_spm(obj, "spm")?,
        mhp: parse_mhp(field_str(obj, "mhp", "static")?)?,
        seed: field_u64(obj, "seed", 42)?,
        rounds: field_u64(obj, "rounds", 3)? as u32,
    })
}

fn list_of<T>(
    obj: &Value,
    key: &str,
    default: Vec<T>,
    mut one: impl FnMut(&Value) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Arr(items)) if !items.is_empty() => items.iter().map(&mut one).collect(),
        Some(Value::Arr(_)) => Err(format!("`{key}` must not be empty")),
        Some(_) => Err(format!("`{key}` must be an array")),
    }
}

fn sweep_spec(obj: &Value) -> Result<SweepSpec, String> {
    let str_item = |what: &'static str| {
        move |v: &Value| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{what}` entries must be strings"))
        }
    };
    Ok(SweepSpec {
        apps: list_of(obj, "apps", vec!["egpws".into()], str_item("apps"))?,
        platforms: list_of(obj, "platforms", vec![PlatformKind::Bus], |v| {
            PlatformKind::parse(v.as_str().ok_or("`platforms` entries must be strings")?)
        })?,
        cores: list_of(obj, "cores", vec![4], |v| {
            v.as_u64()
                .map(|c| c as usize)
                .ok_or_else(|| "`cores` entries must be integers".to_string())
        })?,
        schedulers: list_of(obj, "schedulers", vec![SchedulerKind::List], |v| {
            parse_scheduler(v.as_str().ok_or("`schedulers` entries must be strings")?)
        })?,
        granularities: list_of(obj, "granularities", vec![Granularity::Loop], |v| {
            parse_granularity(
                v.as_str()
                    .ok_or("`granularities` entries must be strings")?,
            )
        })?,
        chunking: list_of(obj, "chunking", vec![true], |v| {
            v.as_bool()
                .ok_or_else(|| "`chunking` entries must be booleans".to_string())
        })?,
        spms: list_of(obj, "spms", vec![None], |v| match v {
            Value::Null => Ok(None),
            v => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| "`spms` entries must be null or integers".to_string()),
        })?,
        mhp: parse_mhp(field_str(obj, "mhp", "static")?)?,
        seed: field_u64(obj, "seed", 42)?,
        rounds: field_u64(obj, "rounds", 3)? as u32,
    })
}

/// Parses one request line into its envelope.
///
/// # Errors
///
/// A human-readable message for malformed JSON, an unknown `kind`, or
/// a field that fails its typed parse (unknown scheduler label, …).
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let obj = Value::parse(line)?;
    if !matches!(obj, Value::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = field_u64(&obj, "id", 0)?;
    let progress = field_bool(&obj, "progress", false)?;
    let kind = obj
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing `kind`")?;
    let request = match kind {
        "compile" => Request::Compile(point_spec(&obj)?),
        "verify" => Request::Verify(point_spec(&obj)?),
        "explore" => Request::Explore(sweep_spec(&obj)?),
        "search" => {
            let strategy = field_str(&obj, "strategy", "ga")?.to_string();
            // Validate the label now so the error reaches the client
            // before the job is queued.
            argo_search::parse_strategy(&strategy)?;
            let budget = match obj.get("budget") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("`budget` must be a non-negative integer")?
                        as usize,
                ),
            };
            let stall = match obj.get("stall") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("`stall` must be a non-negative integer")? as usize)
                }
            };
            Request::Search(SearchSpec {
                sweep: sweep_spec(&obj)?,
                strategy,
                budget,
                stall,
            })
        }
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown kind `{other}`")),
    };
    Ok(Envelope {
        id,
        progress,
        request,
    })
}

/// Serializes a [`Diagnostic`] for the wire:
/// `{"stage": "...", "code": "...", "entity": ...|null, "message": "..."}`.
pub fn diag_json(d: &Diagnostic) -> String {
    let entity = match &d.entity {
        Some(e) => format!("\"{}\"", esc(e)),
        None => "null".into(),
    };
    format!(
        "{{\"stage\":\"{}\",\"code\":\"{}\",\"entity\":{},\"message\":\"{}\"}}",
        d.stage.label(),
        d.code.label(),
        entity,
        esc(&d.message)
    )
}

/// Serializes [`PointMetrics`] for the wire (all integer fields exact;
/// the speedup rounded to 4 decimals, deterministically).
pub fn metrics_json(m: &PointMetrics) -> String {
    format!(
        "{{\"tasks\":{},\"signals\":{},\"seq_bound\":{},\"par_bound\":{},\
         \"speedup\":{:.4},\"feedback_iterations\":{},\"verify_findings\":{}}}",
        m.tasks,
        m.signals,
        m.seq_bound,
        m.par_bound,
        m.speedup,
        m.feedback_iterations,
        m.verify_findings
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_parse() {
        let v = Value::parse(r#"{"a": [1, 2.5, null], "b": "x\ny", "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("{} extra").is_err());
        assert!(
            Value::parse(r#"{"u": "é"}"#)
                .unwrap()
                .get("u")
                .unwrap()
                .as_str()
                == Some("é")
        );
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = format!("{{\"s\": \"{}\"}}", esc(nasty));
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn compile_requests_parse_with_defaults() {
        let env = parse_request(r#"{"id": 7, "kind": "compile", "app": "weaa"}"#).unwrap();
        assert_eq!(env.id, 7);
        assert!(!env.progress);
        let Request::Compile(p) = &env.request else {
            panic!("not a compile request: {env:?}");
        };
        assert_eq!(p.app, "weaa");
        assert_eq!(p.cores, 4);
        assert_eq!(p.scheduler, SchedulerKind::List);
        assert_eq!(p.spm, None);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn fingerprints_are_canonical_over_formatting() {
        let a = parse_request(r#"{"kind":"compile","app":"egpws","cores":2}"#).unwrap();
        let b = parse_request(
            r#"{ "cores": 2, "app": "egpws", "kind": "compile", "id": 99, "progress": true }"#,
        )
        .unwrap();
        assert_eq!(a.request.fingerprint(), b.request.fingerprint());
        let c = parse_request(r#"{"kind":"compile","app":"egpws","cores":4}"#).unwrap();
        assert_ne!(a.request.fingerprint(), c.request.fingerprint());
        let d = parse_request(r#"{"kind":"verify","app":"egpws","cores":2}"#).unwrap();
        assert_ne!(a.request.fingerprint(), d.request.fingerprint());
    }

    #[test]
    fn sweep_requests_parse_axes() {
        let env = parse_request(
            r#"{"kind": "explore", "apps": ["egpws"], "cores": [1, 2],
                "schedulers": ["list", "anneal"], "spms": [null, 4096]}"#,
        )
        .unwrap();
        let Request::Explore(s) = &env.request else {
            panic!("not an explore request");
        };
        assert_eq!(s.cores, vec![1, 2]);
        assert_eq!(s.spms, vec![None, Some(4096)]);
        assert_eq!(s.space().len(), 8);
    }

    #[test]
    fn bad_requests_error_cleanly() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"kind": "frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"kind": "compile", "scheduler": "magic"}"#).is_err());
        assert!(parse_request(r#"{"kind": "search", "strategy": "dowsing"}"#).is_err());
        assert!(parse_request(r#"{"kind": "explore", "cores": []}"#).is_err());
        assert!(
            parse_request(r#"{"app": "egpws"}"#).is_err(),
            "kind required"
        );
    }

    #[test]
    fn stats_and_shutdown_have_no_work_fingerprint() {
        let m = parse_request(r#"{"kind": "metrics"}"#).unwrap();
        assert_eq!(m.request, Request::Metrics);
        assert_eq!(m.request.kind(), "metrics");
        assert_eq!(m.request.fingerprint(), None);
        let s = parse_request(r#"{"kind": "stats"}"#).unwrap();
        assert_eq!(s.request.fingerprint(), None);
        let d = parse_request(r#"{"kind": "shutdown"}"#).unwrap();
        assert_eq!(d.request.fingerprint(), None);
    }
}
