//! Single-flight request coalescing.
//!
//! When several clients ask for the same thing at the same time, only
//! one of them should pay for the pipeline — the rest wait on the
//! in-flight computation and reuse its (shared, immutable) result.
//! This is deduplication of *concurrent* work, not a cache: the slot
//! is removed as soon as the leader finishes, and the next identical
//! request after that is answered by the shared artifact store instead.
//!
//! Keyed by the request's canonical [`Fingerprint`]
//! (see [`crate::proto::Request::fingerprint`]), so two requests
//! coalesce exactly when their *parsed* content is identical —
//! formatting, field order and the client-side `id` do not matter.
//!
//! # Leader failure
//!
//! A slot carries an explicit tri-state (*pending* → *done* or
//! *failed*) instead of relying on mutex poisoning. If the leader's
//! `compute` panics, a drop-guard marks the slot *failed*, wakes every
//! follower, and retires the slot before the panic resumes unwinding.
//! Followers then get [`LeaderFailed`] — a clean, structured signal they
//! can turn into an error frame — and the *next* identical request
//! starts fresh with a new leader. Nothing is ever poisoned.

use argo_core::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The follower-visible outcome when the leader of a coalesced
/// computation panicked before publishing a result.
///
/// Followers cannot retry in place (their request context lives up the
/// stack), so they surface this as a `leader-failed` error frame; the
/// client may simply resend, and the resent request elects a fresh
/// leader because the failed slot was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderFailed;

impl std::fmt::Display for LeaderFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("single-flight leader panicked before publishing a result")
    }
}

/// Lifecycle of one in-flight computation.
enum SlotState {
    /// The leader is still computing; followers park on the condvar.
    Pending,
    /// The leader published this result; followers share the bytes.
    Done(Arc<str>),
    /// The leader panicked; followers get [`LeaderFailed`].
    Failed,
}

/// One in-flight computation: the leader moves `state` out of
/// [`SlotState::Pending`] and wakes the followers parked on `ready`.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Retires the leader's slot no matter how the leader exits.
///
/// Constructed *before* `compute` runs; on normal completion the leader
/// disarms it with [`publish`](SlotGuard::publish). If the guard drops
/// armed (the leader is unwinding), it marks the slot [`SlotState::Failed`],
/// wakes the followers, and removes the slot from the flight table so a
/// fresh request elects a new leader.
struct SlotGuard<'a> {
    flight: &'a SingleFlight,
    key: u64,
    slot: &'a Arc<Slot>,
    armed: bool,
}

impl SlotGuard<'_> {
    fn publish(mut self, value: &Arc<str>) {
        self.armed = false;
        *self.slot.state.lock().unwrap() = SlotState::Done(Arc::clone(value));
        self.slot.ready.notify_all();
        self.flight.inflight.lock().unwrap().remove(&self.key);
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.flight.leader_failures.fetch_add(1, Ordering::Relaxed);
        *self.slot.state.lock().unwrap() = SlotState::Failed;
        self.slot.ready.notify_all();
        self.flight.inflight.lock().unwrap().remove(&self.key);
    }
}

/// Coalesces concurrent identical computations onto one worker.
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    executed: AtomicU64,
    coalesced: AtomicU64,
    leader_failures: AtomicU64,
}

impl SingleFlight {
    /// An empty flight table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Runs `compute` for `key`, unless an identical computation is
    /// already in flight — then blocks until that one finishes and
    /// returns its result instead. The returned `Arc<str>` is shared:
    /// followers get the exact bytes the leader produced.
    ///
    /// # Errors
    ///
    /// Returns [`LeaderFailed`] on a *follower* whose leader panicked
    /// before publishing. The leader itself never sees this error — its
    /// panic resumes unwinding out of this call after the slot is
    /// retired, so callers that isolate panics (the daemon wraps
    /// `compute` in `catch_unwind`) keep working and later identical
    /// requests elect a fresh leader.
    pub fn run(
        &self,
        key: Fingerprint,
        compute: impl FnOnce() -> String,
    ) -> Result<Arc<str>, LeaderFailed> {
        let slot = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key.0) {
                Some(slot) => {
                    // Follower: wait for the in-flight leader.
                    let slot = Arc::clone(slot);
                    drop(inflight);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut state = slot.state.lock().unwrap();
                    loop {
                        match &*state {
                            SlotState::Pending => state = slot.ready.wait(state).unwrap(),
                            SlotState::Done(value) => return Ok(Arc::clone(value)),
                            SlotState::Failed => return Err(LeaderFailed),
                        }
                    }
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                    });
                    inflight.insert(key.0, Arc::clone(&slot));
                    slot
                }
            }
        };

        // Leader: compute, publish, wake followers, retire the slot.
        // The guard retires the slot even if `compute` panics.
        self.executed.fetch_add(1, Ordering::Relaxed);
        let guard = SlotGuard {
            flight: self,
            key: key.0,
            slot: &slot,
            armed: true,
        };
        let value: Arc<str> = Arc::from(compute());
        guard.publish(&value);
        Ok(value)
    }

    /// Computations actually executed (leaders).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests that waited on an in-flight leader instead of
    /// executing (followers).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Leaders that panicked before publishing; each one handed its
    /// followers a [`LeaderFailed`] instead of a result.
    pub fn leader_failures(&self) -> u64 {
        self.leader_failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn sequential_runs_each_execute() {
        let flight = SingleFlight::new();
        let a = flight.run(Fingerprint(1), || "a".to_string()).unwrap();
        let b = flight.run(Fingerprint(1), || "b".to_string()).unwrap();
        assert_eq!(&*a, "a");
        assert_eq!(&*b, "b", "retired slots do not cache");
        assert_eq!(flight.executed(), 2);
        assert_eq!(flight.coalesced(), 0);
    }

    #[test]
    fn concurrent_identical_runs_coalesce() {
        const M: usize = 8;
        let flight = SingleFlight::new();
        let computed = AtomicUsize::new(0);
        let gate = Barrier::new(M);
        let results: Vec<Arc<str>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..M)
                .map(|_| {
                    s.spawn(|| {
                        gate.wait();
                        flight
                            .run(Fingerprint(7), || {
                                // Hold the slot long enough for every
                                // follower to park on it.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                computed.fetch_add(1, Ordering::Relaxed);
                                "result".to_string()
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| &**r == "result"));
        // All M calls are accounted as leader or follower; the 50ms
        // hold makes coalescing overwhelmingly likely but the invariant
        // holds regardless of timing.
        assert_eq!(flight.executed() + flight.coalesced(), M as u64);
        assert_eq!(computed.load(Ordering::Relaxed) as u64, flight.executed());
        assert!(flight.executed() >= 1);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight = SingleFlight::new();
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let flight = &flight;
                s.spawn(move || flight.run(Fingerprint(k), || k.to_string()).unwrap());
            }
        });
        assert_eq!(flight.executed(), 4);
        assert_eq!(flight.coalesced(), 0);
    }

    /// A panicking leader hands every parked follower a structured
    /// [`LeaderFailed`] (not a poisoned-mutex panic), and the *next*
    /// identical request elects a fresh leader and succeeds.
    #[test]
    fn leader_panic_fails_followers_cleanly_and_slot_recovers() {
        const FOLLOWERS: usize = 4;
        let flight = SingleFlight::new();
        let leader_in = Barrier::new(2);
        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flight.run(Fingerprint(9), || {
                        leader_in.wait();
                        // Give the followers time to park on the slot.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader exploded mid-compute");
                    })
                }))
            });
            leader_in.wait();
            let followers: Vec<_> = (0..FOLLOWERS)
                .map(|_| s.spawn(|| flight.run(Fingerprint(9), || "late".to_string())))
                .collect();
            assert!(leader.join().unwrap().is_err(), "panic reaches the leader");
            for f in followers {
                match f.join().unwrap() {
                    Err(LeaderFailed) => {}
                    Ok(v) => {
                        // A follower that raced in after slot retirement
                        // became a fresh leader — also a clean outcome.
                        assert_eq!(&*v, "late");
                    }
                }
            }
        });
        assert_eq!(flight.leader_failures(), 1);
        // The failed slot was retired: a fresh request computes anew.
        let fresh = flight.run(Fingerprint(9), || "fresh".to_string()).unwrap();
        assert_eq!(&*fresh, "fresh");
    }

    /// Back-to-back panics never wedge the table: each failure retires
    /// its slot, so sequential retries keep electing fresh leaders.
    #[test]
    fn repeated_leader_panics_never_poison() {
        let flight = SingleFlight::new();
        for _ in 0..3 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                flight.run(Fingerprint(2), || panic!("boom"))
            }));
            assert!(r.is_err());
        }
        assert_eq!(flight.leader_failures(), 3);
        let ok = flight.run(Fingerprint(2), || "ok".to_string()).unwrap();
        assert_eq!(&*ok, "ok");
    }
}
