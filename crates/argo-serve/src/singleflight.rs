//! Single-flight request coalescing.
//!
//! When several clients ask for the same thing at the same time, only
//! one of them should pay for the pipeline — the rest wait on the
//! in-flight computation and reuse its (shared, immutable) result.
//! This is deduplication of *concurrent* work, not a cache: the slot
//! is removed as soon as the leader finishes, and the next identical
//! request after that is answered by the shared artifact store instead.
//!
//! Keyed by the request's canonical [`Fingerprint`]
//! (see [`crate::proto::Request::fingerprint`]), so two requests
//! coalesce exactly when their *parsed* content is identical —
//! formatting, field order and the client-side `id` do not matter.

use argo_core::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight computation: the leader fills `result` and wakes the
/// followers parked on `ready`.
struct Slot {
    result: Mutex<Option<Arc<str>>>,
    ready: Condvar,
}

/// Coalesces concurrent identical computations onto one worker.
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    executed: AtomicU64,
    coalesced: AtomicU64,
}

impl SingleFlight {
    /// An empty flight table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Runs `compute` for `key`, unless an identical computation is
    /// already in flight — then blocks until that one finishes and
    /// returns its result instead. The returned `Arc<str>` is shared:
    /// followers get the exact bytes the leader produced.
    ///
    /// If the leader's `compute` panics, the poisoned slot mutex makes
    /// the followers panic too (a panic here is a server bug, not a
    /// request error — request failures travel as error *frames*
    /// inside the computed string, and are shared like any result).
    pub fn run(&self, key: Fingerprint, compute: impl FnOnce() -> String) -> Arc<str> {
        let slot = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&key.0) {
                Some(slot) => {
                    // Follower: wait for the in-flight leader.
                    let slot = Arc::clone(slot);
                    drop(inflight);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut result = slot.result.lock().unwrap();
                    while result.is_none() {
                        result = slot.ready.wait(result).unwrap();
                    }
                    return Arc::clone(result.as_ref().unwrap());
                }
                None => {
                    let slot = Arc::new(Slot {
                        result: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    inflight.insert(key.0, Arc::clone(&slot));
                    slot
                }
            }
        };

        // Leader: compute, publish, wake followers, retire the slot.
        self.executed.fetch_add(1, Ordering::Relaxed);
        let value: Arc<str> = Arc::from(compute());
        *slot.result.lock().unwrap() = Some(Arc::clone(&value));
        slot.ready.notify_all();
        self.inflight.lock().unwrap().remove(&key.0);
        value
    }

    /// Computations actually executed (leaders).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests that waited on an in-flight leader instead of
    /// executing (followers).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn sequential_runs_each_execute() {
        let flight = SingleFlight::new();
        let a = flight.run(Fingerprint(1), || "a".to_string());
        let b = flight.run(Fingerprint(1), || "b".to_string());
        assert_eq!(&*a, "a");
        assert_eq!(&*b, "b", "retired slots do not cache");
        assert_eq!(flight.executed(), 2);
        assert_eq!(flight.coalesced(), 0);
    }

    #[test]
    fn concurrent_identical_runs_coalesce() {
        const M: usize = 8;
        let flight = SingleFlight::new();
        let computed = AtomicUsize::new(0);
        let gate = Barrier::new(M);
        let results: Vec<Arc<str>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..M)
                .map(|_| {
                    s.spawn(|| {
                        gate.wait();
                        flight.run(Fingerprint(7), || {
                            // Hold the slot long enough for every
                            // follower to park on it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            computed.fetch_add(1, Ordering::Relaxed);
                            "result".to_string()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| &**r == "result"));
        // All M calls are accounted as leader or follower; the 50ms
        // hold makes coalescing overwhelmingly likely but the invariant
        // holds regardless of timing.
        assert_eq!(flight.executed() + flight.coalesced(), M as u64);
        assert_eq!(computed.load(Ordering::Relaxed) as u64, flight.executed());
        assert!(flight.executed() >= 1);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight = SingleFlight::new();
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let flight = &flight;
                s.spawn(move || flight.run(Fingerprint(k), || k.to_string()));
            }
        });
        assert_eq!(flight.executed(), 4);
        assert_eq!(flight.coalesced(), 0);
    }
}
