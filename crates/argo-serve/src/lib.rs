//! `argo-serve` — a long-running daemon serving the ARGO toolflow to
//! concurrent clients over a JSON-lines wire protocol.
//!
//! A compile server for WCET-aware parallelization: instead of paying
//! the full pipeline per CLI invocation, clients connect to one daemon
//! that keeps the three-tier artifact cache warm, coalesces concurrent
//! identical requests ([`SingleFlight`]) and shares one persistent
//! [`argo_store`] directory across every session — a warm store
//! answers a repeated request with zero pipeline stages.
//!
//! # Transport
//!
//! TCP or a Unix domain socket. Each direction carries one JSON object
//! per `\n`-terminated line; no framing beyond that. A connection is a
//! *session*: requests on it may be pipelined, and each carries a
//! client-chosen `id` echoed on every frame emitted for it.
//!
//! # Request frames (client → server)
//!
//! ```text
//! {"id": N, "kind": "...", "progress": bool, ...kind-specific fields}
//! ```
//!
//! | `kind`     | fields | reply |
//! |------------|--------|-------|
//! | `compile`  | point spec (below) | point metrics |
//! | `verify`   | point spec | verification verdict |
//! | `explore`  | sweep spec (below) | totals + Pareto front |
//! | `search`   | sweep spec + `strategy`, `budget`, `stall` | totals + Pareto front |
//! | `stats`    | — | server/session/cache/store counters |
//! | `metrics`  | — | Prometheus text exposition (below) |
//! | `shutdown` | — | `ok`, then the daemon exits |
//!
//! **Point spec** (`compile`/`verify`; all fields optional, defaults in
//! parens): `app` (`"egpws"`), `platform` `bus|noc` (`bus`), `cores`
//! (4), `scheduler` `list|bnb|anneal` (`list`), `granularity`
//! `loop|block|stmt` (`loop`), `chunk` (true), `spm` bytes or null
//! (null = platform default), `mhp` `naive|static|windows` (`static`),
//! `seed` (42), `rounds` (3).
//!
//! **Sweep spec** (`explore`/`search`): the same axes pluralized as
//! arrays — `apps`, `platforms`, `cores`, `schedulers`,
//! `granularities`, `chunking`, `spms` — plus scalar `mhp`, `seed`,
//! `rounds`. Omitted axes default to one-element lists matching the
//! point-spec defaults.
//!
//! # Reply frames (server → client)
//!
//! Terminal frame, exactly one per request — either a response:
//!
//! ```text
//! {"frame":"response","id":N,"ok":true,"kind":"compile","result":{...}}
//! {"frame":"response","id":N,"ok":false,"kind":"compile","label":"...",
//!  "error":{"stage":"...","code":"...","entity":...,"message":"..."}}
//! ```
//!
//! or a protocol error (the request never reached the pipeline):
//!
//! ```text
//! {"frame":"error","id":N,"error":{"code":"bad-request|over-capacity|space-too-large",
//!  "message":"..."}}
//! ```
//!
//! Pipeline failures are `"ok":false` responses carrying the toolflow's
//! structured [`Diagnostic`](argo_core::Diagnostic) (stage / code /
//! entity / message); protocol errors are admission failures. Response
//! bodies are deterministic — no timestamps, ids or timings — so
//! coalesced requests share the leader's bytes and a warm-store replay
//! is byte-identical to the cold run.
//!
//! Before the terminal frame, a request sent with `"progress": true`
//! streams progress frames. For point requests these mirror the
//! session's [`StageObserver`](argo_core::StageObserver) events,
//! stamped with the per-session monotonic `seq`:
//!
//! ```text
//! {"frame":"progress","id":N,"seq":S,"event":"start","stage":"frontend"}
//! {"frame":"progress","id":N,"seq":S,"event":"finish","stage":"backend",
//!  "detail":"...","elapsed_us":U,"fingerprint":"0123456789abcdef"}
//! {"frame":"progress","id":N,"seq":S,"event":"error","stage":"...","error":{...}}
//! {"frame":"progress","id":N,"seq":S,"event":"feedback","round":R,"makespan":M}
//! ```
//!
//! `seq` is strictly increasing in emission order within one pipeline
//! run, so a client can restore order and spot gaps. A point answered
//! from the store's archive emits *no* stage frames — silence before
//! the response is the signature of a hot hit. Sweeps report coarser
//! progress, one frame per change of the done-counter:
//!
//! ```text
//! {"frame":"progress","id":N,"done":D,"total":T}
//! ```
//!
//! Only the request that actually executes streams progress; a request
//! coalesced onto another's in-flight execution gets the response body
//! without frames.
//!
//! # The `metrics` request
//!
//! `{"id": N, "kind": "metrics"}` is a control request, answered
//! inline like `stats`:
//!
//! ```text
//! {"frame":"response","id":N,"ok":true,"kind":"metrics",
//!  "result":{"prometheus":"# TYPE argo_serve_request_latency_us histogram\n..."}}
//! ```
//!
//! The `prometheus` field is the standard text exposition format
//! (JSON-escaped, `\n`-separated) over two registries: the
//! process-global [`argo_trace::metrics`] registry — per-kind request
//! latency histograms `argo_serve_request_latency_us{kind="compile"}`
//! …, `argo_serve_slow_requests_total`, and whatever the gated
//! scheduler/WCET/executor instrumentation published — concatenated
//! with the backing store's per-handle registry (`argo_store_*`
//! counters and get/put latency histograms), when a store is
//! configured. See the `argo_trace` crate docs for the full
//! metric-name → subsystem table.
//!
//! ```
//! use argo_serve::{Client, Listener, ServeConfig, Server, Value};
//!
//! let listener = Listener::tcp("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, argo_dse::Explorer::with_threads(1),
//!                            ServeConfig::default()).unwrap();
//! let mut client = Client::connect_tcp(server.addr()).unwrap();
//!
//! // Do some work, then scrape.
//! client.request(r#"{"id": 1, "kind": "compile", "app": "egpws"}"#).unwrap();
//! let reply = client.request(r#"{"id": 2, "kind": "metrics"}"#).unwrap();
//! let frame = Value::parse(&reply.terminal).unwrap();
//! let text = frame.get("result").unwrap().get("prometheus").unwrap()
//!     .as_str().unwrap().to_string();
//! assert!(text.contains("argo_serve_request_latency_us"));
//!
//! client.request(r#"{"id": 3, "kind": "shutdown"}"#).unwrap();
//! server.join();
//! ```
//!
//! # Quickstart
//!
//! Boot a daemon and talk to it (see `examples/serve_client.rs` for
//! the same flow against an external daemon):
//!
//! ```
//! use argo_serve::{Client, Listener, ServeConfig, Server};
//!
//! let listener = Listener::tcp("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, argo_dse::Explorer::with_threads(1),
//!                            ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect_tcp(server.addr()).unwrap();
//! let reply = client
//!     .request(r#"{"id": 1, "kind": "compile", "app": "egpws", "cores": 2}"#)
//!     .unwrap();
//! assert!(reply.is_ok());
//!
//! client.request(r#"{"id": 2, "kind": "shutdown"}"#).unwrap();
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod singleflight;

pub use client::{Client, Reply};
pub use proto::{parse_request, Envelope, PointSpec, Request, SearchSpec, SweepSpec, Value};
pub use server::{Listener, ServeConfig, Server, ServerHandle};
pub use singleflight::SingleFlight;
