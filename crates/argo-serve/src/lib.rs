//! `argo-serve` — a long-running daemon serving the ARGO toolflow to
//! concurrent clients over a JSON-lines wire protocol.
//!
//! A compile server for WCET-aware parallelization: instead of paying
//! the full pipeline per CLI invocation, clients connect to one daemon
//! that keeps the three-tier artifact cache warm, coalesces concurrent
//! identical requests ([`SingleFlight`]) and shares one persistent
//! [`argo_store`] directory across every session — a warm store
//! answers a repeated request with zero pipeline stages.
//!
//! # Transport
//!
//! TCP or a Unix domain socket. Each direction carries one JSON object
//! per `\n`-terminated line; no framing beyond that. A connection is a
//! *session*: requests on it may be pipelined, and each carries a
//! client-chosen `id` echoed on every frame emitted for it.
//!
//! # Request frames (client → server)
//!
//! ```text
//! {"id": N, "kind": "...", "progress": bool, ...kind-specific fields}
//! ```
//!
//! | `kind`     | fields | reply |
//! |------------|--------|-------|
//! | `compile`  | point spec (below) | point metrics |
//! | `verify`   | point spec | verification verdict |
//! | `explore`  | sweep spec (below) | totals + Pareto front |
//! | `search`   | sweep spec + `strategy`, `budget`, `stall` | totals + Pareto front |
//! | `stats`    | — | server/session/cache/store counters |
//! | `metrics`  | — | Prometheus text exposition (below) |
//! | `shutdown` | — | `ok`, then the daemon exits |
//!
//! **Point spec** (`compile`/`verify`; all fields optional, defaults in
//! parens): `app` (`"egpws"`), `platform` `bus|noc` (`bus`), `cores`
//! (4), `scheduler` `list|bnb|anneal` (`list`), `granularity`
//! `loop|block|stmt` (`loop`), `chunk` (true), `spm` bytes or null
//! (null = platform default), `mhp` `naive|static|windows` (`static`),
//! `seed` (42), `rounds` (3).
//!
//! **Sweep spec** (`explore`/`search`): the same axes pluralized as
//! arrays — `apps`, `platforms`, `cores`, `schedulers`,
//! `granularities`, `chunking`, `spms` — plus scalar `mhp`, `seed`,
//! `rounds`. Omitted axes default to one-element lists matching the
//! point-spec defaults.
//!
//! # Reply frames (server → client)
//!
//! Terminal frame, exactly one per request — either a response:
//!
//! ```text
//! {"frame":"response","id":N,"ok":true,"kind":"compile","result":{...}}
//! {"frame":"response","id":N,"ok":false,"kind":"compile","label":"...",
//!  "error":{"stage":"...","code":"...","entity":...,"message":"..."}}
//! ```
//!
//! or an error frame:
//!
//! ```text
//! {"frame":"error","id":N,"error":{"code":"...","message":"..."}}
//! ```
//!
//! Error frames carry one of these codes:
//!
//! | code | meaning | resend? |
//! |------|---------|---------|
//! | `bad-request` | the line did not parse as a request | no |
//! | `over-capacity` | admission queue full | later |
//! | `space-too-large` | explore/search space over `max_points` | no |
//! | `shutting-down` | daemon is draining; no new work accepted | to a fresh instance |
//! | `deadline-exceeded` | per-request deadline (measured from admission) elapsed, in queue or at a stage boundary | yes — nothing was memoized |
//! | `internal-error` | request execution panicked; the panic was isolated to this request | yes, once |
//! | `leader-failed` | this request coalesced onto a leader that panicked | yes — a resend elects a fresh leader |
//!
//! Pipeline failures are `"ok":false` responses carrying the toolflow's
//! structured [`Diagnostic`](argo_core::Diagnostic) (stage / code /
//! entity / message) — they are deterministic verdicts about the design
//! point. Error frames are the *infrastructure* talking: admission
//! refusals and the transient outcomes above. Transient outcomes are
//! never memoized or archived by the lower tiers, so a resend after a
//! `deadline-exceeded`, `internal-error` or `leader-failed` frame
//! recomputes from clean state. Response bodies are deterministic — no
//! timestamps, ids or timings — so coalesced requests share the
//! leader's bytes and a warm-store replay is byte-identical to the
//! cold run.
//!
//! # Retries and idempotency
//!
//! Requests are idempotent by construction: work is keyed by the
//! request's canonical fingerprint, bodies are deterministic in the
//! request content, and store writes are atomic and content-addressed,
//! so resending a line can never double-apply anything. The bundled
//! [`RetryClient`] exploits this — on a *transport* failure (connect
//! refused, send failure, connection dropped mid-reply) it reconnects
//! and resends with capped exponential backoff and decorrelated
//! jitter. Error frames are terminal and are not retried by the
//! client; the table above says which ones are worth resending at the
//! application level.
//!
//! # Graceful shutdown
//!
//! A `shutdown` request (or [`ServerHandle::shutdown`]) begins a
//! *drain*: queued and executing work runs to completion and every
//! response is delivered, while newly arriving work requests are
//! rejected with a `shutting-down` error frame (control requests are
//! still answered). Workers exit once the queue is empty;
//! [`ServerHandle::join`] returns when the drain is complete. Because
//! the store's writes are atomic, even a `kill -9` instead of a drain
//! loses at most in-flight responses — never stored artifacts; a
//! restarted daemon warm-starts from the same store directory and
//! replays answered requests byte-identically.
//!
//! Before the terminal frame, a request sent with `"progress": true`
//! streams progress frames. For point requests these mirror the
//! session's [`StageObserver`](argo_core::StageObserver) events,
//! stamped with the per-session monotonic `seq`:
//!
//! ```text
//! {"frame":"progress","id":N,"seq":S,"event":"start","stage":"frontend"}
//! {"frame":"progress","id":N,"seq":S,"event":"finish","stage":"backend",
//!  "detail":"...","elapsed_us":U,"fingerprint":"0123456789abcdef"}
//! {"frame":"progress","id":N,"seq":S,"event":"error","stage":"...","error":{...}}
//! {"frame":"progress","id":N,"seq":S,"event":"feedback","round":R,"makespan":M}
//! ```
//!
//! `seq` is strictly increasing in emission order within one pipeline
//! run, so a client can restore order and spot gaps. A point answered
//! from the store's archive emits *no* stage frames — silence before
//! the response is the signature of a hot hit. Sweeps report coarser
//! progress, one frame per change of the done-counter:
//!
//! ```text
//! {"frame":"progress","id":N,"done":D,"total":T}
//! ```
//!
//! Only the request that actually executes streams progress; a request
//! coalesced onto another's in-flight execution gets the response body
//! without frames.
//!
//! # The `metrics` request
//!
//! `{"id": N, "kind": "metrics"}` is a control request, answered
//! inline like `stats`:
//!
//! ```text
//! {"frame":"response","id":N,"ok":true,"kind":"metrics",
//!  "result":{"prometheus":"# TYPE argo_serve_request_latency_us histogram\n..."}}
//! ```
//!
//! The `prometheus` field is the standard text exposition format
//! (JSON-escaped, `\n`-separated) over two registries: the
//! process-global [`argo_trace::metrics`] registry — per-kind request
//! latency histograms `argo_serve_request_latency_us{kind="compile"}`
//! …, `argo_serve_slow_requests_total`, and whatever the gated
//! scheduler/WCET/executor instrumentation published — concatenated
//! with the backing store's per-handle registry (`argo_store_*`
//! counters and get/put latency histograms), when a store is
//! configured. See the `argo_trace` crate docs for the full
//! metric-name → subsystem table.
//!
//! ```
//! use argo_serve::{Client, Listener, ServeConfig, Server, Value};
//!
//! let listener = Listener::tcp("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, argo_dse::Explorer::with_threads(1),
//!                            ServeConfig::default()).unwrap();
//! let mut client = Client::connect_tcp(server.addr()).unwrap();
//!
//! // Do some work, then scrape.
//! client.request(r#"{"id": 1, "kind": "compile", "app": "egpws"}"#).unwrap();
//! let reply = client.request(r#"{"id": 2, "kind": "metrics"}"#).unwrap();
//! let frame = Value::parse(&reply.terminal).unwrap();
//! let text = frame.get("result").unwrap().get("prometheus").unwrap()
//!     .as_str().unwrap().to_string();
//! assert!(text.contains("argo_serve_request_latency_us"));
//!
//! client.request(r#"{"id": 3, "kind": "shutdown"}"#).unwrap();
//! server.join();
//! ```
//!
//! # Quickstart
//!
//! Boot a daemon and talk to it (see `examples/serve_client.rs` for
//! the same flow against an external daemon):
//!
//! ```
//! use argo_serve::{Client, Listener, ServeConfig, Server};
//!
//! let listener = Listener::tcp("127.0.0.1:0").unwrap();
//! let server = Server::start(listener, argo_dse::Explorer::with_threads(1),
//!                            ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect_tcp(server.addr()).unwrap();
//! let reply = client
//!     .request(r#"{"id": 1, "kind": "compile", "app": "egpws", "cores": 2}"#)
//!     .unwrap();
//! assert!(reply.is_ok());
//!
//! client.request(r#"{"id": 2, "kind": "shutdown"}"#).unwrap();
//! server.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod singleflight;

pub use client::{Client, Reply, RetryClient, RetryPolicy};
pub use proto::{parse_request, Envelope, PointSpec, Request, SearchSpec, SweepSpec, Value};
pub use server::{Listener, ServeConfig, Server, ServerHandle};
pub use singleflight::{LeaderFailed, SingleFlight};
