//! `argo-serve` — the toolflow daemon.
//!
//! ```sh
//! argo-serve --listen 127.0.0.1:4100 --store .argo-store
//! argo-serve --socket /tmp/argo.sock --workers 8
//! ```
//!
//! Runs until a client sends `{"kind": "shutdown"}`. See the crate
//! docs (`argo_serve`) for the wire protocol.

use argo_serve::{Listener, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "argo-serve — concurrent toolflow daemon

USAGE:
    argo-serve --listen ADDR | --socket PATH [OPTIONS]

OPTIONS:
    --listen ADDR        bind a TCP listener (e.g. 127.0.0.1:4100)
    --socket PATH        bind a Unix domain socket instead
    --store DIR          back the artifact cache with a persistent store
    --workers N          worker threads (default 4)
    --queue N            admission queue limit (default 64)
    --max-points N       largest explore space accepted (default 256)
    --max-evals N        search evaluation budget cap (default 256)
    --eval-threads N     threads per explore/search request (default 2)
    --slow-ms N          log requests slower than N ms to stderr
    --deadline-ms N      per-request deadline from admission; expired
                         requests get a deadline-exceeded error frame
    --trace PATH         record spans; write a Chrome trace-event JSON
                         there on shutdown (flame summary to stderr)
    --help               this text
";

struct Options {
    listen: Option<String>,
    socket: Option<String>,
    store: Option<String>,
    trace: Option<String>,
    cfg: ServeConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        listen: None,
        socket: None,
        store: None,
        trace: None,
        cfg: ServeConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        let parse_n = |v: &str, flag: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("bad {flag} value `{v}`"))
        };
        match flag.as_str() {
            "--listen" => opts.listen = Some(value()?.to_string()),
            "--socket" => opts.socket = Some(value()?.to_string()),
            "--store" => opts.store = Some(value()?.to_string()),
            "--workers" => opts.cfg.workers = parse_n(value()?, "--workers")?.max(1),
            "--queue" => opts.cfg.queue_limit = parse_n(value()?, "--queue")?.max(1),
            "--max-points" => opts.cfg.max_points = parse_n(value()?, "--max-points")?.max(1),
            "--max-evals" => opts.cfg.max_evaluations = parse_n(value()?, "--max-evals")?.max(1),
            "--eval-threads" => opts.cfg.eval_threads = parse_n(value()?, "--eval-threads")?.max(1),
            "--slow-ms" => opts.cfg.slow_request_ms = Some(parse_n(value()?, "--slow-ms")? as u64),
            "--deadline-ms" => {
                opts.cfg.deadline_ms = Some(parse_n(value()?, "--deadline-ms")?.max(1) as u64)
            }
            "--trace" => opts.trace = Some(value()?.to_string()),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if opts.listen.is_some() == opts.socket.is_some() {
        return Err(format!(
            "need exactly one of --listen or --socket\n\n{USAGE}"
        ));
    }
    Ok(opts)
}

fn run(opts: Options) -> Result<(), String> {
    if opts.trace.is_some() {
        argo_trace::enable_spans();
        argo_trace::enable_metrics();
    }
    let listener = match (&opts.listen, &opts.socket) {
        (Some(addr), None) => Listener::tcp(addr).map_err(|e| format!("binding {addr}: {e}"))?,
        (None, Some(path)) => {
            #[cfg(unix)]
            {
                Listener::unix(path).map_err(|e| format!("binding {path}: {e}"))?
            }
            #[cfg(not(unix))]
            {
                return Err(format!("--socket {path} is only supported on Unix"));
            }
        }
        _ => unreachable!("validated in parse_args"),
    };

    let mut explorer = argo_dse::Explorer::new();
    if let Some(dir) = &opts.store {
        let store = argo_store::Store::open(dir).map_err(|e| format!("opening {dir}: {e}"))?;
        explorer = explorer.with_store(Arc::new(store));
    }

    let server =
        Server::start(listener, explorer, opts.cfg).map_err(|e| format!("starting server: {e}"))?;
    eprintln!("argo-serve: listening on {}", server.addr());
    server.join();
    if let Some(path) = &opts.trace {
        argo_trace::write_chrome_trace(argo_trace::global(), std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprint!(
            "{}",
            argo_trace::flame_summary(&argo_trace::global().snapshot(), 12)
        );
    }
    eprintln!("argo-serve: shut down");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("argo-serve: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse() {
        let o = parse_args(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--store",
            "/tmp/s",
            "--workers",
            "8",
            "--queue",
            "16",
        ]))
        .unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.store.as_deref(), Some("/tmp/s"));
        assert_eq!(o.cfg.workers, 8);
        assert_eq!(o.cfg.queue_limit, 16);
        assert_eq!(o.cfg.slow_request_ms, None);

        let o = parse_args(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--slow-ms",
            "250",
            "--trace",
            "/tmp/t.json",
        ]))
        .unwrap();
        assert_eq!(o.cfg.slow_request_ms, Some(250));
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.json"));
        assert_eq!(o.cfg.deadline_ms, None);

        let o = parse_args(&args(&["--listen", "127.0.0.1:0", "--deadline-ms", "500"])).unwrap();
        assert_eq!(o.cfg.deadline_ms, Some(500));

        assert!(parse_args(&[]).is_err(), "an endpoint is required");
        assert!(
            parse_args(&args(&["--listen", "a", "--socket", "b"])).is_err(),
            "endpoints are exclusive"
        );
        assert!(parse_args(&args(&["--workers", "x"])).is_err());
        assert!(parse_args(&args(&["--frob"])).is_err());
    }
}
