//! A small blocking client for the wire protocol — used by the replay
//! driver, the benches, the tests and the quickstart example.
//!
//! Two clients live here: the bare [`Client`] (one connection, no
//! recovery — an I/O error is the caller's problem) and the
//! [`RetryClient`], which reconnects and resends on *transport*
//! failures with capped exponential backoff and decorrelated jitter.
//!
//! # Idempotency
//!
//! Resending a request line is safe: the daemon keys work by the
//! request's canonical fingerprint, response bodies are deterministic
//! in the request content, and the store's writes are atomic and
//! content-addressed — a duplicate execution produces byte-identical
//! artifacts, never a double effect. That is what makes blind
//! retry-on-drop correct. Error *frames* are terminal and are never
//! retried: they are the daemon's considered answer (bad request, over
//! capacity, deadline exceeded, …), not a transport failure — resend
//! decisions for those belong to the application.

use crate::proto::Value;
use crate::server::Conn;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// The reply to one request: the terminal frame plus any progress
/// frames that streamed before it.
#[derive(Debug)]
pub struct Reply {
    /// Progress frames, in arrival order (raw lines).
    pub progress: Vec<String>,
    /// The terminal frame line (`"frame":"response"` or `"frame":"error"`).
    pub terminal: String,
}

impl Reply {
    /// Parses the terminal frame.
    pub fn frame(&self) -> Result<Value, String> {
        Value::parse(&self.terminal)
    }

    /// Whether the terminal frame is a successful response.
    pub fn is_ok(&self) -> bool {
        self.frame()
            .ok()
            .and_then(|f| f.get("ok").and_then(Value::as_bool))
            .unwrap_or(false)
    }
}

/// One connection to a running `argo-serve` daemon.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl Client {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single lines awaiting a reply — never batch.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(Conn::Tcp(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(Conn::Unix(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Unix(stream),
        })
    }

    /// Sends one request line (a complete JSON object, no newline).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next frame line.
    pub fn read_frame(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and collects frames until its terminal frame
    /// (response or protocol error) arrives. Progress frames — this
    /// request's or interleaved ones from other in-flight requests on
    /// this connection — are accumulated in [`Reply::progress`].
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        self.send_line(line)?;
        let mut progress = Vec::new();
        loop {
            let frame = self.read_frame()?;
            if frame.starts_with("{\"frame\":\"response\"")
                || frame.starts_with("{\"frame\":\"error\"")
            {
                return Ok(Reply {
                    progress,
                    terminal: frame,
                });
            }
            progress.push(frame);
        }
    }
}

/// Backoff knobs for [`RetryClient`]: `attempts` total tries, sleeps
/// drawn by decorrelated jitter in `[base, 3×previous]` capped at
/// `cap`. The jitter PRNG is seeded, so a given client's retry
/// schedule is reproducible.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// First backoff sleep, and the lower bound of every later one.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter PRNG (0 is remapped to 1).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 1,
        }
    }
}

/// Where a [`RetryClient`] dials (re)connections.
enum Endpoint {
    Tcp(String),
    #[cfg(unix)]
    Unix(String),
}

/// A [`Client`] wrapper that survives connection drops: on any
/// *transport* error (connect failure, send failure, mid-reply EOF) it
/// tears down the connection, sleeps a capped decorrelated-jitter
/// backoff, reconnects and resends — up to
/// [`RetryPolicy::attempts`] times. See the module docs for why blind
/// resends are safe (canonical-fingerprint idempotency) and why error
/// frames are never retried.
///
/// Every resend bumps the process-global `argo_client_retries_total`
/// counter as well as the per-client [`retries`](RetryClient::retries)
/// count.
pub struct RetryClient {
    endpoint: Endpoint,
    policy: RetryPolicy,
    client: Option<Client>,
    /// xorshift64 state for the jitter; never zero.
    rng: u64,
    /// Previous sleep in ms — the decorrelated-jitter upper bound feed.
    prev_ms: u64,
    retries: u64,
}

impl RetryClient {
    /// A retrying client for a TCP endpoint (`host:port`). Connects
    /// lazily, on the first request.
    pub fn tcp(addr: &str, policy: RetryPolicy) -> RetryClient {
        RetryClient::new(Endpoint::Tcp(addr.to_string()), policy)
    }

    /// A retrying client for a Unix-socket endpoint. Connects lazily.
    #[cfg(unix)]
    pub fn unix(path: &str, policy: RetryPolicy) -> RetryClient {
        RetryClient::new(Endpoint::Unix(path.to_string()), policy)
    }

    fn new(endpoint: Endpoint, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            endpoint,
            policy,
            client: None,
            rng: policy.seed.max(1),
            prev_ms: policy.base.as_millis() as u64,
            retries: 0,
        }
    }

    /// Transport-level resends performed by this client so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Decorrelated jitter: sleep uniformly in `[base, 3×previous]`,
    /// capped. Spreads simultaneous retriers apart instead of letting
    /// them re-collide in synchronized waves.
    fn backoff(&mut self) -> Duration {
        let base = (self.policy.base.as_millis() as u64).max(1);
        let cap = (self.policy.cap.as_millis() as u64).max(base);
        let upper = self.prev_ms.saturating_mul(3).clamp(base, cap);
        let span = upper - base + 1;
        let ms = base + self.next_u64() % span;
        self.prev_ms = ms;
        Duration::from_millis(ms)
    }

    fn connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let client = match &self.endpoint {
                Endpoint::Tcp(addr) => Client::connect_tcp(addr)?,
                #[cfg(unix)]
                Endpoint::Unix(path) => Client::connect_unix(path)?,
            };
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Sends `line` and awaits its terminal frame, retrying transport
    /// failures per the policy. Returns the last transport error once
    /// the attempts are exhausted.
    ///
    /// # Errors
    ///
    /// The final attempt's I/O error, when every attempt failed at the
    /// transport level.
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        let attempts = self.policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                argo_trace::metrics()
                    .counter("argo_client_retries_total")
                    .inc();
                let sleep = self.backoff();
                std::thread::sleep(sleep);
            }
            match self.connected().and_then(|c| c.request(line)) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // The connection is suspect — rebuild it next try.
                    self.client = None;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_bounded_and_deterministic_in_the_seed() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 42,
        };
        let mut a = RetryClient::tcp("127.0.0.1:1", policy);
        let mut b = RetryClient::tcp("127.0.0.1:1", policy);
        let seq_a: Vec<Duration> = (0..16).map(|_| a.backoff()).collect();
        let seq_b: Vec<Duration> = (0..16).map(|_| b.backoff()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        for d in &seq_a {
            assert!(*d >= policy.base && *d <= policy.cap, "{d:?}");
        }
        let mut c = RetryClient::tcp("127.0.0.1:1", RetryPolicy { seed: 43, ..policy });
        let seq_c: Vec<Duration> = (0..16).map(|_| c.backoff()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different schedule");
    }

    #[test]
    fn exhausted_attempts_return_the_transport_error() {
        // Nothing listens on a reserved port of the discard range;
        // connect fails fast and the client gives up after `attempts`.
        let mut client = RetryClient::tcp(
            "127.0.0.1:1",
            RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 7,
            },
        );
        let err = client.request(r#"{"id":1,"kind":"stats"}"#);
        assert!(err.is_err());
        assert_eq!(client.retries(), 2, "attempts - 1 resends");
    }
}
