//! A small blocking client for the wire protocol — used by the replay
//! driver, the benches, the tests and the quickstart example.

use crate::proto::Value;
use crate::server::Conn;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// The reply to one request: the terminal frame plus any progress
/// frames that streamed before it.
#[derive(Debug)]
pub struct Reply {
    /// Progress frames, in arrival order (raw lines).
    pub progress: Vec<String>,
    /// The terminal frame line (`"frame":"response"` or `"frame":"error"`).
    pub terminal: String,
}

impl Reply {
    /// Parses the terminal frame.
    pub fn frame(&self) -> Result<Value, String> {
        Value::parse(&self.terminal)
    }

    /// Whether the terminal frame is a successful response.
    pub fn is_ok(&self) -> bool {
        self.frame()
            .ok()
            .and_then(|f| f.get("ok").and_then(Value::as_bool))
            .unwrap_or(false)
    }
}

/// One connection to a running `argo-serve` daemon.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl Client {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single lines awaiting a reply — never batch.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(Conn::Tcp(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(Conn::Unix(stream.try_clone()?));
        Ok(Client {
            reader,
            writer: Conn::Unix(stream),
        })
    }

    /// Sends one request line (a complete JSON object, no newline).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next frame line.
    pub fn read_frame(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and collects frames until its terminal frame
    /// (response or protocol error) arrives. Progress frames — this
    /// request's or interleaved ones from other in-flight requests on
    /// this connection — are accumulated in [`Reply::progress`].
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        self.send_line(line)?;
        let mut progress = Vec::new();
        loop {
            let frame = self.read_frame()?;
            if frame.starts_with("{\"frame\":\"response\"")
                || frame.starts_with("{\"frame\":\"error\"")
            {
                return Ok(Reply {
                    progress,
                    terminal: frame,
                });
            }
            progress.push(frame);
        }
    }
}
