//! # argo-model — Xcos-like dataflow modelling frontend
//!
//! "In ARGO, the end users describe their applications using a combination
//! of dataflow modeling, using the open-source Xcos modeling framework,
//! and high-level programming using Scilab. … the behavior of all Xcos
//! components used in ARGO is also described in the Scilab language."
//! (paper § II-A)
//!
//! This crate provides that modelling layer: a [`Model`] is a DAG of
//! blocks connected by typed signal wires; block behaviours are written as
//! small Scilab-like expressions over the block inputs (`u`, `u1`, `u2`).
//! [`Model::lower`] compiles the model to the mini-C IR — "the Xcos/Scilab
//! models are then compiled to an intermediate program representation (IR)
//! based on a subset of the C language" (§ II-B) — after which the whole
//! ARGO tool-chain (transforms, HTG, scheduling, WCET) applies unchanged.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use argo_model::Model;
//!
//! let mut m = Model::new("demo", 64);
//! let src = m.add_input("samples");
//! let scaled = m.add_map("scale", "u * 2.0 + 1.0", src)?;
//! let energy = m.add_reduce("energy", argo_model::ReduceOp::Sum, scaled);
//! m.mark_output(scaled);
//! m.mark_output(energy);
//! let program = m.lower()?;
//! assert!(program.function("demo").is_some());
//! # Ok(()) }
//! ```

use argo_ir::ast::Block as IrBlock;
use argo_ir::ast::{BinOp, Expr, Function, LValue, Param, Program, Stmt, StmtKind};
use argo_ir::types::{Scalar, Type};
use argo_transform::subst_var;
use std::fmt;

/// Identifier of a block within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// Reduction operator of a reduce block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of all elements.
    Sum,
    /// Product of all elements.
    Product,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

/// Behaviour of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockKind {
    /// An external input signal (becomes an entry-function parameter).
    Input,
    /// Element-wise map of one input; the Scilab-like expression reads
    /// the current element as `u`.
    Map {
        /// Behaviour expression over `u`.
        expr: Expr,
        /// The single upstream block.
        input: BlockId,
    },
    /// Element-wise combination of two inputs, read as `u1` and `u2`.
    Zip {
        /// Behaviour expression over `u1`, `u2`.
        expr: Expr,
        /// First upstream block.
        a: BlockId,
        /// Second upstream block.
        b: BlockId,
    },
    /// Reduce the input signal to a width-1 signal.
    Reduce {
        /// Operator.
        op: ReduceOp,
        /// Upstream block.
        input: BlockId,
    },
    /// 3-point stencil `f(u_prev, u, u_next)` with clamped borders; the
    /// expression reads `u1` (previous), `u2` (centre), `u3` (next).
    Stencil3 {
        /// Behaviour expression over `u1`, `u2`, `u3`.
        expr: Expr,
        /// Upstream block.
        input: BlockId,
    },
}

/// One block instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block id.
    pub id: BlockId,
    /// Unique block name (becomes the buffer/parameter name).
    pub name: String,
    /// Behaviour.
    pub kind: BlockKind,
    /// Signal width of the block's output.
    pub width: usize,
    /// Marked as a model output (becomes an out-parameter)?
    pub is_output: bool,
}

/// A dataflow model: a DAG of blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name (becomes the entry function name).
    pub name: String,
    /// Default signal width.
    pub width: usize,
    /// Blocks in creation order (topological by construction: blocks may
    /// only reference earlier blocks).
    pub blocks: Vec<Block>,
}

/// Error from model construction or lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model error: {}", self.msg)
    }
}

impl std::error::Error for ModelError {}

impl Model {
    /// Creates an empty model whose signals default to `width` elements.
    pub fn new(name: impl Into<String>, width: usize) -> Model {
        Model {
            name: name.into(),
            width,
            blocks: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, kind: BlockKind, width: usize) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(Block {
            id,
            name: name.to_string(),
            kind,
            width,
            is_output: false,
        });
        id
    }

    /// Adds an external input signal.
    pub fn add_input(&mut self, name: &str) -> BlockId {
        self.push(name, BlockKind::Input, self.width)
    }

    /// Adds an element-wise map block with a Scilab-like behaviour
    /// expression over `u`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the expression does not parse or `input`
    /// is unknown.
    pub fn add_map(
        &mut self,
        name: &str,
        expr: &str,
        input: BlockId,
    ) -> Result<BlockId, ModelError> {
        let expr = parse_behaviour(expr)?;
        self.check_block(input)?;
        Ok(self.push(
            name,
            BlockKind::Map { expr, input },
            self.blocks[input.0].width,
        ))
    }

    /// Adds an element-wise two-input block (`u1`, `u2`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the expression does not parse, a block id
    /// is unknown, or the input widths differ.
    pub fn add_zip(
        &mut self,
        name: &str,
        expr: &str,
        a: BlockId,
        b: BlockId,
    ) -> Result<BlockId, ModelError> {
        let expr = parse_behaviour(expr)?;
        self.check_block(a)?;
        self.check_block(b)?;
        if self.blocks[a.0].width != self.blocks[b.0].width {
            return Err(ModelError {
                msg: format!(
                    "zip `{name}`: input widths differ ({} vs {})",
                    self.blocks[a.0].width, self.blocks[b.0].width
                ),
            });
        }
        Ok(self.push(name, BlockKind::Zip { expr, a, b }, self.blocks[a.0].width))
    }

    /// Adds a 3-point stencil block (`u1`=prev, `u2`=centre, `u3`=next,
    /// clamped at the borders).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the expression does not parse or the
    /// input is unknown.
    pub fn add_stencil3(
        &mut self,
        name: &str,
        expr: &str,
        input: BlockId,
    ) -> Result<BlockId, ModelError> {
        let expr = parse_behaviour(expr)?;
        self.check_block(input)?;
        Ok(self.push(
            name,
            BlockKind::Stencil3 { expr, input },
            self.blocks[input.0].width,
        ))
    }

    /// Adds a reduction block (output width 1).
    pub fn add_reduce(&mut self, name: &str, op: ReduceOp, input: BlockId) -> BlockId {
        self.push(name, BlockKind::Reduce { op, input }, 1)
    }

    /// Marks a block's signal as a model output.
    pub fn mark_output(&mut self, id: BlockId) {
        self.blocks[id.0].is_output = true;
    }

    fn check_block(&self, id: BlockId) -> Result<(), ModelError> {
        if id.0 >= self.blocks.len() {
            return Err(ModelError {
                msg: format!("unknown block id {}", id.0),
            });
        }
        Ok(())
    }

    /// Compiles the model to a mini-C program with one entry function
    /// named after the model. Inputs become `in` array parameters,
    /// outputs become `out` array parameters (`<name>_out`), internal
    /// signals become local buffers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the model is empty, has duplicate block
    /// names, or produces an invalid program (reported with the underlying
    /// validation message).
    pub fn lower(&self) -> Result<Program, ModelError> {
        if self.blocks.is_empty() {
            return Err(ModelError {
                msg: "model has no blocks".into(),
            });
        }
        let mut names = std::collections::BTreeSet::new();
        for b in &self.blocks {
            if !names.insert(&b.name) {
                return Err(ModelError {
                    msg: format!("duplicate block name `{}`", b.name),
                });
            }
        }

        let mut params: Vec<Param> = Vec::new();
        let mut stmts: Vec<Stmt> = Vec::new();

        // Inputs and outputs are parameters.
        for b in &self.blocks {
            if matches!(b.kind, BlockKind::Input) {
                params.push(Param {
                    name: b.name.clone(),
                    ty: Type::array1(Scalar::Real, b.width),
                });
            }
        }
        for b in &self.blocks {
            if b.is_output {
                params.push(Param {
                    name: format!("{}_out", b.name),
                    ty: Type::array1(Scalar::Real, b.width),
                });
            }
        }

        // Internal buffers for every non-input block.
        for b in &self.blocks {
            if !matches!(b.kind, BlockKind::Input) {
                stmts.push(Stmt::new(StmtKind::Decl {
                    name: b.name.clone(),
                    ty: Type::array1(Scalar::Real, b.width),
                    init: None,
                }));
            }
        }
        stmts.push(Stmt::new(StmtKind::Decl {
            name: "idx".into(),
            ty: Type::Scalar(Scalar::Int),
            init: None,
        }));

        // One loop per block, in dataflow (creation) order.
        for b in &self.blocks {
            match &b.kind {
                BlockKind::Input => {}
                BlockKind::Map { expr, input } => {
                    let u = Expr::idx1(self.blocks[input.0].name.clone(), Expr::var("idx"));
                    let body = subst_var(expr, "u", &u);
                    stmts.push(elementwise_loop(&b.name, b.width, body));
                }
                BlockKind::Zip { expr, a, b: bb } => {
                    let u1 = Expr::idx1(self.blocks[a.0].name.clone(), Expr::var("idx"));
                    let u2 = Expr::idx1(self.blocks[bb.0].name.clone(), Expr::var("idx"));
                    let body = subst_var(&subst_var(expr, "u1", &u1), "u2", &u2);
                    stmts.push(elementwise_loop(&b.name, b.width, body));
                }
                BlockKind::Stencil3 { expr, input } => {
                    let src = &self.blocks[input.0].name;
                    let w = b.width as i64;
                    // Clamped neighbours: imax(idx-1, 0), imin(idx+1, w-1).
                    let prev = Expr::idx1(
                        src.clone(),
                        Expr::Call {
                            name: "imax".into(),
                            args: vec![
                                Expr::bin(BinOp::Sub, Expr::var("idx"), Expr::int(1)),
                                Expr::int(0),
                            ],
                        },
                    );
                    let mid = Expr::idx1(src.clone(), Expr::var("idx"));
                    let next = Expr::idx1(
                        src.clone(),
                        Expr::Call {
                            name: "imin".into(),
                            args: vec![
                                Expr::bin(BinOp::Add, Expr::var("idx"), Expr::int(1)),
                                Expr::int(w - 1),
                            ],
                        },
                    );
                    let body = subst_var(
                        &subst_var(&subst_var(expr, "u1", &prev), "u2", &mid),
                        "u3",
                        &next,
                    );
                    stmts.push(elementwise_loop(&b.name, b.width, body));
                }
                BlockKind::Reduce { op, input } => {
                    let src = &self.blocks[input.0].name;
                    let acc = format!("{}_acc", b.name);
                    let init = match op {
                        ReduceOp::Sum => Expr::real(0.0),
                        ReduceOp::Product => Expr::real(1.0),
                        // Min/max seeded from the first element.
                        ReduceOp::Min | ReduceOp::Max => Expr::idx1(src.clone(), Expr::int(0)),
                    };
                    stmts.push(Stmt::new(StmtKind::Decl {
                        name: acc.clone(),
                        ty: Type::Scalar(Scalar::Real),
                        init: Some(init),
                    }));
                    let elem = Expr::idx1(src.clone(), Expr::var("idx"));
                    let update = match op {
                        ReduceOp::Sum => Expr::bin(BinOp::Add, Expr::var(acc.clone()), elem),
                        ReduceOp::Product => Expr::bin(BinOp::Mul, Expr::var(acc.clone()), elem),
                        ReduceOp::Min => Expr::Call {
                            name: "fmin".into(),
                            args: vec![Expr::var(acc.clone()), elem],
                        },
                        ReduceOp::Max => Expr::Call {
                            name: "fmax".into(),
                            args: vec![Expr::var(acc.clone()), elem],
                        },
                    };
                    let in_width = self.blocks[input.0].width;
                    stmts.push(Stmt::new(StmtKind::For {
                        var: "idx".into(),
                        lo: Expr::int(0),
                        hi: Expr::int(in_width as i64),
                        step: 1,
                        body: IrBlock::of(vec![Stmt::new(StmtKind::Assign {
                            target: LValue::Var(acc.clone()),
                            value: update,
                        })]),
                    }));
                    stmts.push(Stmt::new(StmtKind::Assign {
                        target: LValue::ArrayElem {
                            array: b.name.clone(),
                            indices: vec![Expr::int(0)],
                        },
                        value: Expr::var(acc),
                    }));
                }
            }
            // Copy to output parameter if marked.
            if b.is_output {
                let copy = Stmt::new(StmtKind::For {
                    var: "idx".into(),
                    lo: Expr::int(0),
                    hi: Expr::int(b.width as i64),
                    step: 1,
                    body: IrBlock::of(vec![Stmt::new(StmtKind::Assign {
                        target: LValue::ArrayElem {
                            array: format!("{}_out", b.name),
                            indices: vec![Expr::var("idx")],
                        },
                        value: Expr::idx1(b.name.clone(), Expr::var("idx")),
                    })]),
                });
                stmts.push(copy);
            }
        }

        let mut program = Program {
            functions: vec![Function {
                name: self.name.clone(),
                params,
                ret: None,
                body: IrBlock::of(stmts),
            }],
        };
        program.renumber();
        argo_ir::validate::validate(&program).map_err(|e| ModelError {
            msg: format!("lowered program invalid: {e}"),
        })?;
        Ok(program)
    }
}

fn elementwise_loop(out: &str, width: usize, value: Expr) -> Stmt {
    Stmt::new(StmtKind::For {
        var: "idx".into(),
        lo: Expr::int(0),
        hi: Expr::int(width as i64),
        step: 1,
        body: IrBlock::of(vec![Stmt::new(StmtKind::Assign {
            target: LValue::ArrayElem {
                array: out.to_string(),
                indices: vec![Expr::var("idx")],
            },
            value,
        })]),
    })
}

/// Parses a Scilab-like behaviour expression (delegates to the mini-C
/// expression grammar, which is a superset).
///
/// # Errors
///
/// Returns [`ModelError`] with the parser's message.
pub fn parse_behaviour(src: &str) -> Result<Expr, ModelError> {
    argo_ir::parse::parse_expr(src).map_err(|e| ModelError {
        msg: format!("behaviour expression: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::interp::{ArgVal, ArrayData, Interp, NullHook};

    fn run_model(m: &Model, inputs: Vec<ArrayData>) -> Vec<(String, ArrayData)> {
        let p = m.lower().unwrap();
        let f = p.function(&m.name).unwrap();
        let mut args = Vec::new();
        let mut it = inputs.into_iter();
        for param in &f.params {
            if param.name.ends_with("_out") {
                args.push(ArgVal::Array(ArrayData::zeroed(
                    Scalar::Real,
                    param.ty.dims().to_vec(),
                )));
            } else {
                args.push(ArgVal::Array(it.next().expect("enough inputs")));
            }
        }
        let mut interp = Interp::new(&p);
        let out = interp.call_full(&m.name, args, &mut NullHook).unwrap();
        out.arrays
    }

    #[test]
    fn map_block_computes_elementwise() {
        let mut m = Model::new("m", 8);
        let x = m.add_input("x");
        let y = m.add_map("y", "u * 2.0 + 1.0", x).unwrap();
        m.mark_output(y);
        let outs = run_model(&m, vec![ArrayData::from_reals(&[1.0; 8])]);
        let (name, data) = outs.iter().find(|(n, _)| n == "y_out").unwrap();
        assert_eq!(name, "y_out");
        assert_eq!(data.to_reals(), vec![3.0; 8]);
    }

    #[test]
    fn zip_block_combines_two_signals() {
        let mut m = Model::new("m", 4);
        let a = m.add_input("a");
        let b = m.add_input("b");
        let c = m.add_zip("c", "u1 * u2", a, b).unwrap();
        m.mark_output(c);
        let outs = run_model(
            &m,
            vec![
                ArrayData::from_reals(&[1.0, 2.0, 3.0, 4.0]),
                ArrayData::from_reals(&[10.0, 10.0, 10.0, 10.0]),
            ],
        );
        let (_, data) = outs.iter().find(|(n, _)| n == "c_out").unwrap();
        assert_eq!(data.to_reals(), vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn reduce_blocks_compute_all_ops() {
        for (op, expect) in [
            (ReduceOp::Sum, 10.0),
            (ReduceOp::Product, 24.0),
            (ReduceOp::Min, 1.0),
            (ReduceOp::Max, 4.0),
        ] {
            let mut m = Model::new("m", 4);
            let x = m.add_input("x");
            let r = m.add_reduce("r", op, x);
            m.mark_output(r);
            let outs = run_model(&m, vec![ArrayData::from_reals(&[3.0, 1.0, 4.0, 2.0])]);
            let (_, data) = outs.iter().find(|(n, _)| n == "r_out").unwrap();
            assert_eq!(data.to_reals(), vec![expect], "{op:?}");
        }
    }

    #[test]
    fn stencil_clamps_borders() {
        let mut m = Model::new("m", 4);
        let x = m.add_input("x");
        // Moving average of 3 with clamped borders.
        let s = m.add_stencil3("s", "(u1 + u2 + u3) / 3.0", x).unwrap();
        m.mark_output(s);
        let outs = run_model(&m, vec![ArrayData::from_reals(&[3.0, 6.0, 9.0, 12.0])]);
        let (_, data) = outs.iter().find(|(n, _)| n == "s_out").unwrap();
        let got = data.to_reals();
        assert!((got[0] - 4.0).abs() < 1e-12); // (3+3+6)/3
        assert!((got[1] - 6.0).abs() < 1e-12); // (3+6+9)/3
        assert!((got[3] - 11.0).abs() < 1e-12); // (9+12+12)/3
    }

    #[test]
    fn pipeline_of_blocks_chains() {
        let mut m = Model::new("m", 8);
        let x = m.add_input("x");
        let y = m.add_map("y", "u + 1.0", x).unwrap();
        let z = m.add_map("z", "u * u", y).unwrap();
        m.mark_output(z);
        let outs = run_model(&m, vec![ArrayData::from_reals(&[2.0; 8])]);
        let (_, data) = outs.iter().find(|(n, _)| n == "z_out").unwrap();
        assert_eq!(data.to_reals(), vec![9.0; 8]);
    }

    #[test]
    fn rejects_bad_expression() {
        let mut m = Model::new("m", 8);
        let x = m.add_input("x");
        assert!(m.add_map("y", "u +", x).is_err());
    }

    #[test]
    fn rejects_width_mismatch_zip() {
        let mut m = Model::new("m", 8);
        let a = m.add_input("a");
        let r = m.add_reduce("r", ReduceOp::Sum, a);
        assert!(m.add_zip("z", "u1 + u2", a, r).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut m = Model::new("m", 4);
        let a = m.add_input("x");
        let _ = m.add_map("x", "u", a);
        assert!(m.lower().is_err());
    }

    #[test]
    fn lowered_model_is_parallelizable_by_the_toolchain() {
        // The lowered loops are DOALL maps: the HTG must classify them so.
        let mut m = Model::new("m", 32);
        let x = m.add_input("x");
        let y = m.add_map("y", "sqrt(u) + 1.0", x).unwrap();
        m.mark_output(y);
        let p = m.lower().unwrap();
        let htg = argo_htg::extract::extract(&p, "m", argo_htg::Granularity::Loop).unwrap();
        let any_doall = htg.tasks.iter().any(|t| {
            matches!(
                &t.kind,
                argo_htg::TaskKind::LoopNode {
                    parallelism: argo_htg::deps::LoopParallelism::Doall
                }
            )
        });
        assert!(any_doall);
    }
}
