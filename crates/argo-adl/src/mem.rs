//! Memory spaces and variable placement maps.
//!
//! The parallel-program-model construction stage "obtains the final memory
//! address mapping of the variables and the buffers" (paper § II-C). The
//! [`MemoryMap`] type is that artefact: every program variable is assigned
//! a [`MemSpace`] and, for addressable spaces, a base address. The
//! code-level WCET analysis, the scratchpad allocator and the platform
//! simulator all consume the same map, so analysis and execution can never
//! disagree about where a variable lives.

use crate::{CoreId, Platform};
use std::collections::BTreeMap;

/// Where a variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Registers / core-local stack: scalar accesses at `local_access`
    /// cost, never contended.
    Local,
    /// The scratchpad of a specific core.
    Spm(CoreId),
    /// The shared memory behind the bus/NoC (contended).
    Shared,
}

/// Placement record of one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Assigned space.
    pub space: MemSpace,
    /// Base byte address within the space (0 for [`MemSpace::Local`]).
    pub base_addr: u64,
    /// Footprint in bytes.
    pub size_bytes: u64,
}

/// Variable → placement map for one parallel program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryMap {
    entries: BTreeMap<String, Placement>,
}

impl MemoryMap {
    /// Creates an empty map.
    pub fn new() -> MemoryMap {
        MemoryMap::default()
    }

    /// Inserts or replaces a placement.
    pub fn insert(&mut self, var: impl Into<String>, placement: Placement) {
        self.entries.insert(var.into(), placement);
    }

    /// Looks up a variable's placement.
    pub fn placement(&self, var: &str) -> Option<&Placement> {
        self.entries.get(var)
    }

    /// The memory space of `var`, defaulting to [`MemSpace::Local`] for
    /// unplaced variables (scalars not touched by the allocator).
    pub fn space_of(&self, var: &str) -> MemSpace {
        self.entries.get(var).map_or(MemSpace::Local, |p| p.space)
    }

    /// Iterates over all `(variable, placement)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Placement)> {
        self.entries.iter()
    }

    /// Number of placed variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no variable is placed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes placed in the scratchpad of `core`.
    pub fn spm_usage(&self, core: CoreId) -> u64 {
        self.entries
            .values()
            .filter(|p| p.space == MemSpace::Spm(core))
            .map(|p| p.size_bytes)
            .sum()
    }

    /// Total bytes placed in shared memory.
    pub fn shared_usage(&self) -> u64 {
        self.entries
            .values()
            .filter(|p| p.space == MemSpace::Shared)
            .map(|p| p.size_bytes)
            .sum()
    }

    /// Checks capacity constraints against a platform.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first overflowing memory.
    pub fn check_capacity(&self, platform: &Platform) -> Result<(), String> {
        for core in &platform.cores {
            let used = self.spm_usage(core.id);
            if used > core.spm_bytes {
                return Err(format!(
                    "{} scratchpad overflow: {used} bytes used, {} available",
                    core.id, core.spm_bytes
                ));
            }
        }
        let shared = self.shared_usage();
        if shared > platform.shared.size_bytes {
            return Err(format!(
                "shared memory overflow: {shared} bytes used, {} available",
                platform.shared.size_bytes
            ));
        }
        Ok(())
    }

    /// Byte address of element `flat_index` of `var` in its space
    /// (element size 8); used by the cache model.
    pub fn elem_addr(&self, var: &str, flat_index: u64) -> u64 {
        let base = self.entries.get(var).map_or(0, |p| p.base_addr);
        base + flat_index * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(space: MemSpace, base: u64, size: u64) -> Placement {
        Placement {
            space,
            base_addr: base,
            size_bytes: size,
        }
    }

    #[test]
    fn default_space_is_local() {
        let m = MemoryMap::new();
        assert_eq!(m.space_of("anything"), MemSpace::Local);
        assert!(m.is_empty());
    }

    #[test]
    fn usage_accounting() {
        let mut m = MemoryMap::new();
        m.insert("a", placed(MemSpace::Spm(CoreId(0)), 0, 1024));
        m.insert("b", placed(MemSpace::Spm(CoreId(0)), 1024, 512));
        m.insert("c", placed(MemSpace::Spm(CoreId(1)), 0, 256));
        m.insert("d", placed(MemSpace::Shared, 0, 4096));
        assert_eq!(m.spm_usage(CoreId(0)), 1536);
        assert_eq!(m.spm_usage(CoreId(1)), 256);
        assert_eq!(m.shared_usage(), 4096);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn capacity_check_detects_overflow() {
        let p = Platform::xentium_manycore(2); // 16 KiB SPMs
        let mut m = MemoryMap::new();
        m.insert("big", placed(MemSpace::Spm(CoreId(0)), 0, 20 * 1024));
        assert!(m.check_capacity(&p).is_err());
        let mut m2 = MemoryMap::new();
        m2.insert("ok", placed(MemSpace::Spm(CoreId(0)), 0, 8 * 1024));
        m2.check_capacity(&p).unwrap();
    }

    #[test]
    fn elem_addresses_offset_from_base() {
        let mut m = MemoryMap::new();
        m.insert("arr", placed(MemSpace::Shared, 0x1000, 256));
        assert_eq!(m.elem_addr("arr", 0), 0x1000);
        assert_eq!(m.elem_addr("arr", 3), 0x1000 + 24);
    }
}
