//! Worst-case per-operation core timing tables.
//!
//! Every operation class the interpreter reports (see
//! `argo_ir::interp::OpClass`) has a worst-case latency in cycles. The
//! tables are deliberately simple — in-order, fully timing-compositional
//! cores, as § III-B demands ("the contribution of individual components to
//! the overall system's timing can be considered separately").

use std::collections::BTreeMap;

/// Worst-case latency table of one core.
///
/// Latencies are *architectural worst cases*: the code-level WCET analysis
/// charges exactly these values, and the simulator never exceeds them
/// (its per-op cost is drawn in `[best, worst]`, see `argo-sim`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreTiming {
    /// Integer add/sub/bit/address ops.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Float add/sub/neg.
    pub float_add: u64,
    /// Float multiply.
    pub float_mul: u64,
    /// Float divide.
    pub float_div: u64,
    /// Comparison.
    pub cmp: u64,
    /// Boolean logic.
    pub logic: u64,
    /// Scalar cast.
    pub cast: u64,
    /// Branch resolution (no dynamic prediction: fixed cost — § III-B
    /// forbids hard-to-predict speculative mechanisms).
    pub branch: u64,
    /// Per-iteration loop bookkeeping (increment + test + back jump).
    pub loop_overhead: u64,
    /// Call/return linkage.
    pub call_overhead: u64,
    /// Local (register/stack scalar) access.
    pub local_access: u64,
    /// Per-intrinsic worst-case latencies; [`CoreTiming::intrinsic`] falls
    /// back to `intrinsic_default` for names not in the map.
    pub intrinsic_latency: BTreeMap<String, u64>,
    /// Fallback intrinsic latency.
    pub intrinsic_default: u64,
}

impl CoreTiming {
    /// Xentium-like DSP: single-cycle ALU and MAC, hardware FP, modest
    /// divide.
    pub fn xentium() -> CoreTiming {
        CoreTiming {
            int_alu: 1,
            int_mul: 1,
            int_div: 12,
            float_add: 2,
            float_mul: 2,
            float_div: 16,
            cmp: 1,
            logic: 1,
            cast: 1,
            branch: 2,
            loop_overhead: 2,
            call_overhead: 6,
            local_access: 1,
            intrinsic_latency: standard_intrinsics(20),
            intrinsic_default: 30,
        }
    }

    /// Leon3-like in-order RISC: slower multiplier and software-ish FP.
    pub fn leon3() -> CoreTiming {
        CoreTiming {
            int_alu: 1,
            int_mul: 4,
            int_div: 35,
            float_add: 4,
            float_mul: 4,
            float_div: 24,
            cmp: 1,
            logic: 1,
            cast: 2,
            branch: 3,
            loop_overhead: 3,
            call_overhead: 10,
            local_access: 1,
            intrinsic_latency: standard_intrinsics(40),
            intrinsic_default: 60,
        }
    }

    /// Worst-case latency of a named intrinsic.
    pub fn intrinsic(&self, name: &str) -> u64 {
        self.intrinsic_latency
            .get(name)
            .copied()
            .unwrap_or(self.intrinsic_default)
    }

    /// Sum of all fixed-op latencies — used as a sanity metric in tests.
    pub fn total_fixed(&self) -> u64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.float_add
            + self.float_mul
            + self.float_div
            + self.cmp
            + self.logic
            + self.cast
            + self.branch
            + self.loop_overhead
            + self.call_overhead
            + self.local_access
    }
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming::xentium()
    }
}

fn standard_intrinsics(base: u64) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for (name, factor) in [
        ("sqrt", 1),
        ("sin", 2),
        ("cos", 2),
        ("tan", 3),
        ("atan2", 3),
        ("exp", 2),
        ("log", 2),
        ("pow", 4),
        ("floor", 1),
        ("fabs", 1),
        ("fmin", 1),
        ("fmax", 1),
        ("iabs", 1),
        ("imin", 1),
        ("imax", 1),
    ] {
        // Cheap select-style intrinsics cost a couple of cycles, the
        // transcendental ones scale with `base`.
        let cycles = if factor == 1
            && matches!(
                name,
                "fabs" | "fmin" | "fmax" | "iabs" | "imin" | "imax" | "floor"
            ) {
            2
        } else {
            base * factor
        };
        m.insert(name.to_string(), cycles);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        let x = CoreTiming::xentium();
        let l = CoreTiming::leon3();
        assert!(l.float_mul > x.float_mul, "leon3 FP slower than DSP");
        assert!(x.int_alu >= 1 && l.int_alu >= 1);
        assert!(l.total_fixed() > x.total_fixed());
    }

    #[test]
    fn intrinsic_lookup_and_fallback() {
        let t = CoreTiming::xentium();
        assert_eq!(t.intrinsic("sqrt"), 20);
        assert_eq!(t.intrinsic("fmax"), 2);
        assert_eq!(t.intrinsic("unknown_intrinsic"), t.intrinsic_default);
    }

    #[test]
    fn transcendental_costs_exceed_selects() {
        let t = CoreTiming::leon3();
        assert!(t.intrinsic("atan2") > t.intrinsic("fmin"));
        assert!(t.intrinsic("pow") > t.intrinsic("sqrt"));
    }
}
