//! Worst-case arbitration bounds for shared resources.
//!
//! The paper's central architectural requirement (§ III-B) is a
//! *predictable interconnect*: "(i) worst-case delay for gaining access to
//! the interconnect; (ii) worst-case delay for copying/getting the
//! information, once access is granted". This module provides exactly those
//! two bounds for three bus arbitration policies and for an XY-routed mesh
//! NoC with WRR link arbitration (the iNoC model of ref \[12\]).
//!
//! All bounds are *analytic worst cases*; `argo-sim` implements the same
//! policies dynamically, and the integration tests check
//! `simulated wait ≤ analytic bound` for every policy.

use std::fmt;

/// Bus arbitration policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arbitration {
    /// Time-division multiple access: each core owns one fixed slot of
    /// `slot_cycles` in a round of `total_slots` slots (one per platform
    /// core). Fully time-compositional: the bound does not depend on the
    /// number of *active* contenders at all.
    Tdma {
        /// Slot length in cycles (extended to the transaction length when
        /// transactions are longer).
        slot_cycles: u64,
        /// Slots per round — the total number of cores on the platform.
        total_slots: u64,
    },
    /// Weighted round-robin: requestor `i` is served at most after every
    /// other *active* contender has used its weight's worth of slots.
    Wrr {
        /// Per-core weights (index = core id).
        weights: Vec<u64>,
        /// Cycles per slot.
        slot_cycles: u64,
    },
    /// Fixed priority (lower index in `priorities` = served first).
    /// Predictable only for the highest-priority core; low-priority cores
    /// suffer a bound that grows with every higher-priority contender —
    /// the paper's argument for avoiding such schemes.
    FixedPriority {
        /// `priorities[c]` is the priority rank of core `c` (0 = highest).
        priorities: Vec<usize>,
    },
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arbitration::Tdma { .. } => write!(f, "tdma"),
            Arbitration::Wrr { .. } => write!(f, "wrr"),
            Arbitration::FixedPriority { .. } => write!(f, "fixedprio"),
        }
    }
}

impl Arbitration {
    /// Worst-case number of cycles core `core` waits for the bus grant,
    /// given that at most `contenders` cores (including `core`) may
    /// request concurrently and one granted transaction occupies the bus
    /// for `txn_cycles`.
    pub fn worst_wait(&self, core: usize, contenders: usize, txn_cycles: u64) -> u64 {
        let others = contenders.saturating_sub(1) as u64;
        match self {
            // TDMA: the request can just miss the core's slot and must
            // wait for the full remaining round, regardless of actual
            // contention (predictable but wasteful at low load).
            Arbitration::Tdma {
                slot_cycles,
                total_slots,
            } => {
                let slot = (*slot_cycles).max(txn_cycles);
                slot * total_slots.saturating_sub(1) + slot.saturating_sub(1)
            }
            // WRR: at most Σ w_j slots of other *active* contenders are
            // served first; each occupied slot blocks for slot_cycles
            // (slots sized to cover one transaction's bus occupancy). At
            // most `others` contenders are simultaneously active, and for
            // a sound bound we must assume the *largest-weight* subset is.
            Arbitration::Wrr {
                weights,
                slot_cycles,
            } => {
                // Sum of the `others` largest weights excluding `core`,
                // by repeated selection over the (small) weight table —
                // this sits under every comm/shared-access bound the
                // schedulers and WCET analyses compute, so it must not
                // allocate or sort per call.
                let mut w_others = 0u64;
                let mut prev = (u64::MAX, usize::MAX);
                let mut remaining = others;
                while remaining > 0 {
                    let mut best: Option<(u64, usize)> = None;
                    for (j, &w) in weights.iter().enumerate() {
                        if j == core || (w, j) >= prev {
                            continue;
                        }
                        if best.is_none_or(|b| (w, j) > b) {
                            best = Some((w, j));
                        }
                    }
                    let Some((w, j)) = best else { break };
                    w_others += w;
                    prev = (w, j);
                    remaining -= 1;
                }
                // One non-preemptible transaction may already be in
                // service when the request arrives (blocking term).
                let blocking = if others > 0 { txn_cycles } else { 0 };
                w_others * (*slot_cycles).max(txn_cycles) + blocking
            }
            // Fixed priority with hardware anti-starvation aging (the
            // simulator's arbiter): a request is overtaken by at most
            // `higher` fresh higher-priority requests before it ages;
            // aged requests are served FCFS, so at most `others` aged
            // requests plus one in-flight transaction precede it. Without
            // the aging guarantee no finite bound exists under sustained
            // higher-priority traffic — exactly the predictability
            // problem § III-B warns about.
            Arbitration::FixedPriority { priorities } => {
                if others == 0 {
                    return 0;
                }
                let my_rank = priorities.get(core).copied().unwrap_or(usize::MAX);
                let higher: u64 = priorities
                    .iter()
                    .enumerate()
                    .filter(|&(j, &r)| j != core && r < my_rank)
                    .count()
                    .min(others as usize) as u64;
                (higher + others + 1) * txn_cycles
            }
        }
    }

    /// Returns `true` if this policy's bound is independent of the number
    /// of contenders (fully time-compositional).
    pub fn is_composition_friendly(&self) -> bool {
        matches!(self, Arbitration::Tdma { .. })
    }
}

/// Worst-case latency for a packet of `flits` flits to traverse `hops`
/// router hops on an XY mesh, where each output link arbitrates WRR over
/// at most `link_contenders` other requestors of weight `contender_weight`.
///
/// The bound follows the iNoC guarantee structure \[12\]: per hop, the head
/// flit waits at most one full WRR round of the other contenders, then the
/// packet streams at one flit per `link_latency` (wormhole, no preemption
/// within a packet because WRR slots are packet-sized).
pub fn noc_worst_route_latency(
    hops: u64,
    flits: u64,
    router_latency: u64,
    link_latency: u64,
    link_contenders: u64,
    contender_weight: u64,
) -> u64 {
    let blocking = if link_contenders > 0 {
        link_latency * flits
    } else {
        0
    };
    let per_hop_wait = link_contenders * contender_weight * link_latency * flits + blocking;
    let head = hops * (router_latency + link_latency + per_hop_wait);
    let body = flits.saturating_sub(1) * link_latency;
    head + body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdma_bound_is_contender_independent() {
        let a = Arbitration::Tdma {
            slot_cycles: 8,
            total_slots: 4,
        };
        let w1 = a.worst_wait(0, 1, 10);
        let w4 = a.worst_wait(0, 4, 10);
        // The bound is identical regardless of how many cores actually
        // contend: full time compositionality (§ III-B).
        assert!(a.is_composition_friendly());
        assert_eq!(w1, w4);
        // Round of 4 slots of max(8, 10)=10: wait 3*10 + 9.
        assert_eq!(w4, 39);
    }

    #[test]
    fn wrr_wait_grows_with_contenders() {
        let a = Arbitration::Wrr {
            weights: vec![1; 8],
            slot_cycles: 4,
        };
        let mut prev = 0;
        for k in 1..=8 {
            let w = a.worst_wait(0, k, 12);
            assert!(w >= prev);
            prev = w;
        }
        assert_eq!(a.worst_wait(0, 1, 12), 0, "no contention, no wait");
    }

    #[test]
    fn wrr_respects_weights() {
        // Core 0 has weight 4, others weight 1: core 1 waits longer than
        // core 0 would with the roles reversed.
        let a = Arbitration::Wrr {
            weights: vec![4, 1, 1, 1],
            slot_cycles: 4,
        };
        let wait_of_low = a.worst_wait(1, 2, 12); // may wait for weight-4 core
        let b = Arbitration::Wrr {
            weights: vec![1, 1, 1, 1],
            slot_cycles: 4,
        };
        let wait_uniform = b.worst_wait(1, 2, 12);
        assert!(wait_of_low > wait_uniform);
    }

    #[test]
    fn fixed_priority_favours_high_priority() {
        let a = Arbitration::FixedPriority {
            priorities: vec![0, 1, 2, 3],
        };
        let top = a.worst_wait(0, 4, 12);
        let bottom = a.worst_wait(3, 4, 12);
        assert!(bottom > top);
        // Highest priority: no fresh overtakes, but up to 3 aged requests
        // plus one in flight.
        assert_eq!(top, 48);
        assert_eq!(bottom, 84);
    }

    #[test]
    fn fixed_priority_no_contention_no_wait() {
        let a = Arbitration::FixedPriority {
            priorities: vec![0, 1],
        };
        assert_eq!(a.worst_wait(1, 1, 12), 0);
    }

    #[test]
    fn noc_latency_monotone_in_all_parameters() {
        let base = noc_worst_route_latency(2, 4, 3, 1, 1, 1);
        assert!(noc_worst_route_latency(3, 4, 3, 1, 1, 1) > base, "hops");
        assert!(noc_worst_route_latency(2, 8, 3, 1, 1, 1) > base, "flits");
        assert!(
            noc_worst_route_latency(2, 4, 3, 1, 3, 1) > base,
            "contenders"
        );
        assert!(noc_worst_route_latency(2, 4, 3, 1, 1, 4) > base, "weights");
    }

    #[test]
    fn noc_uncontended_is_pure_pipeline() {
        // 1 hop, 1 flit, no contenders: router + link.
        assert_eq!(noc_worst_route_latency(1, 1, 3, 1, 0, 1), 4);
        // 4 flits stream behind the head.
        assert_eq!(noc_worst_route_latency(1, 4, 3, 1, 0, 1), 4 + 3);
    }
}
