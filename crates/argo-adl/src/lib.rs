//! # argo-adl — Architecture Description Language
//!
//! "The supported hardware platforms are also specified using a model-based
//! approach thanks to the ARGO Architecture Description Language (ADL). The
//! proposed ADL provides all the information required by the tool-chain
//! (processors, memory, interconnect, etc.) to calculate WCETs." (paper
//! § II-A).
//!
//! This crate models the two platform families of § IV-C as parameterised,
//! fully deterministic abstract machines:
//!
//! * a **Xentium-like DSP many-core** (Recore) — single-cycle integer ALU,
//!   fast MAC, scratchpad memories, shared bus;
//! * a **Leon3 + iNoC tile many-core** (KIT) — slower in-order RISC cores on
//!   a 2-D mesh NoC whose routers arbitrate with weighted round-robin
//!   (WRR), giving the bandwidth/latency guarantees \[12\] the system-level
//!   WCET analysis needs.
//!
//! The module layout:
//!
//! * [`timing`] — per-operation worst-case core timing tables;
//! * [`interference`] — worst-case shared-resource arbitration bounds
//!   (TDMA, WRR, fixed-priority bus; mesh NoC links);
//! * [`cache`] — optional data-cache configuration + LRU set model (used
//!   for the cache-vs-scratchpad predictability ablation);
//! * [`parser`] — the textual ADL format.
//!
//! # Examples
//!
//! ```
//! use argo_adl::{Platform, CoreId};
//!
//! let p = Platform::xentium_manycore(4);
//! assert_eq!(p.cores.len(), 4);
//! // Worst-case shared-memory access cost with all 4 cores contending
//! // is strictly higher than the uncontended cost:
//! let wc = p.worst_case_shared_access(CoreId(0), 4);
//! assert!(p.worst_case_shared_access(CoreId(0), 1) < wc);
//! ```

pub mod cache;
pub mod interference;
pub mod mem;
pub mod parser;
pub mod timing;

pub use cache::CacheConfig;
pub use interference::{noc_worst_route_latency, Arbitration};
pub use mem::{MemSpace, MemoryMap, Placement};
pub use timing::CoreTiming;

use std::fmt;

/// Identifier of a core within a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Family of a core's timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Xentium-like VLIW DSP (Recore Systems).
    XentiumDsp,
    /// Leon3-like in-order RISC (KIT tile).
    Leon3Risc,
    /// Fully custom timing table.
    Custom,
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoreKind::XentiumDsp => "xentium",
            CoreKind::Leon3Risc => "leon3",
            CoreKind::Custom => "custom",
        })
    }
}

/// One processing core.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    /// Core id (== index in [`Platform::cores`]).
    pub id: CoreId,
    /// Timing-model family.
    pub kind: CoreKind,
    /// Worst-case per-operation timing table.
    pub timing: CoreTiming,
    /// Private scratchpad capacity in bytes (0 = no scratchpad).
    pub spm_bytes: u64,
    /// Scratchpad access latency in cycles.
    pub spm_latency: u64,
    /// Optional private data cache (used instead of the scratchpad for the
    /// predictability ablation — paper § III-B advises against caches).
    pub cache: Option<CacheConfig>,
    /// Tile coordinates on the NoC mesh (`(0, i)` for bus platforms).
    pub tile: (usize, usize),
}

/// Shared-memory parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemory {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Raw (uncontended) access latency in cycles, excluding arbitration.
    pub latency: u64,
}

/// The interconnect between cores and shared memory.
#[derive(Debug, Clone, PartialEq)]
pub enum Interconnect {
    /// A single shared bus with the given arbitration policy.
    Bus {
        /// Arbitration policy.
        arbitration: Arbitration,
    },
    /// A 2-D mesh NoC with XY routing and per-link WRR arbitration
    /// (the iNoC model, paper ref \[12\]).
    Noc {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
        /// Per-hop router traversal latency in cycles.
        router_latency: u64,
        /// Per-flit link traversal latency in cycles.
        link_latency: u64,
        /// Payload bytes per flit.
        flit_bytes: u64,
        /// WRR weight of every requestor at each link.
        wrr_weight: u64,
    },
}

impl Interconnect {
    /// Returns `true` for NoC interconnects.
    pub fn is_noc(&self) -> bool {
        matches!(self, Interconnect::Noc { .. })
    }
}

/// A complete platform description: the ADL object model.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name (for reports).
    pub name: String,
    /// Cores, indexed by [`CoreId`].
    pub cores: Vec<Core>,
    /// The single shared memory visible to all cores.
    pub shared: SharedMemory,
    /// Interconnect between cores and shared memory.
    pub interconnect: Interconnect,
}

/// Error for malformed platform descriptions.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform error: {}", self.msg)
    }
}

impl std::error::Error for PlatformError {}

impl Platform {
    /// A homogeneous Xentium-like DSP many-core with `n` cores, 16 KiB
    /// scratchpads and a WRR shared bus — the Recore-style platform of
    /// § IV-C.
    pub fn xentium_manycore(n: usize) -> Platform {
        let cores = (0..n)
            .map(|i| Core {
                id: CoreId(i),
                kind: CoreKind::XentiumDsp,
                timing: CoreTiming::xentium(),
                spm_bytes: 16 * 1024,
                spm_latency: 1,
                cache: None,
                tile: (0, i),
            })
            .collect();
        Platform {
            name: format!("xentium{n}-wrr"),
            cores,
            shared: SharedMemory {
                size_bytes: 16 << 20,
                latency: 12,
            },
            interconnect: Interconnect::Bus {
                arbitration: Arbitration::Wrr {
                    weights: vec![1; n],
                    slot_cycles: 4,
                },
            },
        }
    }

    /// A KIT-style tile many-core: Leon3-like cores on a `rows × cols`
    /// mesh with WRR (iNoC) routers, 8 KiB scratchpads.
    pub fn kit_tile_noc(rows: usize, cols: usize) -> Platform {
        let mut cores = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                cores.push(Core {
                    id: CoreId(r * cols + c),
                    kind: CoreKind::Leon3Risc,
                    timing: CoreTiming::leon3(),
                    spm_bytes: 8 * 1024,
                    spm_latency: 2,
                    cache: None,
                    tile: (r, c),
                });
            }
        }
        Platform {
            name: format!("kit-{rows}x{cols}-inoc"),
            cores,
            shared: SharedMemory {
                size_bytes: 64 << 20,
                latency: 20,
            },
            interconnect: Interconnect::Noc {
                rows,
                cols,
                router_latency: 3,
                link_latency: 1,
                flit_bytes: 8,
                wrr_weight: 1,
            },
        }
    }

    /// A generic homogeneous bus platform with an explicit arbitration
    /// policy — used by the architecture-predictability ablation (E6).
    pub fn generic_bus(n: usize, arbitration: Arbitration) -> Platform {
        let mut p = Platform::xentium_manycore(n);
        p.name = format!("generic{n}-{arbitration}");
        p.interconnect = Interconnect::Bus { arbitration };
        p
    }

    /// Replaces every core's scratchpad with a data cache (predictability
    /// ablation: § III-B recommends scratchpads *over* caches).
    pub fn with_caches(mut self, cfg: CacheConfig) -> Platform {
        for c in &mut self.cores {
            c.spm_bytes = 0;
            c.cache = Some(cfg);
        }
        self.name = format!("{}-cached", self.name);
        self
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Looks up a core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.0]
    }

    /// Validates internal consistency (ids, mesh shape, weights).
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.cores.is_empty() {
            return Err(PlatformError {
                msg: "platform has no cores".into(),
            });
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.id.0 != i {
                return Err(PlatformError {
                    msg: format!("core at index {i} has id {}", c.id.0),
                });
            }
            if c.spm_bytes > 0 && c.cache.is_some() {
                return Err(PlatformError {
                    msg: format!("{} has both a scratchpad and a cache", c.id),
                });
            }
        }
        match &self.interconnect {
            Interconnect::Bus { arbitration } => {
                if let Arbitration::Wrr { weights, .. } = arbitration {
                    if weights.len() != self.cores.len() {
                        return Err(PlatformError {
                            msg: format!(
                                "WRR weight count {} != core count {}",
                                weights.len(),
                                self.cores.len()
                            ),
                        });
                    }
                    if weights.contains(&0) {
                        return Err(PlatformError {
                            msg: "WRR weights must be positive".into(),
                        });
                    }
                }
                if let Arbitration::FixedPriority { priorities } = arbitration {
                    if priorities.len() != self.cores.len() {
                        return Err(PlatformError {
                            msg: "fixed-priority list length != core count".into(),
                        });
                    }
                }
            }
            Interconnect::Noc { rows, cols, .. } => {
                if rows * cols < self.cores.len() {
                    return Err(PlatformError {
                        msg: format!(
                            "mesh {rows}x{cols} too small for {} cores",
                            self.cores.len()
                        ),
                    });
                }
                for c in &self.cores {
                    if c.tile.0 >= *rows || c.tile.1 >= *cols {
                        return Err(PlatformError {
                            msg: format!("{} tile {:?} outside mesh", c.id, c.tile),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Worst-case cost in cycles for `core` to complete one shared-memory
    /// access when at most `contenders` cores (including `core`) may
    /// access the shared resource concurrently.
    ///
    /// This is the cost model the system-level WCET analysis uses: "a cost
    /// model of the interference derived from the platform abstract
    /// models" (paper § II-D). The returned value includes the raw memory
    /// latency plus the worst-case arbitration wait.
    pub fn worst_case_shared_access(&self, core: CoreId, contenders: usize) -> u64 {
        let contenders = contenders.clamp(1, self.cores.len());
        match &self.interconnect {
            Interconnect::Bus { arbitration } => {
                self.shared.latency
                    + arbitration.worst_wait(core.0, contenders, self.shared.latency)
            }
            Interconnect::Noc {
                rows: _,
                cols,
                router_latency,
                link_latency,
                flit_bytes,
                wrr_weight,
            } => {
                // Shared memory sits at tile (0, 0); worst-case route from
                // the core's tile, one 8-byte word per access.
                let tile = self.core(core).tile;
                let hops = (tile.0 + tile.1) as u64 + 1;
                let flits = 8u64.div_ceil(*flit_bytes).max(1);
                // The memory controller port serializes transactions:
                // up to (k-1) queued requests plus one in flight.
                let port_wait = if contenders > 1 {
                    contenders as u64 * self.shared.latency
                } else {
                    0
                };
                self.shared.latency
                    + port_wait
                    + noc_worst_route_latency(
                        hops,
                        flits,
                        *router_latency,
                        *link_latency,
                        // On an XY-routed mesh at most 3 other input ports
                        // (plus local) compete per output link; bounded by
                        // the remaining contenders.
                        (contenders as u64 - 1).min(4.min(*cols as u64 + 1)),
                        *wrr_weight,
                    )
            }
        }
    }

    /// Uncontended shared-access cost (single requestor) for `core`.
    pub fn uncontended_shared_access(&self, core: CoreId) -> u64 {
        self.worst_case_shared_access(core, 1)
    }

    /// Worst-case cost of communicating `bytes` from `from` to `to`
    /// (through shared memory on bus platforms, across the mesh on NoC
    /// platforms) with `contenders` concurrent requestors.
    pub fn worst_case_comm(&self, from: CoreId, to: CoreId, bytes: u64, contenders: usize) -> u64 {
        if from == to {
            return 0;
        }
        let words = bytes.div_ceil(8).max(1);
        match &self.interconnect {
            Interconnect::Bus { .. } => {
                // Producer writes then consumer reads each word.
                words
                    * (self.worst_case_shared_access(from, contenders)
                        + self.worst_case_shared_access(to, contenders))
            }
            Interconnect::Noc {
                router_latency,
                link_latency,
                flit_bytes,
                wrr_weight,
                ..
            } => {
                let a = self.core(from).tile;
                let b = self.core(to).tile;
                let hops = (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as u64;
                let flits = (words * 8).div_ceil(*flit_bytes).max(1);
                noc_worst_route_latency(
                    hops.max(1),
                    flits,
                    *router_latency,
                    *link_latency,
                    (contenders as u64).saturating_sub(1).min(4),
                    *wrr_weight,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Platform::xentium_manycore(4).validate().unwrap();
        Platform::kit_tile_noc(2, 3).validate().unwrap();
        Platform::generic_bus(
            2,
            Arbitration::Tdma {
                slot_cycles: 8,
                total_slots: 2,
            },
        )
        .validate()
        .unwrap();
    }

    #[test]
    fn contention_increases_worst_case_cost() {
        let p = Platform::xentium_manycore(8);
        let c = CoreId(0);
        let mut prev = 0;
        for k in 1..=8 {
            let wc = p.worst_case_shared_access(c, k);
            assert!(wc >= prev, "monotone in contenders");
            prev = wc;
        }
        assert!(p.worst_case_shared_access(c, 8) > p.worst_case_shared_access(c, 1));
    }

    #[test]
    fn contenders_clamped_to_core_count() {
        let p = Platform::xentium_manycore(2);
        assert_eq!(
            p.worst_case_shared_access(CoreId(0), 2),
            p.worst_case_shared_access(CoreId(0), 99)
        );
    }

    #[test]
    fn noc_cost_grows_with_distance() {
        let p = Platform::kit_tile_noc(4, 4);
        let near = p.worst_case_shared_access(CoreId(0), 1); // tile (0,0)
        let far = p.worst_case_shared_access(CoreId(15), 1); // tile (3,3)
        assert!(far > near);
    }

    #[test]
    fn comm_cost_zero_on_same_core() {
        let p = Platform::kit_tile_noc(2, 2);
        assert_eq!(p.worst_case_comm(CoreId(1), CoreId(1), 4096, 4), 0);
        assert!(p.worst_case_comm(CoreId(0), CoreId(3), 4096, 4) > 0);
    }

    #[test]
    fn comm_cost_scales_with_volume() {
        let p = Platform::xentium_manycore(4);
        let small = p.worst_case_comm(CoreId(0), CoreId(1), 64, 2);
        let big = p.worst_case_comm(CoreId(0), CoreId(1), 6400, 2);
        assert!(big > small * 50);
    }

    #[test]
    fn validation_catches_bad_wrr_weights() {
        let mut p = Platform::xentium_manycore(4);
        p.interconnect = Interconnect::Bus {
            arbitration: Arbitration::Wrr {
                weights: vec![1, 1],
                slot_cycles: 4,
            },
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_cache_plus_spm() {
        let mut p = Platform::xentium_manycore(2);
        p.cores[0].cache = Some(CacheConfig::small());
        assert!(p.validate().is_err());
        let p2 = Platform::xentium_manycore(2).with_caches(CacheConfig::small());
        p2.validate().unwrap();
    }

    #[test]
    fn validation_catches_mesh_overflow() {
        let mut p = Platform::kit_tile_noc(2, 2);
        p.cores[3].tile = (5, 5);
        assert!(p.validate().is_err());
    }
}
