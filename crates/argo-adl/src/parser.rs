//! Textual ADL format.
//!
//! A platform is described by a small line-oriented format; `#` starts a
//! comment. Example:
//!
//! ```text
//! platform quad
//! core kind=xentium spm=16384 spm_latency=1 tile=0,0
//! core kind=xentium spm=16384 spm_latency=1 tile=0,1
//! shared size=16777216 latency=12
//! bus arb=wrr slot=4 weights=1,1
//! ```
//!
//! or, for a NoC platform:
//!
//! ```text
//! platform tiles
//! core kind=leon3 spm=8192 spm_latency=2 tile=0,0
//! core kind=leon3 spm=8192 spm_latency=2 tile=0,1
//! shared size=67108864 latency=20
//! noc rows=1 cols=2 router=3 link=1 flit=8 weight=1
//! ```

use crate::{
    Arbitration, CacheConfig, Core, CoreId, CoreKind, CoreTiming, Interconnect, Platform,
    SharedMemory,
};
use std::fmt;

/// Error from the ADL text parser.
#[derive(Debug, Clone, PartialEq)]
pub struct AdlParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for AdlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ADL parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AdlParseError {}

fn err(line: u32, msg: impl Into<String>) -> AdlParseError {
    AdlParseError {
        msg: msg.into(),
        line,
    }
}

struct Fields<'a> {
    line: u32,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(line_no: u32, rest: &'a str) -> Result<Fields<'a>, AdlParseError> {
        let mut pairs = Vec::new();
        for word in rest.split_whitespace() {
            let Some((k, v)) = word.split_once('=') else {
                return Err(err(line_no, format!("expected key=value, found `{word}`")));
            };
            pairs.push((k, v));
        }
        Ok(Fields {
            line: line_no,
            pairs,
        })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn req(&self, key: &str) -> Result<&'a str, AdlParseError> {
        self.get(key)
            .ok_or_else(|| err(self.line, format!("missing required field `{key}`")))
    }

    fn u64_of(&self, key: &str, default: Option<u64>) -> Result<u64, AdlParseError> {
        match (self.get(key), default) {
            (Some(v), _) => v
                .parse()
                .map_err(|_| err(self.line, format!("field `{key}` must be an integer"))),
            (None, Some(d)) => Ok(d),
            (None, None) => Err(err(self.line, format!("missing required field `{key}`"))),
        }
    }

    fn usize_of(&self, key: &str, default: Option<usize>) -> Result<usize, AdlParseError> {
        self.u64_of(key, default.map(|d| d as u64))
            .map(|v| v as usize)
    }
}

/// Parses a platform description from ADL text.
///
/// # Errors
///
/// Returns an [`AdlParseError`] on syntax errors and a validation error
/// (wrapped with line 0) if the resulting platform is inconsistent.
pub fn parse_platform(src: &str) -> Result<Platform, AdlParseError> {
    let mut name: Option<String> = None;
    let mut cores: Vec<Core> = Vec::new();
    let mut shared: Option<SharedMemory> = None;
    let mut interconnect: Option<Interconnect> = None;

    for (i, raw) in src.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match head {
            "platform" => {
                name = Some(rest.trim().to_string());
            }
            "core" => {
                let f = Fields::parse(line_no, rest)?;
                let kind = match f.req("kind")? {
                    "xentium" => CoreKind::XentiumDsp,
                    "leon3" => CoreKind::Leon3Risc,
                    "custom" => CoreKind::Custom,
                    other => return Err(err(line_no, format!("unknown core kind `{other}`"))),
                };
                let timing = match kind {
                    CoreKind::XentiumDsp | CoreKind::Custom => CoreTiming::xentium(),
                    CoreKind::Leon3Risc => CoreTiming::leon3(),
                };
                let tile = match f.get("tile") {
                    Some(t) => {
                        let Some((r, c)) = t.split_once(',') else {
                            return Err(err(line_no, "tile must be `row,col`"));
                        };
                        let r = r.parse().map_err(|_| err(line_no, "bad tile row"))?;
                        let c = c.parse().map_err(|_| err(line_no, "bad tile col"))?;
                        (r, c)
                    }
                    None => (0, cores.len()),
                };
                // Optional data cache: `cache=sets,ways,line,hit,miss`.
                let cache = match f.get("cache") {
                    Some(spec) => {
                        let parts: Vec<u64> = spec
                            .split(',')
                            .map(|x| x.parse().map_err(|_| err(line_no, "bad cache spec")))
                            .collect::<Result<_, _>>()?;
                        if parts.len() != 5 {
                            return Err(err(line_no, "cache spec must be sets,ways,line,hit,miss"));
                        }
                        Some(CacheConfig {
                            sets: parts[0] as usize,
                            ways: parts[1] as usize,
                            line_bytes: parts[2],
                            hit_cycles: parts[3],
                            miss_penalty: parts[4],
                        })
                    }
                    None => None,
                };
                let spm_default = if cache.is_some() { 0 } else { 16 * 1024 };
                cores.push(Core {
                    id: CoreId(cores.len()),
                    kind,
                    timing,
                    spm_bytes: f.u64_of("spm", Some(spm_default))?,
                    spm_latency: f.u64_of("spm_latency", Some(1))?,
                    cache,
                    tile,
                });
            }
            "shared" => {
                let f = Fields::parse(line_no, rest)?;
                shared = Some(SharedMemory {
                    size_bytes: f.u64_of("size", Some(16 << 20))?,
                    latency: f.u64_of("latency", None)?,
                });
            }
            "bus" => {
                let f = Fields::parse(line_no, rest)?;
                let arbitration = match f.req("arb")? {
                    "tdma" => Arbitration::Tdma {
                        slot_cycles: f.u64_of("slot", Some(4))?,
                        total_slots: f.u64_of("slots", Some(cores.len().max(1) as u64))?,
                    },
                    "wrr" => {
                        let slot_cycles = f.u64_of("slot", Some(4))?;
                        let weights = match f.get("weights") {
                            Some(w) => w
                                .split(',')
                                .map(|x| {
                                    x.parse::<u64>().map_err(|_| err(line_no, "bad WRR weight"))
                                })
                                .collect::<Result<Vec<u64>, _>>()?,
                            None => vec![1; cores.len()],
                        };
                        Arbitration::Wrr {
                            weights,
                            slot_cycles,
                        }
                    }
                    "fixedprio" => {
                        let priorities = match f.get("priorities") {
                            Some(p) => p
                                .split(',')
                                .map(|x| {
                                    x.parse::<usize>().map_err(|_| err(line_no, "bad priority"))
                                })
                                .collect::<Result<Vec<usize>, _>>()?,
                            None => (0..cores.len()).collect(),
                        };
                        Arbitration::FixedPriority { priorities }
                    }
                    other => return Err(err(line_no, format!("unknown arbitration `{other}`"))),
                };
                interconnect = Some(Interconnect::Bus { arbitration });
            }
            "noc" => {
                let f = Fields::parse(line_no, rest)?;
                interconnect = Some(Interconnect::Noc {
                    rows: f.usize_of("rows", None)?,
                    cols: f.usize_of("cols", None)?,
                    router_latency: f.u64_of("router", Some(3))?,
                    link_latency: f.u64_of("link", Some(1))?,
                    flit_bytes: f.u64_of("flit", Some(8))?,
                    wrr_weight: f.u64_of("weight", Some(1))?,
                });
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    let platform = Platform {
        name: name.ok_or_else(|| err(0, "missing `platform` line"))?,
        cores,
        shared: shared.ok_or_else(|| err(0, "missing `shared` line"))?,
        interconnect: interconnect.ok_or_else(|| err(0, "missing `bus` or `noc` line"))?,
    };
    platform.validate().map_err(|e| err(0, e.msg))?;
    Ok(platform)
}

/// Renders a platform back to ADL text (round-trips through
/// [`parse_platform`]).
pub fn print_platform(p: &Platform) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "platform {}", p.name);
    for c in &p.cores {
        let _ = write!(
            out,
            "core kind={} spm={} spm_latency={} tile={},{}",
            c.kind, c.spm_bytes, c.spm_latency, c.tile.0, c.tile.1
        );
        if let Some(cc) = &c.cache {
            let _ = write!(
                out,
                " cache={},{},{},{},{}",
                cc.sets, cc.ways, cc.line_bytes, cc.hit_cycles, cc.miss_penalty
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "shared size={} latency={}",
        p.shared.size_bytes, p.shared.latency
    );
    match &p.interconnect {
        Interconnect::Bus { arbitration } => match arbitration {
            Arbitration::Tdma {
                slot_cycles,
                total_slots,
            } => {
                let _ = writeln!(out, "bus arb=tdma slot={slot_cycles} slots={total_slots}");
            }
            Arbitration::Wrr {
                weights,
                slot_cycles,
            } => {
                let w: Vec<String> = weights.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(
                    out,
                    "bus arb=wrr slot={slot_cycles} weights={}",
                    w.join(",")
                );
            }
            Arbitration::FixedPriority { priorities } => {
                let pr: Vec<String> = priorities.iter().map(|x| x.to_string()).collect();
                let _ = writeln!(out, "bus arb=fixedprio priorities={}", pr.join(","));
            }
        },
        Interconnect::Noc {
            rows,
            cols,
            router_latency,
            link_latency,
            flit_bytes,
            wrr_weight,
        } => {
            let _ = writeln!(
                out,
                "noc rows={rows} cols={cols} router={router_latency} link={link_latency} \
                 flit={flit_bytes} weight={wrr_weight}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUAD: &str = "\
# a quad-core WRR platform
platform quad
core kind=xentium spm=16384 spm_latency=1
core kind=xentium spm=16384 spm_latency=1
core kind=xentium spm=16384 spm_latency=1
core kind=xentium spm=16384 spm_latency=1
shared size=16777216 latency=12
bus arb=wrr slot=4 weights=1,1,1,1
";

    #[test]
    fn parses_quad_bus_platform() {
        let p = parse_platform(QUAD).unwrap();
        assert_eq!(p.name, "quad");
        assert_eq!(p.core_count(), 4);
        assert_eq!(p.shared.latency, 12);
        assert!(matches!(
            p.interconnect,
            Interconnect::Bus {
                arbitration: Arbitration::Wrr { .. }
            }
        ));
    }

    #[test]
    fn parses_noc_platform() {
        let src = "\
platform mesh
core kind=leon3 tile=0,0
core kind=leon3 tile=0,1
core kind=leon3 tile=1,0
core kind=leon3 tile=1,1
shared latency=20
noc rows=2 cols=2 router=3 link=1
";
        let p = parse_platform(src).unwrap();
        assert!(p.interconnect.is_noc());
        assert_eq!(p.cores[3].tile, (1, 1));
        assert_eq!(p.cores[1].kind, CoreKind::Leon3Risc);
    }

    #[test]
    fn defaults_are_applied() {
        let src = "platform p\ncore kind=xentium\nshared latency=10\nbus arb=tdma\n";
        let p = parse_platform(src).unwrap();
        assert_eq!(p.cores[0].spm_bytes, 16 * 1024);
        assert!(matches!(
            p.interconnect,
            Interconnect::Bus {
                arbitration: Arbitration::Tdma {
                    slot_cycles: 4,
                    total_slots: 1
                }
            }
        ));
    }

    #[test]
    fn round_trips_presets() {
        for p in [
            Platform::xentium_manycore(3),
            Platform::kit_tile_noc(2, 2),
            Platform::generic_bus(
                2,
                Arbitration::FixedPriority {
                    priorities: vec![1, 0],
                },
            ),
        ] {
            let text = print_platform(&p);
            let q = parse_platform(&text).unwrap();
            assert_eq!(q.core_count(), p.core_count());
            assert_eq!(q.shared, p.shared);
            assert_eq!(q.interconnect, p.interconnect);
        }
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = parse_platform("platform p\nfrobnicate x=1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_missing_required_field() {
        let e = parse_platform("platform p\ncore kind=xentium\nshared size=1\nbus arb=wrr\n")
            .unwrap_err();
        assert!(e.msg.contains("latency"));
    }

    #[test]
    fn rejects_invalid_platform_semantics() {
        // 2 cores but 1 WRR weight.
        let src = "platform p\ncore kind=xentium\ncore kind=xentium\nshared latency=5\n\
                   bus arb=wrr weights=1\n";
        let e = parse_platform(src).unwrap_err();
        assert!(e.msg.contains("weight"));
    }

    #[test]
    fn parses_cache_spec() {
        let src =
            "platform p\ncore kind=xentium cache=16,2,32,1,12\nshared latency=9\nbus arb=tdma\n";
        let p = parse_platform(src).unwrap();
        let c = p.cores[0].cache.expect("cache parsed");
        assert_eq!(c.sets, 16);
        assert_eq!(c.ways, 2);
        assert_eq!(c.capacity_bytes(), 1024);
        assert_eq!(p.cores[0].spm_bytes, 0, "cache replaces the scratchpad");
    }

    #[test]
    fn cache_platform_round_trips() {
        let p = Platform::xentium_manycore(2).with_caches(crate::CacheConfig::small());
        let text = print_platform(&p);
        let q = parse_platform(&text).unwrap();
        assert_eq!(q.cores[0].cache, p.cores[0].cache);
    }

    #[test]
    fn rejects_malformed_cache_spec() {
        let src = "platform p\ncore kind=xentium cache=16,2\nshared latency=9\nbus arb=tdma\n";
        assert!(parse_platform(src).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\n# comment\nplatform p  # trailing\n\ncore kind=custom\nshared latency=7\nbus arb=tdma\n";
        let p = parse_platform(src).unwrap();
        assert_eq!(p.name, "p");
    }
}
