//! Data-cache configuration and a dynamic LRU set-associative model.
//!
//! The paper's § III-B argues that "scratchpad memories are preferred to
//! caches because they enable more precise WCET estimation". The E6
//! ablation quantifies that argument: the same kernel is analysed and
//! simulated once with scratchpads and once with this cache. The static
//! side (must/persistence classification) lives in `argo-wcet`; this module
//! provides the configuration shared by analysis and simulation plus the
//! dynamic LRU model the simulator executes.

/// Configuration of a private LRU set-associative data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
    /// Additional miss penalty in cycles (shared-memory refill, before
    /// arbitration interference).
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small 1 KiB, 2-way cache with 32-byte lines — deliberately tight
    /// so the ablation shows capacity misses.
    pub fn small() -> CacheConfig {
        CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 12,
        }
    }

    /// A 16 KiB, 4-way cache with 32-byte lines.
    pub fn large() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 12,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }

    /// Number of distinct lines the cache can hold.
    pub fn capacity_lines(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// The memory block (line address) containing byte address `addr`.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// The set index of a block.
    pub fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }
}

/// Dynamic LRU cache state, used by the platform simulator.
#[derive(Debug, Clone)]
pub struct LruCache {
    cfg: CacheConfig,
    /// Per set: blocks ordered most-recently-used first.
    sets: Vec<Vec<u64>>,
    /// Statistics: total hits.
    pub hits: u64,
    /// Statistics: total misses.
    pub misses: u64,
}

impl LruCache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> LruCache {
        LruCache {
            cfg,
            sets: vec![Vec::new(); cfg.sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Performs an access to byte address `addr`; returns the latency and
    /// whether it hit.
    pub fn access(&mut self, addr: u64) -> (u64, bool) {
        let block = self.cfg.block_of(addr);
        let set = self.cfg.set_of(block);
        let lru = &mut self.sets[set];
        if let Some(pos) = lru.iter().position(|&b| b == block) {
            lru.remove(pos);
            lru.insert(0, block);
            self.hits += 1;
            (self.cfg.hit_cycles, true)
        } else {
            lru.insert(0, block);
            if lru.len() > self.cfg.ways {
                lru.pop();
            }
            self.misses += 1;
            (self.cfg.hit_cycles + self.cfg.miss_penalty, false)
        }
    }

    /// Invalidates all contents (e.g. at task boundaries when no
    /// persistence across tasks should be assumed).
    pub fn invalidate(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let c = CacheConfig::small();
        assert_eq!(c.capacity_bytes(), 1024);
        assert_eq!(c.capacity_lines(), 32);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = LruCache::new(CacheConfig::small());
        let (_, hit) = c.access(0x100);
        assert!(!hit);
        let (lat, hit) = c.access(0x104); // same 32-byte line
        assert!(hit);
        assert_eq!(lat, 1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way: after touching 3 blocks mapping to the same set, the
        // first is evicted.
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 10,
        };
        let mut c = LruCache::new(cfg);
        c.access(0); // block 0
        c.access(32); // block 1
        c.access(64); // block 2 — evicts block 0
        let (_, hit) = c.access(0);
        assert!(!hit, "block 0 must have been evicted");
        let (_, hit) = c.access(64);
        assert!(hit, "block 2 still resident");
    }

    #[test]
    fn lru_promotion_on_hit() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 10,
        };
        let mut c = LruCache::new(cfg);
        c.access(0);
        c.access(32);
        c.access(0); // promote block 0
        c.access(64); // evicts block 1 (LRU), not block 0
        let (_, hit) = c.access(0);
        assert!(hit);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = LruCache::new(CacheConfig::small());
        c.access(0);
        c.invalidate();
        let (_, hit) = c.access(0);
        assert!(!hit);
    }

    #[test]
    fn working_set_within_capacity_eventually_all_hits() {
        let cfg = CacheConfig::small();
        let mut c = LruCache::new(cfg);
        let addrs: Vec<u64> = (0..cfg.capacity_lines())
            .map(|i| i * cfg.line_bytes)
            .collect();
        for &a in &addrs {
            c.access(a);
        }
        let before = c.misses;
        for _ in 0..3 {
            for &a in &addrs {
                c.access(a);
            }
        }
        assert_eq!(c.misses, before, "steady state: no further misses");
    }
}
