//! The exploration engine: resolves programs, fans points out onto the
//! work-stealing executor, shares artifacts through the content-hash
//! cache and assembles the deterministic report.
//!
//! Two entry points:
//!
//! * [`Explorer::explore`] — the exhaustive sweep: every lattice point
//!   is evaluated;
//! * [`Explorer::search`] — the steered sweep: an `argo-search`
//!   [`SearchStrategy`] picks which points to evaluate under a
//!   [`Budget`], the engine evaluates each requested batch in parallel,
//!   and the report covers the evaluated subset (plus the strategy
//!   metadata).
//!
//! Both share [`Explorer::evaluate_point`], the reusable per-point
//! evaluation API layered on toolflow sessions: canonical fingerprints
//! key all three cache tiers, a [`TimingObserver`] attributes wall time
//! per stage, and failures surface as structured
//! [`Diagnostic`]s.

use crate::cache::ArtifactCache;
use crate::executor::{default_threads, parallel_map};
use crate::observe::{TierTiming, TimingObserver};
use crate::pareto::{pareto_front, Objectives};
use crate::report::{ExplorationReport, PointMetrics, ReportRow, SearchInfo, StoredPoint};
use crate::space::{DesignSpace, ExplorationPoint};
use argo_core::{
    Diagnostic, ErrorCode, Fingerprint, FingerprintHasher, Fingerprintable, Stage, ToolchainConfig,
    Toolflow,
};
use argo_ir::ast::Program;
use argo_search::{Budget, Evaluator, Lattice, SearchStrategy};
use argo_store::Store;
use argo_verify::ToolflowVerifyExt;
use argo_wcet::value::ValueCtx;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads cover `panic!` and failed assertions).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// The `argo_dse_point_wall_us` histogram handle, resolved once.
fn point_wall_histogram() -> &'static Arc<argo_trace::Histogram> {
    static HIST: std::sync::OnceLock<Arc<argo_trace::Histogram>> = std::sync::OnceLock::new();
    HIST.get_or_init(|| {
        argo_trace::metrics().histogram("argo_dse_point_wall_us", argo_trace::LATENCY_US_BUCKETS)
    })
}

/// A program ready to explore: IR, entry point, and the program's
/// canonical content fingerprint, computed once at resolution so
/// per-point sessions skip the print-and-hash pass (cache keys stay
/// API-owned: the value comes from `Toolflow::program_fingerprint`).
struct ResolvedApp {
    program: Program,
    entry: String,
    program_fp: Fingerprint,
}

impl ResolvedApp {
    fn new(program: Program, entry: &str) -> ResolvedApp {
        let program_fp = Toolflow::borrowed(&program, entry).program_fingerprint();
        ResolvedApp {
            program,
            entry: entry.to_string(),
            program_fp,
        }
    }
}

/// Memoized built-in use-case resolutions, keyed by `(name, seed)`.
type ResolvedMemo = Mutex<HashMap<(String, u64), Result<Arc<ResolvedApp>, Diagnostic>>>;

/// Drives [`DesignSpace`] sweeps. The artifact cache lives on the
/// explorer, so repeated [`Explorer::explore`]/[`Explorer::search`]
/// calls (and overlapping spaces) keep sharing artifacts across all
/// three tiers.
pub struct Explorer {
    threads: usize,
    cache: ArtifactCache,
    custom: HashMap<String, Arc<ResolvedApp>>,
    /// Built-in use cases resolved at most once per `(name, seed)`,
    /// shared by every entry point (`explore` pre-resolves its apps,
    /// `evaluate_point` resolves lazily).
    resolved: ResolvedMemo,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// Explorer using all available hardware threads.
    pub fn new() -> Explorer {
        Explorer::with_threads(default_threads())
    }

    /// Explorer with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize) -> Explorer {
        Explorer {
            threads: threads.max(1),
            cache: ArtifactCache::new(),
            custom: HashMap::new(),
            resolved: Mutex::new(HashMap::new()),
        }
    }

    /// Worker threads this explorer uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Backs this explorer's cache onto a persistent [`Store`]: all
    /// three artifact tiers read back / write through, and whole point
    /// outcomes are archived under the `point` namespace. A later
    /// explorer (typically a new process) over the same store dir
    /// warm-starts: points whose input fingerprints are unchanged are
    /// replayed from the archive without running any pipeline stage,
    /// while points whose program/platform/config changed miss their
    /// keys and re-evaluate — incremental re-exploration.
    pub fn with_store(mut self, store: Arc<Store>) -> Explorer {
        self.cache.set_store(store);
        self
    }

    /// The persistent store backing this explorer, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.cache.store()
    }

    /// Registers a custom program under `name`, shadowing the built-in
    /// use cases. Useful for exploring programs that are not part of
    /// `argo_apps` (and for fast tests).
    pub fn register_program(&mut self, name: &str, program: Program, entry: &str) {
        self.custom
            .insert(name.to_string(), Arc::new(ResolvedApp::new(program, entry)));
    }

    /// Current artifact-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    fn resolve(&self, name: &str, seed: u64) -> Result<Arc<ResolvedApp>, Diagnostic> {
        if let Some(app) = self.custom.get(name) {
            return Ok(Arc::clone(app));
        }
        let mut memo = self.resolved.lock().unwrap();
        if let Some(cached) = memo.get(&(name.to_string(), seed)) {
            return cached.clone();
        }
        let resolved = match name {
            "egpws" => Ok(argo_apps::egpws::use_case(seed)),
            "weaa" => Ok(argo_apps::weaa::use_case(seed)),
            "polka" => Ok(argo_apps::polka::use_case(seed)),
            other => Err(Diagnostic::new(
                Stage::Frontend,
                ErrorCode::UnknownProgram,
                format!(
                    "unknown use case `{other}` (built-ins: egpws, weaa, polka; \
                     or register a custom program)"
                ),
            )
            .with_entity(other)),
        }
        .map(|uc| Arc::new(ResolvedApp::new(uc.program, uc.entry)));
        memo.insert((name.to_string(), seed), resolved.clone());
        resolved
    }

    /// Evaluates one fully-specified point: resolves its app by name
    /// (memoized per `(name, seed)`), drives a toolflow session through
    /// the shared three-tier cache and returns the report row. This is
    /// the per-point API the search strategies and external drivers
    /// reuse; `space` supplies the cross-point knobs (feedback rounds,
    /// synthetic-input seed).
    pub fn evaluate_point(&self, point: ExplorationPoint, space: &DesignSpace) -> ReportRow {
        self.evaluate_observed(point, space, None)
    }

    /// Like [`Explorer::evaluate_point`], but attaches `obs` to the
    /// point's toolflow session so stage events stream to the caller
    /// while the evaluation runs — a point answered entirely from the
    /// point archive emits no events. This is the per-request entry
    /// point of `argo-serve`, which forwards the events to clients as
    /// progress frames.
    pub fn evaluate_point_observed(
        &self,
        point: ExplorationPoint,
        space: &DesignSpace,
        obs: &dyn argo_core::StageObserver,
    ) -> ReportRow {
        self.evaluate_observed(point, space, Some(obs))
    }

    fn evaluate_observed(
        &self,
        point: ExplorationPoint,
        space: &DesignSpace,
        obs: Option<&dyn argo_core::StageObserver>,
    ) -> ReportRow {
        // Per-point span (stage spans opened inside nest under it) and
        // wall-time histogram. One histogram observe per multi-ms
        // evaluation is noise; the handle is cached in a static so the
        // registry mutex is off this path.
        let _span = argo_trace::span("dse.point");
        let t0 = Instant::now();
        let row = match self.resolve(&point.app, space.seed) {
            // Panic isolation: a bug surfacing mid-evaluation (or an
            // injected chaos panic in the store backend) becomes one
            // failed row with a transient `internal-error` diagnostic
            // instead of tearing down the sweep — and since the panic
            // aborted before the point archive was written, nothing
            // poisonous persists.
            Ok(app) => {
                let p = point.clone();
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.evaluate(&app, p, space, obs)
                })) {
                    Ok(row) => row,
                    Err(payload) => {
                        argo_trace::metrics()
                            .counter("argo_dse_point_panics_total")
                            .inc();
                        let spm_effective = point.spm_bytes.unwrap_or(0);
                        ReportRow {
                            point,
                            spm_effective,
                            outcome: Err(Diagnostic::new(
                                Stage::Backend,
                                ErrorCode::InternalError,
                                format!("point evaluation panicked: {}", panic_message(&payload)),
                            )),
                        }
                    }
                }
            }
            Err(diagnostic) => {
                let spm_effective = point.spm_bytes.unwrap_or(0);
                ReportRow {
                    point,
                    spm_effective,
                    outcome: Err(diagnostic),
                }
            }
        };
        point_wall_histogram().observe(t0.elapsed().as_micros() as u64);
        row
    }

    /// Runs the full sweep and returns the report. Rows are in
    /// [`DesignSpace::points`] order regardless of thread count.
    pub fn explore(&self, space: &DesignSpace) -> ExplorationReport {
        let t0 = Instant::now();
        let points = space.points();

        // Resolve each distinct app once, sequentially and in order —
        // use-case construction is itself seeded and deterministic.
        for p in &points {
            let _ = self.resolve(&p.app, space.seed);
        }

        let timing_obs = TimingObserver::new();
        let stats_before = self.cache.stats();
        let rows = parallel_map(points, self.threads, &|_idx, point: ExplorationPoint| {
            self.evaluate_observed(point, space, Some(&timing_obs))
        });
        let pareto = front_of(&rows);
        self.finish_report(rows, pareto, t0, &timing_obs, stats_before, None)
    }

    /// Runs a budgeted, strategy-steered sweep: only the points the
    /// strategy requests are evaluated (each batch fanned out over the
    /// worker pool), and the report contains exactly the evaluated
    /// subset in lattice order. Deterministic for a fixed
    /// `(space, strategy, budget)` triple, for any thread count — the
    /// search seed is the space's seed.
    pub fn search(
        &self,
        space: &DesignSpace,
        strategy: &dyn SearchStrategy,
        budget: Budget,
    ) -> ExplorationReport {
        let t0 = Instant::now();
        let points = space.points();
        let lattice = Lattice::new(vec![
            space.apps.len(),
            space.platforms.len(),
            space.cores.len(),
            space.schedulers.len(),
            space.granularities.len(),
            space.chunking.len(),
            space.spm_capacities.len(),
        ]);
        debug_assert_eq!(lattice.len(), points.len(), "lattice mirrors points()");

        let timing_obs = TimingObserver::new();
        let stats_before = self.cache.stats();
        let evaluated_rows: Mutex<BTreeMap<usize, ReportRow>> = Mutex::new(BTreeMap::new());
        let evaluations;
        {
            let mut eval_fn = |batch: &[usize]| -> Vec<Option<Objectives>> {
                let jobs: Vec<usize> = batch.to_vec();
                let rows = parallel_map(jobs, self.threads, &|_j, idx: usize| {
                    (
                        idx,
                        self.evaluate_observed(points[idx].clone(), space, Some(&timing_obs)),
                    )
                });
                let objectives = rows.iter().map(|(_, row)| row.objectives()).collect();
                evaluated_rows.lock().unwrap().extend(rows);
                objectives
            };
            let mut evaluator = Evaluator::new(budget, &mut eval_fn);
            strategy.search(&lattice, space.seed, &mut evaluator);
            evaluations = evaluator.evaluations();
        }

        let rows: Vec<ReportRow> = evaluated_rows.into_inner().unwrap().into_values().collect();
        let pareto = front_of(&rows);
        let info = SearchInfo {
            strategy: strategy.name(),
            seed: space.seed,
            budget,
            lattice_points: lattice.len(),
            evaluated: evaluations,
        };
        self.finish_report(rows, pareto, t0, &timing_obs, stats_before, Some(info))
    }

    fn finish_report(
        &self,
        rows: Vec<ReportRow>,
        pareto: Vec<usize>,
        t0: Instant,
        timing_obs: &TimingObserver,
        stats_before: crate::cache::CacheStats,
        search: Option<SearchInfo>,
    ) -> ExplorationReport {
        let stats_after = self.cache.stats();
        let mut timing = timing_obs.snapshot();
        timing.schedule_builds = TierTiming {
            runs: stats_after.sched_misses - stats_before.sched_misses,
            nanos: stats_after.sched_build_ns - stats_before.sched_build_ns,
        };
        ExplorationReport {
            rows,
            pareto,
            cache: stats_after,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            threads: self.threads,
            timing,
            search,
        }
    }

    fn evaluate(
        &self,
        app: &ResolvedApp,
        point: ExplorationPoint,
        space: &DesignSpace,
        obs: Option<&dyn argo_core::StageObserver>,
    ) -> ReportRow {
        let cfg = ToolchainConfig {
            granularity: point.granularity,
            chunk_loops: point.chunk_loops,
            scheduler: point.scheduler,
            mhp: point.mhp,
            feedback_rounds: space.feedback_rounds,
            value_ctx: ValueCtx::default(),
        };
        let platform = point.platform.build(point.cores, point.spm_bytes);
        let spm_effective = platform.cores.first().map(|c| c.spm_bytes).unwrap_or(0);

        // Point archive: the key fingerprints every evaluation input —
        // program content, entry point, platform parameters, toolchain
        // configuration. The whole pipeline is deterministic in those
        // inputs, so an archived outcome (success or diagnostic) can be
        // replayed verbatim; any edit changes a fingerprint and the
        // point re-evaluates.
        let point_key = FingerprintHasher::new()
            .write_str("point-inputs")
            .write_fingerprint(app.program_fp)
            .write_str(&app.entry)
            .write_fingerprint(platform.fingerprint())
            .write_fingerprint(cfg.fingerprint())
            .finish();
        if let Some(stored) = self.cache.point_get::<StoredPoint>(point_key) {
            return ReportRow {
                point,
                spm_effective: stored.spm_effective,
                outcome: stored.outcome,
            };
        }
        let outcome = self.evaluate_uncached(app, &cfg, &platform, obs);
        // Ordinary diagnostics are deterministic in those same inputs
        // and archive with the outcome; transient ones (deadline,
        // caught panic, leader failure) are not — archiving one would
        // replay the infrastructure failure verbatim forever.
        if !matches!(&outcome, Err(d) if d.code.is_transient()) {
            self.cache.point_put(
                point_key,
                &StoredPoint {
                    spm_effective,
                    outcome: outcome.clone(),
                },
            );
        }
        ReportRow {
            point,
            spm_effective,
            outcome,
        }
    }

    /// Runs the full staged pipeline for one point (all cache tiers
    /// consulted, point archive already missed).
    fn evaluate_uncached(
        &self,
        app: &ResolvedApp,
        cfg: &ToolchainConfig,
        platform: &argo_adl::Platform,
        obs: Option<&dyn argo_core::StageObserver>,
    ) -> Result<PointMetrics, Diagnostic> {
        if let Err(e) = platform.validate() {
            return Err(
                Diagnostic::new(Stage::Backend, ErrorCode::InvalidPlatform, e.to_string())
                    .with_entity(&platform.name),
            );
        }
        // One session drives the whole point: it owns the canonical
        // per-stage input fingerprints (the cache keys) and the staged
        // builds on a miss. The session borrows the resolved program
        // and reuses its once-computed fingerprint, so a cache hit
        // costs neither a deep clone nor a print-and-hash pass. The
        // schedule cache (third tier) intercepts every mapping-stage
        // invocation inside the backend's feedback loop.
        let mut flow = Toolflow::borrowed(&app.program, &app.entry)
            .platform(platform)
            .config(cfg.clone())
            .with_program_fingerprint(app.program_fp)
            .schedule_cache(&self.cache);
        if let Some(obs) = obs {
            flow = flow.observer(obs);
        }

        // Tier 1: frontend artifact — shared by every point with the same
        // program text, entry, transform options and core count.
        let frontend_key = flow
            .frontend_fingerprint()
            .expect("platform is bound on the session");
        let artifact = self.cache.frontend(frontend_key, || flow.run_frontend())?;

        // Tier 2: round-0 code-level WCETs — shared by every point with
        // the same frontend artifact *and* platform (e.g. the scheduler
        // axis).
        let cost_key = flow
            .seed_cost_fingerprint()
            .expect("platform is bound on the session");
        let costs = self
            .cache
            .seed_costs(cost_key, || flow.run_seed_costs(&artifact))?;

        let r = flow.run_backend((*artifact).clone(), Some(&costs))?;

        // Independent verification gates every successful point: an
        // error-severity finding turns the row into a structured
        // failure (class `verify/<code>`), warnings are surfaced as a
        // count in the metrics.
        let verdict = flow.run_verify(&r)?;
        verdict.gate()?;
        Ok(PointMetrics {
            tasks: r.parallel.graph.len(),
            signals: r.parallel.sync_count(),
            seq_bound: r.sequential_bound,
            par_bound: r.system.bound,
            speedup: r.wcet_speedup(),
            feedback_iterations: r.feedback_iterations,
            verify_findings: verdict.findings.len(),
        })
    }
}

/// Pareto front over the successful rows (indices into `rows`).
fn front_of(rows: &[ReportRow]) -> Vec<usize> {
    let successes: Vec<(usize, Objectives)> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| Some(i).zip(r.objectives()))
        .collect();
    let objectives: Vec<Objectives> = successes.iter().map(|&(_, o)| o).collect();
    pareto_front(&objectives)
        .into_iter()
        .map(|k| successes[k].0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PlatformKind;
    use argo_core::SchedulerKind;
    use argo_ir::parse::parse_program;
    use argo_search::Genetic;

    const MAP_REDUCE: &str = r#"
        real main(real a[64], real b[64]) {
            real s; int i;
            s = 0.0;
            for (i = 0; i < 64; i = i + 1) {
                b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
            }
            for (i = 0; i < 64; i = i + 1) { s = s + b[i]; }
            return s;
        }
    "#;

    fn tiny_explorer() -> Explorer {
        let mut ex = Explorer::with_threads(4);
        ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
        ex
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace::new()
            .app("tiny")
            .cores(vec![1, 2, 4])
            .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal])
    }

    #[test]
    fn sweep_produces_ordered_successful_rows_and_front() {
        let ex = tiny_explorer();
        let report = ex.explore(&tiny_space());
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.failures(), 0);
        assert!(!report.pareto.is_empty());
        // Row order follows the axis order (cores slowest of the two).
        assert_eq!(report.rows[0].point.cores, 1);
        assert_eq!(report.rows[0].point.scheduler, SchedulerKind::List);
        assert_eq!(report.rows[1].point.scheduler, SchedulerKind::Anneal);
        assert_eq!(report.rows[5].point.cores, 4);
        // The timing observer attributed the builds: one frontend per
        // core count, one backend per point.
        assert_eq!(report.timing.frontend.runs, 3);
        assert_eq!(report.timing.backend.runs, 6);
        // … and one verification pass per backend build, all clean.
        assert_eq!(report.timing.verify.runs, 6);
        for (_, m) in report.successes() {
            assert_eq!(m.verify_findings, 0);
        }
        assert!(report.search.is_none());
    }

    #[test]
    fn scheduler_axis_shares_both_artifact_tiers() {
        let ex = tiny_explorer();
        ex.explore(
            &DesignSpace::new()
                .app("tiny")
                .cores(vec![2])
                .schedulers(vec![
                    SchedulerKind::List,
                    SchedulerKind::BranchAndBound,
                    SchedulerKind::Anneal,
                ]),
        );
        let s = ex.cache_stats();
        // One frontend and one cost table, shared across 3 schedulers.
        assert_eq!(s.frontend_misses, 1);
        assert_eq!(s.frontend_hits, 2);
        assert_eq!(s.cost_misses, 1);
        assert_eq!(s.cost_hits, 2);
    }

    #[test]
    fn evaluate_point_matches_explore_rows() {
        let ex = tiny_explorer();
        let space = tiny_space();
        let report = ex.explore(&space);
        for (row, point) in report.rows.iter().zip(space.points()) {
            let single = ex.evaluate_point(point, &space);
            assert_eq!(&single, row, "single-point API must agree with sweeps");
        }
    }

    #[test]
    fn unknown_app_yields_error_rows_not_panics() {
        let ex = Explorer::with_threads(2);
        let report = ex.explore(&DesignSpace::new().app("nope"));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.failures(), 1);
        assert!(report.pareto.is_empty());
        let err = report.rows[0].outcome.as_ref().unwrap_err();
        assert_eq!(err.code, argo_core::ErrorCode::UnknownProgram);
        assert_eq!(err.entity.as_deref(), Some("nope"));
        assert!(err.message.contains("unknown use case"));
        assert_eq!(
            report.failure_classes(),
            vec![("frontend/unknown-program".to_string(), 1)]
        );
    }

    /// Panic isolation: an injected chaos panic inside the store
    /// backend surfaces as one transient `internal-error` row; the
    /// sweep and the process survive, and nothing poisonous is
    /// archived — a later evaluation over a healthy backend succeeds.
    #[test]
    fn panicking_point_becomes_an_internal_error_row_and_is_not_archived() {
        use argo_chaos::{ChaosIo, FaultPlan};
        let dir = std::env::temp_dir().join(format!("argo-dse-chaos-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let space = tiny_space();
        {
            let plan = FaultPlan {
                panic: 1000,
                ..FaultPlan::quiet(5)
            };
            let store = Arc::new(Store::open_with_io(&dir, Arc::new(ChaosIo::new(plan))).unwrap());
            let mut ex = Explorer::with_threads(2);
            ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
            let ex = ex.with_store(store);
            let report = ex.explore(&space);
            assert_eq!(report.rows.len(), 6, "the sweep completed");
            assert_eq!(report.failures(), 6, "every point hit the panic");
            for row in &report.rows {
                let err = row.outcome.as_ref().unwrap_err();
                assert_eq!(err.code, argo_core::ErrorCode::InternalError);
                assert!(err.message.contains("panicked"), "{}", err.message);
            }
        }
        // Same store dir, healthy backend: had the panic rows been
        // archived, these would replay internal-error; instead every
        // point evaluates cleanly.
        let store = Arc::new(Store::open(&dir).unwrap());
        let mut ex = Explorer::with_threads(2);
        ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
        let ex = ex.with_store(store);
        let report = ex.explore(&space);
        assert_eq!(report.failures(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A deadline tripping at a stage boundary yields a transient
    /// `deadline-exceeded` row, and neither the point archive nor the
    /// in-memory tiers replay it once the pressure is gone.
    #[test]
    fn deadline_exceeded_rows_are_transient_not_cached() {
        use argo_core::{CancelToken, StageObserver};

        #[derive(Debug)]
        struct CancelObserver(CancelToken);
        impl StageObserver for CancelObserver {
            fn checkpoint(&self, stage: Stage) -> Result<(), Diagnostic> {
                self.0.check(stage)
            }
        }

        let dir = std::env::temp_dir().join(format!("argo-dse-deadline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let mut ex = Explorer::with_threads(1);
        ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
        let ex = ex.with_store(store);
        let space = tiny_space();
        let point = space.points().remove(0);

        let token = CancelToken::new();
        token.cancel();
        let row = ex.evaluate_point_observed(point.clone(), &space, &CancelObserver(token));
        let err = row.outcome.unwrap_err();
        assert_eq!(err.code, argo_core::ErrorCode::DeadlineExceeded);

        // Without the deadline the same point now evaluates for real.
        let row = ex.evaluate_point(point, &space);
        assert!(row.outcome.is_ok(), "{:?}", row.outcome);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let space = tiny_space();
        let csv: Vec<String> = [1, 2, 8]
            .iter()
            .map(|&t| {
                let mut ex = Explorer::with_threads(t);
                ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
                ex.explore(&space).to_csv()
            })
            .collect();
        assert_eq!(csv[0], csv[1]);
        assert_eq!(csv[1], csv[2]);
    }

    #[test]
    fn noc_points_compile_too() {
        let ex = tiny_explorer();
        let report = ex.explore(
            &DesignSpace::new()
                .app("tiny")
                .platforms(vec![PlatformKind::Noc])
                .cores(vec![4]),
        );
        assert_eq!(report.failures(), 0);
        let m = report.rows[0].outcome.as_ref().unwrap();
        assert!(m.par_bound > 0);
    }

    #[test]
    fn searched_sweep_stays_within_budget_and_reports_metadata() {
        let ex = tiny_explorer();
        let space = tiny_space()
            .granularities(vec![
                argo_htg::Granularity::Loop,
                argo_htg::Granularity::Block,
            ])
            .chunking(vec![true, false]);
        assert_eq!(space.len(), 24);
        let report = ex.search(&space, &Genetic::new(), Budget::evaluations(12));
        let info = report.search.as_ref().expect("search metadata");
        assert_eq!(info.strategy, "ga");
        assert_eq!(info.lattice_points, 24);
        assert!(info.evaluated <= 12);
        assert_eq!(report.rows.len(), info.evaluated);
        assert!(!report.pareto.is_empty());
        // Rows arrive in lattice order: strictly increasing point labels
        // under the DesignSpace enumeration.
        let all_points = space.points();
        let mut cursor = 0;
        for row in &report.rows {
            let pos = all_points[cursor..]
                .iter()
                .position(|p| *p == row.point)
                .expect("row must be a lattice point, in order");
            cursor += pos + 1;
        }
    }
}
