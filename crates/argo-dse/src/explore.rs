//! The exploration engine: resolves programs, fans points out onto the
//! work-stealing executor, shares artifacts through the content-hash
//! cache and assembles the deterministic report.

use crate::cache::{ArtifactCache, CacheStats};
use crate::executor::{default_threads, parallel_map};
use crate::pareto::pareto_front;
use crate::report::{ExplorationReport, PointMetrics, ReportRow};
use crate::space::{DesignSpace, ExplorationPoint};
use argo_core::{Fingerprint, ToolchainConfig, Toolflow};
use argo_ir::ast::Program;
use argo_wcet::value::ValueCtx;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A program ready to explore: IR, entry point, and the program's
/// canonical content fingerprint, computed once at resolution so
/// per-point sessions skip the print-and-hash pass (cache keys stay
/// API-owned: the value comes from `Toolflow::program_fingerprint`).
struct ResolvedApp {
    program: Program,
    entry: String,
    program_fp: Fingerprint,
}

impl ResolvedApp {
    fn new(program: Program, entry: &str) -> ResolvedApp {
        let program_fp = Toolflow::borrowed(&program, entry).program_fingerprint();
        ResolvedApp {
            program,
            entry: entry.to_string(),
            program_fp,
        }
    }
}

/// Drives [`DesignSpace`] sweeps. The artifact cache lives on the
/// explorer, so repeated [`Explorer::explore`] calls (and overlapping
/// spaces) keep sharing artifacts.
pub struct Explorer {
    threads: usize,
    cache: ArtifactCache,
    custom: HashMap<String, Arc<ResolvedApp>>,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// Explorer using all available hardware threads.
    pub fn new() -> Explorer {
        Explorer::with_threads(default_threads())
    }

    /// Explorer with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize) -> Explorer {
        Explorer {
            threads: threads.max(1),
            cache: ArtifactCache::new(),
            custom: HashMap::new(),
        }
    }

    /// Worker threads this explorer uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Registers a custom program under `name`, shadowing the built-in
    /// use cases. Useful for exploring programs that are not part of
    /// `argo_apps` (and for fast tests).
    pub fn register_program(&mut self, name: &str, program: Program, entry: &str) {
        self.custom
            .insert(name.to_string(), Arc::new(ResolvedApp::new(program, entry)));
    }

    /// Current artifact-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn resolve(&self, name: &str, seed: u64) -> Result<Arc<ResolvedApp>, String> {
        if let Some(app) = self.custom.get(name) {
            return Ok(Arc::clone(app));
        }
        let uc = match name {
            "egpws" => argo_apps::egpws::use_case(seed),
            "weaa" => argo_apps::weaa::use_case(seed),
            "polka" => argo_apps::polka::use_case(seed),
            other => {
                return Err(format!(
                    "unknown use case `{other}` (built-ins: egpws, weaa, polka; \
                     or register a custom program)"
                ))
            }
        };
        Ok(Arc::new(ResolvedApp::new(uc.program, uc.entry)))
    }

    /// Runs the full sweep and returns the report. Rows are in
    /// [`DesignSpace::points`] order regardless of thread count.
    pub fn explore(&self, space: &DesignSpace) -> ExplorationReport {
        let t0 = Instant::now();
        let points = space.points();

        // Resolve each distinct app once, sequentially and in order —
        // use-case construction is itself seeded and deterministic.
        let mut apps: HashMap<String, Result<Arc<ResolvedApp>, String>> = HashMap::new();
        for p in &points {
            if !apps.contains_key(&p.app) {
                apps.insert(p.app.clone(), self.resolve(&p.app, space.seed));
            }
        }

        let rows = parallel_map(
            points,
            self.threads,
            &|_idx, point: ExplorationPoint| match &apps[&point.app] {
                Ok(app) => self.evaluate(app, point, space),
                Err(e) => {
                    let spm_effective = point.spm_bytes.unwrap_or(0);
                    ReportRow {
                        point,
                        spm_effective,
                        outcome: Err(e.clone()),
                    }
                }
            },
        );

        let successes: Vec<(usize, [u64; 3])> = rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| Some(i).zip(r.objectives()))
            .collect();
        let objectives: Vec<[u64; 3]> = successes.iter().map(|(_, o)| *o).collect();
        let pareto: Vec<usize> = pareto_front(&objectives)
            .into_iter()
            .map(|k| successes[k].0)
            .collect();

        ExplorationReport {
            rows,
            pareto,
            cache: self.cache.stats(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            threads: self.threads,
        }
    }

    fn evaluate(
        &self,
        app: &ResolvedApp,
        point: ExplorationPoint,
        space: &DesignSpace,
    ) -> ReportRow {
        let cfg = ToolchainConfig {
            granularity: point.granularity,
            chunk_loops: point.chunk_loops,
            scheduler: point.scheduler,
            mhp: point.mhp,
            feedback_rounds: space.feedback_rounds,
            value_ctx: ValueCtx::default(),
        };
        let platform = point.platform.build(point.cores, point.spm_bytes);
        let spm_effective = platform.cores.first().map(|c| c.spm_bytes).unwrap_or(0);
        if let Err(e) = platform.validate() {
            return ReportRow {
                point,
                spm_effective,
                outcome: Err(e.to_string()),
            };
        }
        // One session drives the whole point: it owns the canonical
        // per-stage input fingerprints (the cache keys) and the staged
        // builds on a miss. The session borrows the resolved program
        // and reuses its once-computed fingerprint, so a cache hit
        // costs neither a deep clone nor a print-and-hash pass.
        let flow = Toolflow::borrowed(&app.program, &app.entry)
            .platform(&platform)
            .config(cfg)
            .with_program_fingerprint(app.program_fp);

        // Tier 1: frontend artifact — shared by every point with the same
        // program text, entry, transform options and core count.
        let frontend_key = flow
            .frontend_fingerprint()
            .expect("platform is bound on the session");
        let artifact = match self.cache.frontend(frontend_key, || flow.run_frontend()) {
            Ok(a) => a,
            Err(e) => {
                return ReportRow {
                    point,
                    spm_effective,
                    outcome: Err(e.to_string()),
                }
            }
        };

        // Tier 2: round-0 code-level WCETs — shared by every point with
        // the same frontend artifact *and* platform (e.g. the scheduler
        // axis).
        let cost_key = flow
            .seed_cost_fingerprint()
            .expect("platform is bound on the session");
        let costs = match self
            .cache
            .seed_costs(cost_key, || flow.run_seed_costs(&artifact))
        {
            Ok(c) => c,
            Err(e) => {
                return ReportRow {
                    point,
                    spm_effective,
                    outcome: Err(e.to_string()),
                }
            }
        };

        match flow.run_backend((*artifact).clone(), Some(&costs)) {
            Ok(r) => ReportRow {
                point,
                spm_effective,
                outcome: Ok(PointMetrics {
                    tasks: r.parallel.graph.len(),
                    signals: r.parallel.sync_count(),
                    seq_bound: r.sequential_bound,
                    par_bound: r.system.bound,
                    speedup: r.wcet_speedup(),
                    feedback_iterations: r.feedback_iterations,
                }),
            },
            Err(e) => ReportRow {
                point,
                spm_effective,
                outcome: Err(e.to_string()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PlatformKind;
    use argo_core::SchedulerKind;
    use argo_ir::parse::parse_program;

    const MAP_REDUCE: &str = r#"
        real main(real a[64], real b[64]) {
            real s; int i;
            s = 0.0;
            for (i = 0; i < 64; i = i + 1) {
                b[i] = sqrt(a[i]) * 2.0 + sin(a[i]);
            }
            for (i = 0; i < 64; i = i + 1) { s = s + b[i]; }
            return s;
        }
    "#;

    fn tiny_explorer() -> Explorer {
        let mut ex = Explorer::with_threads(4);
        ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
        ex
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace::new()
            .app("tiny")
            .cores(vec![1, 2, 4])
            .schedulers(vec![SchedulerKind::List, SchedulerKind::Anneal])
    }

    #[test]
    fn sweep_produces_ordered_successful_rows_and_front() {
        let ex = tiny_explorer();
        let report = ex.explore(&tiny_space());
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.failures(), 0);
        assert!(!report.pareto.is_empty());
        // Row order follows the axis order (cores slowest of the two).
        assert_eq!(report.rows[0].point.cores, 1);
        assert_eq!(report.rows[0].point.scheduler, SchedulerKind::List);
        assert_eq!(report.rows[1].point.scheduler, SchedulerKind::Anneal);
        assert_eq!(report.rows[5].point.cores, 4);
    }

    #[test]
    fn scheduler_axis_shares_both_artifact_tiers() {
        let ex = tiny_explorer();
        ex.explore(
            &DesignSpace::new()
                .app("tiny")
                .cores(vec![2])
                .schedulers(vec![
                    SchedulerKind::List,
                    SchedulerKind::BranchAndBound,
                    SchedulerKind::Anneal,
                ]),
        );
        let s = ex.cache_stats();
        // One frontend and one cost table, shared across 3 schedulers.
        assert_eq!(s.frontend_misses, 1);
        assert_eq!(s.frontend_hits, 2);
        assert_eq!(s.cost_misses, 1);
        assert_eq!(s.cost_hits, 2);
    }

    #[test]
    fn unknown_app_yields_error_rows_not_panics() {
        let ex = Explorer::with_threads(2);
        let report = ex.explore(&DesignSpace::new().app("nope"));
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.failures(), 1);
        assert!(report.pareto.is_empty());
        assert!(report.rows[0]
            .outcome
            .as_ref()
            .unwrap_err()
            .contains("unknown use case"));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let space = tiny_space();
        let csv: Vec<String> = [1, 2, 8]
            .iter()
            .map(|&t| {
                let mut ex = Explorer::with_threads(t);
                ex.register_program("tiny", parse_program(MAP_REDUCE).unwrap(), "main");
                ex.explore(&space).to_csv()
            })
            .collect();
        assert_eq!(csv[0], csv[1]);
        assert_eq!(csv[1], csv[2]);
    }

    #[test]
    fn noc_points_compile_too() {
        let ex = tiny_explorer();
        let report = ex.explore(
            &DesignSpace::new()
                .app("tiny")
                .platforms(vec![PlatformKind::Noc])
                .cores(vec![4]),
        );
        assert_eq!(report.failures(), 0);
        let m = report.rows[0].outcome.as_ref().unwrap();
        assert!(m.par_bound > 0);
    }
}
