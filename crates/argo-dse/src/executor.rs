//! Work-stealing parallel executor with deterministic result ordering.
//!
//! Built from std threads, mutex-guarded deques and an mpsc channel — the
//! container ships no external concurrency crates, and the workload
//! (dozens to thousands of independent compile/analyze jobs, each many
//! milliseconds) does not need lock-free deques to scale.
//!
//! Scheme: the items are dealt round-robin onto one deque per worker.
//! A worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of a victim's deque (classic Arora–Blumofe–
//! Plaxton orientation, which keeps owner and thief mostly on opposite
//! ends). Results carry their original index and are re-assembled into
//! input order, so the output is identical for any thread count or
//! steal interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Number of workers to use by default: the machine's parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a work-stealing pool of `threads` workers
/// and returns the results **in input order**.
///
/// `f` receives `(index, item)` and must be safe to call from any worker.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (remaining jobs may or may
/// not have run).
pub fn parallel_map<I, T, F>(items: Vec<I>, threads: usize, f: &F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    // Utilization accounting (busy µs vs. wall µs × workers) is gated
    // so a metrics-off process pays nothing per job.
    let instrumented = argo_trace::metrics_on();
    let busy_us = AtomicU64::new(0);
    let t0 = Instant::now();
    let run = |i: usize, item: I| {
        if instrumented {
            let start = Instant::now();
            let out = f(i, item);
            busy_us.fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
            out
        } else {
            f(i, item)
        }
    };
    let publish = |workers: u64| {
        if instrumented {
            let m = argo_trace::metrics();
            m.counter("argo_dse_worker_busy_us_total")
                .add(busy_us.load(Ordering::Relaxed));
            m.counter("argo_dse_worker_wall_us_total")
                .add(t0.elapsed().as_micros() as u64 * workers);
        }
    };
    if workers == 1 {
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(i, item))
            .collect();
        publish(1);
        return out;
    }

    // Deal the indexed items round-robin onto per-worker deques.
    let deques: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back((i, item));
    }

    type JobOutcome<T> = Result<T, Box<dyn std::any::Any + Send>>;
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();
    let out = std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let run = &run;
            scope.spawn(move || loop {
                // Own work first (front). The guard MUST drop before the
                // steal scan: holding the own lock while taking a victim's
                // lock is an AB-BA deadlock once two workers steal from
                // each other simultaneously.
                let own = deques[me].lock().unwrap().pop_front();
                let job = own.or_else(|| {
                    (1..workers)
                        .map(|d| (me + d) % workers)
                        .find_map(|victim| deques[victim].lock().unwrap().pop_back())
                });
                match job {
                    Some((idx, item)) => {
                        // Capture a panicking job's payload instead of
                        // letting it kill the worker: the caller re-raises
                        // the original panic, not a secondary
                        // "missing result" one.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run(idx, item)
                            }));
                        if tx.send((idx, outcome)).is_err() {
                            return;
                        }
                    }
                    // All deques empty: the static job set is exhausted
                    // (no job spawns new jobs), so this worker is done.
                    None => return,
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
        for (idx, value) in rx {
            slots[idx] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| match s {
                Some(Ok(v)) => v,
                Some(Err(payload)) => std::panic::resume_unwind(payload),
                None => panic!("job {i} produced no result"),
            })
            .collect()
    });
    publish(workers as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let square = |_i: usize, x: u64| x * x;
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(items.clone(), threads, &square),
                expect,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 7, &|i, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            i + x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out[99], 198);
    }

    #[test]
    fn uneven_job_durations_are_stolen() {
        // First worker gets the slow jobs under round-robin dealing; the
        // result must still be ordered and complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(items, 4, &|i, x| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, &|_, x| x);
        assert!(out.is_empty());
    }

    /// Regression: with one job per worker, every worker enters the steal
    /// scan at the same time. Holding the own-deque lock across the scan
    /// (the original code shape) deadlocks here within a few hundred
    /// iterations; the fix drops the own guard before stealing.
    #[test]
    fn simultaneous_stealing_does_not_deadlock() {
        for round in 0..500 {
            let items: Vec<u64> = vec![round, round + 1];
            let out = parallel_map(items, 2, &|_, x| x * 2);
            assert_eq!(out, vec![round * 2, (round + 1) * 2]);
        }
    }

    /// Pool survival: one panicking job must not take its worker (or
    /// the pool) down — every other job still runs to completion, so a
    /// caller that isolates panics per job (the explorer) gets a full
    /// result set.
    #[test]
    fn panicking_job_does_not_stop_the_other_jobs() {
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..64).collect::<Vec<u32>>(), 4, &|i, x| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(i != 9, "job nine exploded");
                x
            })
        });
        assert!(result.is_err(), "the panic still reaches the caller");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            64,
            "all jobs ran despite the panic"
        );
    }

    #[test]
    fn job_panic_propagates_with_original_message() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..8).collect::<Vec<u32>>(), 3, &|i, x| {
                assert!(i != 5, "job five exploded");
                x
            })
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a message");
        assert!(msg.contains("job five exploded"), "got: {msg}");
    }
}
