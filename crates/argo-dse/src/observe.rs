//! Per-stage wall-time attribution for exploration runs.
//!
//! The [`crate::Explorer`] attaches a [`TimingObserver`] — a
//! [`StageObserver`] — to every point's toolflow session, so a sweep's
//! report can say where its wall time went: frontend builds, seed-cost
//! builds, backend runs. Because the frontend and seed-cost stages only
//! *run* on a cache miss (hits return the shared artifact without
//! touching the session), the per-stage totals double as per-cache-tier
//! build-cost attribution; the third tier's build time (schedule
//! results, charged inside the backend) is measured by the cache itself
//! and reported as [`StageTimings::schedule_builds`].
//!
//! Since the `argo-trace` rewrite the observer is a thin shell over an
//! [`argo_trace::SpanAgg`]: each stage-finish event is folded under the
//! same `stage.<label>` name the session driver records as a tracer
//! span, so stage-wall totals, flame summaries and Chrome traces are
//! three views of one measurement — there is no second timing source
//! to drift from.

use argo_core::{stage_span_name, Stage, StageObserver, StageSummary};
use argo_trace::SpanAgg;

/// Accumulated runs and wall time of one stage or cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierTiming {
    /// Completed runs (stage executions, or tier builds).
    pub runs: u64,
    /// Total wall time in nanoseconds.
    pub nanos: u64,
}

impl TierTiming {
    /// Total wall time in milliseconds.
    pub fn ms(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Wall-time totals of one exploration, per pipeline stage and for the
/// schedule cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Frontend stage executions (= first-tier cache misses).
    pub frontend: TierTiming,
    /// Seed-cost stage executions (= second-tier cache misses).
    pub seed_costs: TierTiming,
    /// Backend stage executions (one per evaluated point).
    pub backend: TierTiming,
    /// Verification runs (one per point that survives the backend).
    pub verify: TierTiming,
    /// Mapping-stage builds charged through the third cache tier
    /// (a subset of the backend time).
    pub schedule_builds: TierTiming,
}

impl StageTimings {
    /// Adds another snapshot's runs and wall time into this one
    /// (used by `argo-serve` to sum per-session observers).
    pub fn merge(&mut self, other: &StageTimings) {
        for (mine, theirs) in [
            (&mut self.frontend, other.frontend),
            (&mut self.seed_costs, other.seed_costs),
            (&mut self.backend, other.backend),
            (&mut self.verify, other.verify),
            (&mut self.schedule_builds, other.schedule_builds),
        ] {
            mine.runs += theirs.runs;
            mine.nanos += theirs.nanos;
        }
    }

    /// Sum over the four pipeline stages (`schedule_builds` is a
    /// subset of the backend and not double-counted).
    pub fn stage_total(&self) -> TierTiming {
        let mut total = TierTiming::default();
        for t in [self.frontend, self.seed_costs, self.backend, self.verify] {
            total.runs += t.runs;
            total.nanos += t.nanos;
        }
        total
    }
}

/// Thread-safe observer summing stage wall time across the concurrent
/// sessions of one sweep, implemented as a span aggregator
/// ([`argo_trace::SpanAgg`] keyed by [`stage_span_name`]). Stage
/// events from different worker threads interleave freely — only
/// per-name totals are kept, so no nesting assumptions are made.
#[derive(Debug, Default)]
pub struct TimingObserver {
    agg: SpanAgg,
}

impl TimingObserver {
    /// Observer with zeroed totals.
    pub fn new() -> TimingObserver {
        TimingObserver::default()
    }

    /// Snapshot of the accumulated totals (the `schedule_builds` tier
    /// is filled in by the explorer from cache counters).
    pub fn snapshot(&self) -> StageTimings {
        let tier = |stage: Stage| {
            let (runs, nanos) = self.agg.get(stage_span_name(stage));
            TierTiming { runs, nanos }
        };
        StageTimings {
            frontend: tier(Stage::Frontend),
            seed_costs: tier(Stage::SeedCosts),
            backend: tier(Stage::Backend),
            verify: tier(Stage::Verify),
            schedule_builds: TierTiming::default(),
        }
    }
}

impl StageObserver for TimingObserver {
    fn on_stage_finish(&self, summary: &StageSummary) {
        self.agg
            .record(stage_span_name(summary.stage), summary.elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::Fingerprint;
    use std::time::Duration;

    fn summary(stage: Stage, ms: u64) -> StageSummary {
        StageSummary {
            seq: 0,
            stage,
            fingerprint: Fingerprint(1),
            detail: String::new(),
            elapsed: Duration::from_millis(ms),
        }
    }

    #[test]
    fn totals_accumulate_per_stage() {
        let obs = TimingObserver::new();
        obs.on_stage_finish(&summary(Stage::Frontend, 2));
        obs.on_stage_finish(&summary(Stage::Frontend, 3));
        obs.on_stage_finish(&summary(Stage::Backend, 7));
        let t = obs.snapshot();
        assert_eq!(t.frontend.runs, 2);
        assert!((t.frontend.ms() - 5.0).abs() < 1e-9);
        assert_eq!(t.backend.runs, 1);
        assert_eq!(t.seed_costs, TierTiming::default());
        assert_eq!(t.stage_total().runs, 3);
        assert_eq!(t.stage_total().nanos, 12_000_000);
    }

    #[test]
    fn shared_across_threads() {
        let obs = TimingObserver::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| obs.on_stage_finish(&summary(Stage::SeedCosts, 1)));
            }
        });
        assert_eq!(obs.snapshot().seed_costs.runs, 8);
    }
}
