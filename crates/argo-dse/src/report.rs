//! Exploration reports: text tables, CSV and JSON emission.
//!
//! Determinism contract: [`ExplorationReport::to_csv`] contains only
//! values derived from the design space itself (configuration and
//! analysis results), never wall-clock times or cache counters — two runs
//! of the same space produce byte-identical CSV. The text and JSON forms
//! additionally surface timing (total, per stage and per cache tier) and
//! cache statistics for humans/tooling.
//!
//! Failures are structured [`Diagnostic`]s, not rendered strings: rows
//! carry the stage/code/entity triple so sweeps can aggregate failure
//! *classes* (the text report prints one `failures by class:` line, the
//! JSON emits the fields separately), and the CSV renders the canonical
//! `Diagnostic` display form in its `error` column.

use crate::cache::CacheStats;
use crate::observe::{StageTimings, TierTiming};
use crate::pareto::Objectives;
use crate::space::{granularity_label, scheduler_label, ExplorationPoint};
use argo_core::codec::{Codec, DecodeError, Decoder, Encoder};
use argo_core::Diagnostic;
use argo_search::Budget;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Analysis results of one successfully compiled point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Tasks in the parallel program.
    pub tasks: usize,
    /// Synchronization signals in the parallel program.
    pub signals: usize,
    /// Sequential WCET bound (one core, same task set).
    pub seq_bound: u64,
    /// Guaranteed parallel WCET bound.
    pub par_bound: u64,
    /// Guaranteed WCET speedup (`seq_bound / par_bound`).
    pub speedup: f64,
    /// Feedback iterations the backend performed.
    pub feedback_iterations: u32,
    /// Findings the independent verifier reported for this point.
    /// Error-severity findings never reach the metrics — they fail the
    /// row with a `verify/<code>` class — so this counts the warnings
    /// and notes that survived the gate.
    pub verify_findings: usize,
}

impl Codec for PointMetrics {
    fn encode(&self, e: &mut Encoder) {
        self.tasks.encode(e);
        self.signals.encode(e);
        self.seq_bound.encode(e);
        self.par_bound.encode(e);
        self.speedup.encode(e);
        e.u32(self.feedback_iterations);
        self.verify_findings.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<PointMetrics, DecodeError> {
        Ok(PointMetrics {
            tasks: usize::decode(d)?,
            signals: usize::decode(d)?,
            seq_bound: u64::decode(d)?,
            par_bound: u64::decode(d)?,
            speedup: f64::decode(d)?,
            feedback_iterations: d.u32()?,
            verify_findings: usize::decode(d)?,
        })
    }
}

/// A whole per-point outcome as archived in the persistent store's
/// `point` namespace: everything [`crate::Explorer`] needs to replay a
/// row without re-running any pipeline stage. Keyed by the fingerprint
/// of all evaluation inputs (program, entry, platform, toolchain
/// config), so editing any input changes the key and the point is
/// re-evaluated — the store mechanism behind incremental
/// re-exploration. Diagnostics are archived too: a point that failed
/// deterministically will fail identically on replay.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// Effective per-core SPM capacity, as in [`ReportRow`].
    pub spm_effective: u64,
    /// The archived outcome.
    pub outcome: Result<PointMetrics, Diagnostic>,
}

impl Codec for StoredPoint {
    fn encode(&self, e: &mut Encoder) {
        self.spm_effective.encode(e);
        self.outcome.encode(e);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<StoredPoint, DecodeError> {
        Ok(StoredPoint {
            spm_effective: u64::decode(d)?,
            outcome: Result::<PointMetrics, Diagnostic>::decode(d)?,
        })
    }
}

/// One row of the sweep: the point plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// The explored configuration.
    pub point: ExplorationPoint,
    /// Effective per-core SPM capacity in bytes (override or platform
    /// default) — the third Pareto objective.
    pub spm_effective: u64,
    /// Metrics, or the structured toolflow diagnostic.
    pub outcome: Result<PointMetrics, Diagnostic>,
}

impl ReportRow {
    /// Objective vector (cores, parallel WCET bound, SPM bytes) for
    /// successful rows.
    pub fn objectives(&self) -> Option<Objectives> {
        self.outcome
            .as_ref()
            .ok()
            .map(|m| [self.point.cores as u64, m.par_bound, self.spm_effective])
    }
}

/// How a report's rows were selected: the search-strategy metadata of a
/// steered exploration ([`crate::Explorer::search`]); `None` on
/// exhaustive sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchInfo {
    /// Strategy label (`ga`, `anneal`, `halving`).
    pub strategy: &'static str,
    /// Search seed (the design space's seed).
    pub seed: u64,
    /// The budget the search ran under.
    pub budget: Budget,
    /// Total points in the design-space lattice.
    pub lattice_points: usize,
    /// Fresh evaluations the strategy spent.
    pub evaluated: usize,
}

impl SearchInfo {
    /// Evaluated fraction of the lattice in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.lattice_points == 0 {
            0.0
        } else {
            self.evaluated as f64 / self.lattice_points as f64
        }
    }
}

/// The full result of one design-space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// One row per evaluated point, in `DesignSpace::points` order
    /// (searched reports contain only the evaluated subset).
    pub rows: Vec<ReportRow>,
    /// Indices into `rows` of the Pareto-optimal points.
    pub pareto: Vec<usize>,
    /// Artifact-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Wall-clock time of the sweep in milliseconds.
    pub wall_ms: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time per pipeline stage / cache tier for this run.
    pub timing: StageTimings,
    /// Search-strategy metadata (`None` for exhaustive sweeps).
    pub search: Option<SearchInfo>,
}

fn fmt_spm(row: &ReportRow) -> String {
    match row.point.spm_bytes {
        Some(b) => b.to_string(),
        None => format!("{}*", row.spm_effective),
    }
}

fn fmt_tier(t: &TierTiming) -> String {
    format!("{}x/{:.1}ms", t.runs, t.ms())
}

impl ExplorationReport {
    /// Successful rows only: `(row index, metrics)`.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &PointMetrics)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| Some(i).zip(r.outcome.as_ref().ok()))
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Failure counts aggregated by `(stage, code)` class, in
    /// deterministic label order.
    pub fn failure_classes(&self) -> Vec<(String, usize)> {
        let mut classes: BTreeMap<String, usize> = BTreeMap::new();
        for row in &self.rows {
            if let Err(d) = &row.outcome {
                *classes
                    .entry(format!("{}/{}", d.stage.label(), d.code.label()))
                    .or_insert(0) += 1;
            }
        }
        classes.into_iter().collect()
    }

    /// Human-readable table with the Pareto front, timing and cache
    /// statistics.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "argo-dse exploration — {} points, {} threads, {:.0} ms",
            self.rows.len(),
            self.threads,
            self.wall_ms
        );
        if let Some(info) = &self.search {
            let _ = writeln!(
                s,
                "search: {} (seed {}, {}) — evaluated {} of {} lattice points ({:.0}%)",
                info.strategy,
                info.seed,
                info.budget,
                info.evaluated,
                info.lattice_points,
                info.coverage() * 100.0
            );
        }
        let _ = writeln!(
            s,
            "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} {:>9} {:>12} {:>12} {:>8}  pareto",
            "app",
            "plat",
            "cores",
            "sched",
            "gran",
            "spm-B",
            "tasks",
            "seq-WCET",
            "par-WCET",
            "speedup"
        );
        for (i, row) in self.rows.iter().enumerate() {
            let mark = if self.pareto.contains(&i) { "*" } else { "" };
            match &row.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        s,
                        "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} {:>9} {:>12} {:>12} {:>7.2}x  {}",
                        row.point.app,
                        row.point.platform.label(),
                        row.point.cores,
                        scheduler_label(row.point.scheduler),
                        granularity_label(row.point.granularity),
                        fmt_spm(row),
                        m.tasks,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        mark,
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        s,
                        "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} ERROR: {e}",
                        row.point.app,
                        row.point.platform.label(),
                        row.point.cores,
                        scheduler_label(row.point.scheduler),
                        granularity_label(row.point.granularity),
                        fmt_spm(row),
                    );
                }
            }
        }
        if self.failures() > 0 {
            let classes: Vec<String> = self
                .failure_classes()
                .into_iter()
                .map(|(class, n)| format!("{class} x{n}"))
                .collect();
            let _ = writeln!(
                s,
                "failures by class ({} total): {}",
                self.failures(),
                classes.join(", ")
            );
        }
        let _ = writeln!(
            s,
            "pareto front ({} of {}): minimize (cores, par-WCET, spm-bytes); * = platform default SPM",
            self.pareto.len(),
            self.rows.len()
        );
        for &i in &self.pareto {
            if let Ok(m) = &self.rows[i].outcome {
                let _ = writeln!(
                    s,
                    "  {} -> par-WCET {} ({:.2}x)",
                    self.rows[i].point.label(),
                    m.par_bound,
                    m.speedup
                );
            }
        }
        let c = &self.cache;
        let _ = writeln!(
            s,
            "cache: frontend {}/{} hits, seed-costs {}/{} hits, schedules {}/{} hits, overall hit rate {:.0}%",
            c.frontend_hits,
            c.frontend_hits + c.frontend_misses,
            c.cost_hits,
            c.cost_hits + c.cost_misses,
            c.sched_hits,
            c.sched_hits + c.sched_misses,
            c.hit_rate() * 100.0
        );
        let _ = writeln!(
            s,
            "store: frontend {}/{} hits, seed-costs {}/{} hits, schedules {}/{} hits, \
             points {}/{} hits, combined hit rate {:.0}%",
            c.frontend_store_hits,
            c.frontend_store_hits + c.frontend_store_misses,
            c.cost_store_hits,
            c.cost_store_hits + c.cost_store_misses,
            c.sched_store_hits,
            c.sched_store_hits + c.sched_store_misses,
            c.point_store_hits,
            c.point_store_hits + c.point_store_misses,
            c.combined_hit_rate() * 100.0
        );
        let t = &self.timing;
        let _ = writeln!(
            s,
            "stage wall: frontend {}, seed-costs {}, backend {}, verify {}; schedule builds {}",
            fmt_tier(&t.frontend),
            fmt_tier(&t.seed_costs),
            fmt_tier(&t.backend),
            fmt_tier(&t.verify),
            fmt_tier(&t.schedule_builds),
        );
        s
    }

    /// CSV (deterministic across runs — no timing or cache columns).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "app,platform,cores,scheduler,granularity,chunk,spm_bytes,\
             tasks,signals,seq_wcet,par_wcet,speedup,feedback_iterations,verify_findings,\
             pareto,error\n",
        );
        for (i, row) in self.rows.iter().enumerate() {
            let p = &row.point;
            let _ = write!(
                s,
                "{},{},{},{},{},{},{},",
                csv_escape(&p.app),
                p.platform.label(),
                p.cores,
                scheduler_label(p.scheduler),
                granularity_label(p.granularity),
                p.chunk_loops,
                row.spm_effective,
            );
            match &row.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        s,
                        "{},{},{},{},{:.4},{},{},{},",
                        m.tasks,
                        m.signals,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        m.feedback_iterations,
                        m.verify_findings,
                        self.pareto.contains(&i),
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, ",,,,,,,false,{}", csv_escape(&e.to_string()));
                }
            }
        }
        s
    }

    /// JSON document with rows, Pareto front, cache stats, per-stage
    /// timing and (for searched reports) the strategy metadata.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let p = &row.point;
            let _ = write!(
                s,
                "    {{\"app\": {}, \"platform\": \"{}\", \"cores\": {}, \"scheduler\": \"{}\", \
                 \"granularity\": \"{}\", \"chunk\": {}, \"spm_bytes\": {}, \"pareto\": {}",
                json_string(&p.app),
                p.platform.label(),
                p.cores,
                scheduler_label(p.scheduler),
                granularity_label(p.granularity),
                p.chunk_loops,
                row.spm_effective,
                self.pareto.contains(&i),
            );
            match &row.outcome {
                Ok(m) => {
                    let _ = write!(
                        s,
                        ", \"tasks\": {}, \"signals\": {}, \"seq_wcet\": {}, \"par_wcet\": {}, \
                         \"speedup\": {:.4}, \"feedback_iterations\": {}, \"verify_findings\": {}",
                        m.tasks,
                        m.signals,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        m.feedback_iterations,
                        m.verify_findings
                    );
                }
                Err(e) => {
                    let _ = write!(
                        s,
                        ", \"error\": {{\"stage\": \"{}\", \"code\": \"{}\", \"entity\": {}, \
                         \"message\": {}}}",
                        e.stage.label(),
                        e.code.label(),
                        match &e.entity {
                            Some(entity) => json_string(entity),
                            None => "null".to_string(),
                        },
                        json_string(&e.message)
                    );
                }
            }
            let _ = writeln!(s, "}}{}", if i + 1 < self.rows.len() { "," } else { "" });
        }
        let c = &self.cache;
        let _ = write!(
            s,
            "  ],\n  \"pareto\": {:?},\n  \"cache\": {{\"frontend_hits\": {}, \"frontend_misses\": {}, \
             \"cost_hits\": {}, \"cost_misses\": {}, \"sched_hits\": {}, \"sched_misses\": {}, \
             \"hit_rate\": {:.4}, \
             \"frontend_store_hits\": {}, \"frontend_store_misses\": {}, \
             \"cost_store_hits\": {}, \"cost_store_misses\": {}, \
             \"sched_store_hits\": {}, \"sched_store_misses\": {}, \
             \"point_store_hits\": {}, \"point_store_misses\": {}, \
             \"combined_hit_rate\": {:.4}}},\n",
            self.pareto,
            c.frontend_hits,
            c.frontend_misses,
            c.cost_hits,
            c.cost_misses,
            c.sched_hits,
            c.sched_misses,
            c.hit_rate(),
            c.frontend_store_hits,
            c.frontend_store_misses,
            c.cost_store_hits,
            c.cost_store_misses,
            c.sched_store_hits,
            c.sched_store_misses,
            c.point_store_hits,
            c.point_store_misses,
            c.combined_hit_rate(),
        );
        let t = &self.timing;
        let _ = writeln!(
            s,
            "  \"timing\": {{\"frontend_runs\": {}, \"frontend_ms\": {:.3}, \
             \"seed_cost_runs\": {}, \"seed_cost_ms\": {:.3}, \
             \"backend_runs\": {}, \"backend_ms\": {:.3}, \
             \"verify_runs\": {}, \"verify_ms\": {:.3}, \
             \"schedule_builds\": {}, \"schedule_build_ms\": {:.3}}},\n",
            t.frontend.runs,
            t.frontend.ms(),
            t.seed_costs.runs,
            t.seed_costs.ms(),
            t.backend.runs,
            t.backend.ms(),
            t.verify.runs,
            t.verify.ms(),
            t.schedule_builds.runs,
            t.schedule_builds.ms(),
        );
        if let Some(info) = &self.search {
            let _ = writeln!(
                s,
                "  \"search\": {{\"strategy\": \"{}\", \"seed\": {}, \"max_evaluations\": {}, \
                 \"stall\": {}, \"lattice_points\": {}, \"evaluated\": {}, \"coverage\": {:.4}}},\n",
                info.strategy,
                info.seed,
                match info.budget.max_evaluations {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                },
                match info.budget.stall {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                },
                info.lattice_points,
                info.evaluated,
                info.coverage(),
            );
        }
        let _ = write!(
            s,
            "  \"threads\": {},\n  \"wall_ms\": {:.1}\n}}\n",
            self.threads, self.wall_ms
        );
        s
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PlatformKind;
    use argo_core::{ErrorCode, SchedulerKind, Stage};
    use argo_htg::Granularity;
    use argo_wcet::system::MhpMode;

    fn sample_report() -> ExplorationReport {
        let point = |cores: usize, sched| ExplorationPoint {
            app: "egpws".into(),
            platform: PlatformKind::Bus,
            cores,
            scheduler: sched,
            granularity: Granularity::Loop,
            chunk_loops: true,
            spm_bytes: Some(4096),
            mhp: MhpMode::Static,
        };
        let metrics = |par: u64| PointMetrics {
            tasks: 5,
            signals: 4,
            seq_bound: 1000,
            par_bound: par,
            speedup: 1000.0 / par as f64,
            feedback_iterations: 2,
            verify_findings: 0,
        };
        ExplorationReport {
            rows: vec![
                ReportRow {
                    point: point(1, SchedulerKind::List),
                    spm_effective: 4096,
                    outcome: Ok(metrics(1000)),
                },
                ReportRow {
                    point: point(4, SchedulerKind::List),
                    spm_effective: 4096,
                    outcome: Ok(metrics(400)),
                },
                ReportRow {
                    point: point(4, SchedulerKind::Anneal),
                    spm_effective: 4096,
                    outcome: Err(Diagnostic::new(
                        Stage::Backend,
                        ErrorCode::ParallelModelFailed,
                        "scheduler exploded",
                    )
                    .with_entity("t3")),
                },
            ],
            pareto: vec![0, 1],
            cache: CacheStats {
                frontend_hits: 2,
                frontend_misses: 1,
                cost_hits: 1,
                cost_misses: 2,
                sched_hits: 3,
                sched_misses: 3,
                sched_build_ns: 1_500_000,
                frontend_store_hits: 1,
                frontend_store_misses: 0,
                cost_store_hits: 0,
                cost_store_misses: 2,
                sched_store_hits: 0,
                sched_store_misses: 3,
                point_store_hits: 2,
                point_store_misses: 1,
            },
            wall_ms: 12.0,
            threads: 4,
            timing: StageTimings {
                frontend: TierTiming {
                    runs: 1,
                    nanos: 2_000_000,
                },
                seed_costs: TierTiming {
                    runs: 2,
                    nanos: 1_000_000,
                },
                backend: TierTiming {
                    runs: 3,
                    nanos: 7_000_000,
                },
                verify: TierTiming {
                    runs: 2,
                    nanos: 500_000,
                },
                schedule_builds: TierTiming {
                    runs: 3,
                    nanos: 1_500_000,
                },
            },
            search: None,
        }
    }

    #[test]
    fn text_report_mentions_everything() {
        let t = sample_report().to_text();
        assert!(t.contains("pareto front (2 of 3)"));
        assert!(t.contains("egpws"));
        assert!(t.contains("ERROR: toolflow error [backend/parallel-model-failed]"));
        assert!(t.contains("scheduler exploded"));
        assert!(t.contains("failures by class (1 total): backend/parallel-model-failed x1"));
        assert!(t.contains("cache: frontend 2/3 hits"));
        assert!(t.contains("schedules 3/6 hits"));
        assert!(t.contains("hit rate 50%"));
        // Persistent-store counters: 6 memory hits + 3 store hits over
        // 12 stage lookups + 3 point-archive lookups = 60% combined.
        assert!(t.contains(
            "store: frontend 1/1 hits, seed-costs 0/2 hits, schedules 0/3 hits, \
             points 2/3 hits, combined hit rate 60%"
        ));
        assert!(t.contains("stage wall: frontend 1x/2.0ms"));
        assert!(t.contains("verify 2x/0.5ms"));
        assert!(t.contains("schedule builds 3x/1.5ms"));
        assert!(
            !t.contains("search:"),
            "exhaustive reports have no search line"
        );
    }

    #[test]
    fn search_line_appears_for_steered_reports() {
        let mut r = sample_report();
        r.search = Some(SearchInfo {
            strategy: "ga",
            seed: 42,
            budget: Budget::evaluations(128).with_stall(32),
            lattice_points: 512,
            evaluated: 128,
        });
        let t = r.to_text();
        assert!(
            t.contains("search: ga (seed 42, max=128 stall=32) — evaluated 128 of 512 lattice points (25%)"),
            "{t}"
        );
        let j = r.to_json();
        assert!(j.contains("\"strategy\": \"ga\""));
        assert!(j.contains("\"max_evaluations\": 128"));
        assert!(j.contains("\"coverage\": 0.2500"));
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let r = sample_report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("feedback_iterations,verify_findings,pareto,error"));
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("egpws,bus,1,list,loop,true,4096,"));
        assert!(csv.contains("scheduler exploded"));
        // No timing / cache / store columns → deterministic: a cold and
        // a warm run over the same space emit byte-identical CSV.
        assert!(!csv.contains("wall"));
        assert!(!csv.contains("store"));
        assert!(!csv.contains("hit"));
    }

    #[test]
    fn json_is_structurally_sane() {
        let j = sample_report().to_json();
        assert!(j.contains("\"pareto\": [0, 1]"));
        assert!(j.contains("\"frontend_hits\": 2"));
        assert!(j.contains("\"sched_hits\": 3"));
        assert!(j.contains("\"frontend_store_hits\": 1"));
        assert!(j.contains("\"cost_store_misses\": 2"));
        assert!(j.contains("\"sched_store_misses\": 3"));
        assert!(j.contains("\"point_store_hits\": 2"));
        assert!(j.contains("\"combined_hit_rate\": 0.6000"));
        assert!(j.contains(
            "\"error\": {\"stage\": \"backend\", \"code\": \"parallel-model-failed\", \
             \"entity\": \"t3\", \"message\": \"scheduler exploded\"}"
        ));
        assert!(j.contains("\"timing\": {\"frontend_runs\": 1"));
        assert!(j.contains("\"verify_runs\": 2"));
        assert!(j.contains("\"verify_findings\": 0"));
        assert_eq!(j.matches("\"app\"").count(), 3);
        // Balanced braces (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn stored_point_round_trips_both_outcomes() {
        let ok = StoredPoint {
            spm_effective: 4096,
            outcome: Ok(PointMetrics {
                tasks: 5,
                signals: 4,
                seq_bound: 1000,
                par_bound: 400,
                speedup: 2.5,
                feedback_iterations: 2,
                verify_findings: 1,
            }),
        };
        assert_eq!(StoredPoint::from_bytes(&ok.to_bytes()).unwrap(), ok);
        let err = StoredPoint {
            spm_effective: 0,
            outcome: Err(Diagnostic::new(
                Stage::Backend,
                ErrorCode::ParallelModelFailed,
                "scheduler exploded",
            )
            .with_entity("t3")),
        };
        assert_eq!(StoredPoint::from_bytes(&err.to_bytes()).unwrap(), err);
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(json_string("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
    }
}
