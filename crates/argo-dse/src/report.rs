//! Exploration reports: text tables, CSV and JSON emission.
//!
//! Determinism contract: [`ExplorationReport::to_csv`] contains only
//! values derived from the design space itself (configuration and
//! analysis results), never wall-clock times or cache counters — two runs
//! of the same space produce byte-identical CSV. The text and JSON forms
//! additionally surface timing and cache statistics for humans/tooling.

use crate::cache::CacheStats;
use crate::pareto::Objectives;
use crate::space::{granularity_label, scheduler_label, ExplorationPoint};
use std::fmt::Write as _;

/// Analysis results of one successfully compiled point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// Tasks in the parallel program.
    pub tasks: usize,
    /// Synchronization signals in the parallel program.
    pub signals: usize,
    /// Sequential WCET bound (one core, same task set).
    pub seq_bound: u64,
    /// Guaranteed parallel WCET bound.
    pub par_bound: u64,
    /// Guaranteed WCET speedup (`seq_bound / par_bound`).
    pub speedup: f64,
    /// Feedback iterations the backend performed.
    pub feedback_iterations: u32,
}

/// One row of the sweep: the point plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// The explored configuration.
    pub point: ExplorationPoint,
    /// Effective per-core SPM capacity in bytes (override or platform
    /// default) — the third Pareto objective.
    pub spm_effective: u64,
    /// Metrics, or the toolchain error message.
    pub outcome: Result<PointMetrics, String>,
}

impl ReportRow {
    /// Objective vector (cores, parallel WCET bound, SPM bytes) for
    /// successful rows.
    pub fn objectives(&self) -> Option<Objectives> {
        self.outcome
            .as_ref()
            .ok()
            .map(|m| [self.point.cores as u64, m.par_bound, self.spm_effective])
    }
}

/// The full result of one design-space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    /// One row per point, in `DesignSpace::points` order.
    pub rows: Vec<ReportRow>,
    /// Indices into `rows` of the Pareto-optimal points.
    pub pareto: Vec<usize>,
    /// Artifact-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Wall-clock time of the sweep in milliseconds.
    pub wall_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

fn fmt_spm(row: &ReportRow) -> String {
    match row.point.spm_bytes {
        Some(b) => b.to_string(),
        None => format!("{}*", row.spm_effective),
    }
}

impl ExplorationReport {
    /// Successful rows only: `(row index, metrics)`.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &PointMetrics)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| Some(i).zip(r.outcome.as_ref().ok()))
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Human-readable table with the Pareto front and cache statistics.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "argo-dse exploration — {} points, {} threads, {:.0} ms",
            self.rows.len(),
            self.threads,
            self.wall_ms
        );
        let _ = writeln!(
            s,
            "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} {:>9} {:>12} {:>12} {:>8}  pareto",
            "app",
            "plat",
            "cores",
            "sched",
            "gran",
            "spm-B",
            "tasks",
            "seq-WCET",
            "par-WCET",
            "speedup"
        );
        for (i, row) in self.rows.iter().enumerate() {
            let mark = if self.pareto.contains(&i) { "*" } else { "" };
            match &row.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        s,
                        "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} {:>9} {:>12} {:>12} {:>7.2}x  {}",
                        row.point.app,
                        row.point.platform.label(),
                        row.point.cores,
                        scheduler_label(row.point.scheduler),
                        granularity_label(row.point.granularity),
                        fmt_spm(row),
                        m.tasks,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        mark,
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        s,
                        "{:<10} {:<4} {:>5} {:<7} {:<6} {:<8} ERROR: {e}",
                        row.point.app,
                        row.point.platform.label(),
                        row.point.cores,
                        scheduler_label(row.point.scheduler),
                        granularity_label(row.point.granularity),
                        fmt_spm(row),
                    );
                }
            }
        }
        let _ = writeln!(
            s,
            "pareto front ({} of {}): minimize (cores, par-WCET, spm-bytes); * = platform default SPM",
            self.pareto.len(),
            self.rows.len()
        );
        for &i in &self.pareto {
            if let Ok(m) = &self.rows[i].outcome {
                let _ = writeln!(
                    s,
                    "  {} -> par-WCET {} ({:.2}x)",
                    self.rows[i].point.label(),
                    m.par_bound,
                    m.speedup
                );
            }
        }
        let c = &self.cache;
        let _ = writeln!(
            s,
            "cache: frontend {}/{} hits, seed-costs {}/{} hits, overall hit rate {:.0}%",
            c.frontend_hits,
            c.frontend_hits + c.frontend_misses,
            c.cost_hits,
            c.cost_hits + c.cost_misses,
            c.hit_rate() * 100.0
        );
        s
    }

    /// CSV (deterministic across runs — no timing or cache columns).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "app,platform,cores,scheduler,granularity,chunk,spm_bytes,\
             tasks,signals,seq_wcet,par_wcet,speedup,feedback_iterations,pareto,error\n",
        );
        for (i, row) in self.rows.iter().enumerate() {
            let p = &row.point;
            let _ = write!(
                s,
                "{},{},{},{},{},{},{},",
                csv_escape(&p.app),
                p.platform.label(),
                p.cores,
                scheduler_label(p.scheduler),
                granularity_label(p.granularity),
                p.chunk_loops,
                row.spm_effective,
            );
            match &row.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        s,
                        "{},{},{},{},{:.4},{},{},",
                        m.tasks,
                        m.signals,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        m.feedback_iterations,
                        self.pareto.contains(&i),
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, ",,,,,,false,{}", csv_escape(e));
                }
            }
        }
        s
    }

    /// JSON document with rows, Pareto front, cache stats and timing.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let p = &row.point;
            let _ = write!(
                s,
                "    {{\"app\": {}, \"platform\": \"{}\", \"cores\": {}, \"scheduler\": \"{}\", \
                 \"granularity\": \"{}\", \"chunk\": {}, \"spm_bytes\": {}, \"pareto\": {}",
                json_string(&p.app),
                p.platform.label(),
                p.cores,
                scheduler_label(p.scheduler),
                granularity_label(p.granularity),
                p.chunk_loops,
                row.spm_effective,
                self.pareto.contains(&i),
            );
            match &row.outcome {
                Ok(m) => {
                    let _ = write!(
                        s,
                        ", \"tasks\": {}, \"signals\": {}, \"seq_wcet\": {}, \"par_wcet\": {}, \
                         \"speedup\": {:.4}, \"feedback_iterations\": {}",
                        m.tasks,
                        m.signals,
                        m.seq_bound,
                        m.par_bound,
                        m.speedup,
                        m.feedback_iterations
                    );
                }
                Err(e) => {
                    let _ = write!(s, ", \"error\": {}", json_string(e));
                }
            }
            let _ = writeln!(s, "}}{}", if i + 1 < self.rows.len() { "," } else { "" });
        }
        let c = &self.cache;
        let _ = write!(
            s,
            "  ],\n  \"pareto\": {:?},\n  \"cache\": {{\"frontend_hits\": {}, \"frontend_misses\": {}, \
             \"cost_hits\": {}, \"cost_misses\": {}, \"hit_rate\": {:.4}}},\n  \
             \"threads\": {},\n  \"wall_ms\": {:.1}\n}}\n",
            self.pareto,
            c.frontend_hits,
            c.frontend_misses,
            c.cost_hits,
            c.cost_misses,
            c.hit_rate(),
            self.threads,
            self.wall_ms
        );
        s
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PlatformKind;
    use argo_core::SchedulerKind;
    use argo_htg::Granularity;
    use argo_wcet::system::MhpMode;

    fn sample_report() -> ExplorationReport {
        let point = |cores: usize, sched| ExplorationPoint {
            app: "egpws".into(),
            platform: PlatformKind::Bus,
            cores,
            scheduler: sched,
            granularity: Granularity::Loop,
            chunk_loops: true,
            spm_bytes: Some(4096),
            mhp: MhpMode::Static,
        };
        let metrics = |par: u64| PointMetrics {
            tasks: 5,
            signals: 4,
            seq_bound: 1000,
            par_bound: par,
            speedup: 1000.0 / par as f64,
            feedback_iterations: 2,
        };
        ExplorationReport {
            rows: vec![
                ReportRow {
                    point: point(1, SchedulerKind::List),
                    spm_effective: 4096,
                    outcome: Ok(metrics(1000)),
                },
                ReportRow {
                    point: point(4, SchedulerKind::List),
                    spm_effective: 4096,
                    outcome: Ok(metrics(400)),
                },
                ReportRow {
                    point: point(4, SchedulerKind::Anneal),
                    spm_effective: 4096,
                    outcome: Err("scheduler exploded".into()),
                },
            ],
            pareto: vec![0, 1],
            cache: CacheStats {
                frontend_hits: 2,
                frontend_misses: 1,
                cost_hits: 1,
                cost_misses: 2,
            },
            wall_ms: 12.0,
            threads: 4,
        }
    }

    #[test]
    fn text_report_mentions_everything() {
        let t = sample_report().to_text();
        assert!(t.contains("pareto front (2 of 3)"));
        assert!(t.contains("egpws"));
        assert!(t.contains("ERROR: scheduler exploded"));
        assert!(t.contains("cache: frontend 2/3 hits"));
        assert!(t.contains("hit rate 50%"));
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let r = sample_report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("egpws,bus,1,list,loop,true,4096,"));
        assert!(csv.contains("scheduler exploded"));
        // No timing / cache columns → deterministic.
        assert!(!csv.contains("wall"));
    }

    #[test]
    fn json_is_structurally_sane() {
        let j = sample_report().to_json();
        assert!(j.contains("\"pareto\": [0, 1]"));
        assert!(j.contains("\"frontend_hits\": 2"));
        assert!(j.contains("\"error\": \"scheduler exploded\""));
        assert_eq!(j.matches("\"app\"").count(), 3);
        // Balanced braces (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(json_string("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
    }
}
