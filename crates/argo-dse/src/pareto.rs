//! Pareto-front extraction over the (cores, WCET bound, SPM bytes) triple.
//!
//! All three objectives are minimized: fewer cores and less scratchpad are
//! cheaper silicon, a lower guaranteed parallel WCET bound is a tighter
//! real-time guarantee. A point is on the front iff no other point is at
//! least as good in every objective and strictly better in one — the
//! § II-E resource/timing trade-off surface a system designer actually
//! chooses from.

/// Objective vector of one exploration point, all minimized.
pub type Objectives = [u64; 3];

/// Whether `a` dominates `b`: no worse in every objective, strictly
/// better in at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Indices of the non-dominated points, in ascending index order.
///
/// Duplicate objective vectors are kept together: equal points do not
/// dominate each other, so either all copies are on the front or none is.
pub fn pareto_front(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .any(|other| dominates(other, &objectives[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1, 2, 3], &[1, 2, 4]));
        assert!(dominates(&[1, 2, 3], &[2, 3, 4]));
        assert!(
            !dominates(&[1, 2, 3], &[1, 2, 3]),
            "equal points do not dominate"
        );
        assert!(!dominates(&[1, 2, 4], &[1, 3, 3]), "incomparable");
    }

    #[test]
    fn front_drops_dominated_points() {
        let objs = vec![
            [1, 100, 16], // cheap but slow — on the front
            [4, 40, 16],  // on the front
            [4, 50, 16],  // dominated by [4,40,16]
            [8, 40, 16],  // dominated by [4,40,16]
            [8, 30, 8],   // on the front
        ];
        assert_eq!(pareto_front(&objs), vec![0, 1, 4]);
    }

    #[test]
    fn duplicates_survive_together() {
        let objs = vec![[2, 2, 2], [2, 2, 2], [3, 3, 3]];
        assert_eq!(pareto_front(&objs), vec![0, 1]);
    }

    #[test]
    fn front_never_contains_dominated_point() {
        // Small exhaustive check over a deterministic pseudo-random set.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let objs: Vec<Objectives> = (0..64)
            .map(|_| [next() % 8 + 1, next() % 100, next() % 4 * 4096])
            .collect();
        let front = pareto_front(&objs);
        assert!(!front.is_empty());
        for &i in &front {
            for o in &objs {
                assert!(!dominates(o, &objs[i]));
            }
        }
        // Every non-front point is dominated by someone.
        for i in 0..objs.len() {
            if !front.contains(&i) {
                assert!(objs.iter().any(|o| dominates(o, &objs[i])));
            }
        }
    }
}
