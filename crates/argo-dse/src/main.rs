//! `argo-dse` — command-line driver for design-space exploration.
//!
//! ```sh
//! argo-dse explore --app egpws --cores 1..8 --schedulers list,bnb,anneal
//! argo-dse explore --app polka --platforms bus,noc --cores 1,2,4,8 \
//!     --spm default,0,4096,16384 --csv sweep.csv --json sweep.json
//! argo-dse list-apps
//! ```
//!
//! Exits 0 on a clean sweep, 1 if any exploration point failed, 2 on
//! usage errors.

use argo_dse::space::{parse_granularity, parse_mhp, parse_scheduler};
use argo_dse::{DesignSpace, Explorer, PlatformKind};
use argo_search::{parse_strategy, Budget, SearchStrategy};
use std::process::ExitCode;

const USAGE: &str = "argo-dse — WCET-aware design-space exploration (ARGO toolflow)

USAGE:
    argo-dse explore [OPTIONS]
    argo-dse list-apps
    argo-dse help

EXPLORE OPTIONS:
    --app NAME[,NAME...]       use cases to explore (default: egpws)
    --platforms LIST           bus,noc (default: bus)
    --cores SPEC               e.g. 1,2,4,8 or 1..8 (default: 4)
    --schedulers LIST          list,bnb,anneal or all (default: list)
    --granularities LIST       loop,block,stmt (default: loop)
    --chunk MODE               on|off|both (default: on)
    --spm LIST                 per-core bytes; `default` = platform value
                               e.g. default,0,4096 (default: default)
    --mhp MODE                 naive|static|windows (default: static)
    --feedback-rounds N        iterative optimization budget (default: 3)
    --seed N                   synthetic input + search seed (default: 42)
    --strategy NAME            exhaustive|ga|anneal|halving (default:
                               exhaustive — evaluate every lattice point)
    --budget N                 max point evaluations for a steered search
                               (default: a quarter of the lattice, min 16)
    --stall N                  also stop a steered search after N points
                               without a Pareto-front improvement
    --threads N                worker threads (default: all cores)
    --store DIR                persistent artifact store: artifacts and
                               point outcomes are written through and a
                               later run over the same DIR warm-starts,
                               re-evaluating only changed points
    --csv PATH                 also write the CSV report
    --json PATH                also write the JSON report
    --trace PATH               record spans and write a Chrome trace-event
                               JSON there; a flame summary goes to stderr
    --quiet                    suppress the text report
";

fn split_list(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

/// Parses a core spec: a comma list of counts and/or `lo..hi` inclusive
/// ranges, e.g. `1,2,4,8` or `1..8` or `1..4,8,16`.
fn parse_cores(spec: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in split_list(spec) {
        if let Some((lo, hi)) = part.split_once("..") {
            let lo: usize = lo.parse().map_err(|_| format!("bad core range `{part}`"))?;
            let hi: usize = hi.parse().map_err(|_| format!("bad core range `{part}`"))?;
            if lo == 0 || hi < lo {
                return Err(format!("bad core range `{part}`"));
            }
            out.extend(lo..=hi);
        } else {
            let n: usize = part
                .parse()
                .map_err(|_| format!("bad core count `{part}`"))?;
            if n == 0 {
                return Err("core count must be >= 1".into());
            }
            out.push(n);
        }
    }
    if out.is_empty() {
        return Err("empty core spec".into());
    }
    Ok(out)
}

fn parse_spm(spec: &str) -> Result<Vec<Option<u64>>, String> {
    split_list(spec)
        .into_iter()
        .map(|p| {
            if p == "default" {
                Ok(None)
            } else {
                p.parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("bad SPM capacity `{p}`"))
            }
        })
        .collect()
}

fn parse_chunk(spec: &str) -> Result<Vec<bool>, String> {
    match spec {
        "on" => Ok(vec![true]),
        "off" => Ok(vec![false]),
        "both" => Ok(vec![true, false]),
        other => Err(format!("bad chunk mode `{other}` (expected on|off|both)")),
    }
}

struct Options {
    space: DesignSpace,
    strategy: Option<Box<dyn SearchStrategy>>,
    budget: Option<usize>,
    stall: Option<usize>,
    threads: Option<usize>,
    store: Option<String>,
    csv: Option<String>,
    json: Option<String>,
    trace: Option<String>,
    quiet: bool,
}

fn parse_explore_args(args: &[String]) -> Result<Options, String> {
    let mut space = DesignSpace::new();
    let mut strategy: Option<Box<dyn SearchStrategy>> = None;
    let mut budget = None;
    let mut stall = None;
    let mut threads = None;
    let mut store = None;
    let mut csv = None;
    let mut json = None;
    let mut trace = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--app" | "--apps" => {
                let v = value()?;
                for a in split_list(v) {
                    space.apps.push(a.to_string());
                }
            }
            "--platforms" => {
                space.platforms = split_list(value()?)
                    .into_iter()
                    .map(PlatformKind::parse)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--cores" => space.cores = parse_cores(value()?)?,
            "--schedulers" => {
                let v = value()?;
                space.schedulers = if v == "all" {
                    vec![
                        argo_core::SchedulerKind::List,
                        argo_core::SchedulerKind::BranchAndBound,
                        argo_core::SchedulerKind::Anneal,
                    ]
                } else {
                    split_list(v)
                        .into_iter()
                        .map(parse_scheduler)
                        .collect::<Result<Vec<_>, _>>()?
                };
            }
            "--granularities" => {
                space.granularities = split_list(value()?)
                    .into_iter()
                    .map(parse_granularity)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--chunk" => space.chunking = parse_chunk(value()?)?,
            "--spm" => space.spm_capacities = parse_spm(value()?)?,
            "--mhp" => space.mhp = parse_mhp(value()?)?,
            "--feedback-rounds" => {
                space.feedback_rounds = value()?
                    .parse()
                    .map_err(|_| "bad --feedback-rounds".to_string())?;
            }
            "--seed" => space.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--strategy" => {
                let v = value()?;
                strategy = if v == "exhaustive" {
                    None
                } else {
                    Some(parse_strategy(v)?)
                };
            }
            "--budget" => {
                budget = Some(value()?.parse().map_err(|_| "bad --budget".to_string())?);
            }
            "--stall" => {
                stall = Some(value()?.parse().map_err(|_| "bad --stall".to_string())?);
            }
            "--threads" => {
                threads = Some(value()?.parse().map_err(|_| "bad --threads".to_string())?);
            }
            "--store" => store = Some(value()?.to_string()),
            "--csv" => csv = Some(value()?.to_string()),
            "--json" => json = Some(value()?.to_string()),
            "--trace" => trace = Some(value()?.to_string()),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown flag `{other}` (see `argo-dse help`)")),
        }
    }
    if space.apps.is_empty() {
        space.apps.push("egpws".to_string());
    }
    // A budget without a strategy would silently run the full lattice —
    // reject instead of dropping the user's limit on the floor.
    if strategy.is_none() && (budget.is_some() || stall.is_some()) {
        return Err(
            "--budget/--stall require a steered search: add --strategy ga|anneal|halving".into(),
        );
    }
    Ok(Options {
        space,
        strategy,
        budget,
        stall,
        threads,
        store,
        csv,
        json,
        trace,
        quiet,
    })
}

fn run_explore(args: &[String]) -> Result<bool, String> {
    let opts = parse_explore_args(args)?;
    if opts.trace.is_some() {
        argo_trace::enable_spans();
        argo_trace::enable_metrics();
    }
    let mut explorer = match opts.threads {
        Some(t) => Explorer::with_threads(t),
        None => Explorer::new(),
    };
    if let Some(dir) = &opts.store {
        let store =
            argo_store::Store::open(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
        explorer = explorer.with_store(std::sync::Arc::new(store));
    }
    let report = match &opts.strategy {
        None => explorer.explore(&opts.space),
        Some(strategy) => {
            // Default budget: a quarter of the lattice (the point of a
            // steered search), but never fewer than 16 evaluations.
            let max = opts
                .budget
                .unwrap_or_else(|| (opts.space.len() / 4).max(16));
            let mut budget = Budget::evaluations(max);
            if let Some(n) = opts.stall {
                budget = budget.with_stall(n);
            }
            explorer.search(&opts.space, strategy.as_ref(), budget)
        }
    };
    if let Some(path) = &opts.csv {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace {
        argo_trace::write_chrome_trace(argo_trace::global(), std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprint!(
            "{}",
            argo_trace::flame_summary(&argo_trace::global().snapshot(), 12)
        );
    }
    if !opts.quiet {
        print!("{}", report.to_text());
    }
    Ok(report.failures() == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => match run_explore(&args[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => {
                eprintln!("argo-dse: some exploration points failed");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("argo-dse: {e}");
                ExitCode::from(2)
            }
        },
        Some("list-apps") => {
            println!("egpws  — Enhanced Ground Proximity Warning System (aerospace)");
            println!("weaa   — Wake Encounter Avoidance and Advisory (aerospace)");
            println!("polka  — POLKA polarization camera (industrial imaging)");
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("argo-dse: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_specs_parse() {
        assert_eq!(parse_cores("1,2,4,8").unwrap(), vec![1, 2, 4, 8]);
        assert_eq!(parse_cores("1..4").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_cores("1..2,8").unwrap(), vec![1, 2, 8]);
        assert!(parse_cores("0").is_err());
        assert!(parse_cores("4..2").is_err());
        assert!(parse_cores("x").is_err());
    }

    #[test]
    fn spm_and_chunk_specs_parse() {
        assert_eq!(
            parse_spm("default,0,4096").unwrap(),
            vec![None, Some(0), Some(4096)]
        );
        assert!(parse_spm("lots").is_err());
        assert_eq!(parse_chunk("both").unwrap(), vec![true, false]);
        assert!(parse_chunk("maybe").is_err());
    }

    #[test]
    fn explore_args_build_a_space() {
        let args: Vec<String> = [
            "--app",
            "egpws,polka",
            "--platforms",
            "bus,noc",
            "--cores",
            "1..4",
            "--schedulers",
            "all",
            "--threads",
            "3",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_explore_args(&args).unwrap();
        assert_eq!(o.space.apps, vec!["egpws", "polka"]);
        assert_eq!(o.space.platforms.len(), 2);
        assert_eq!(o.space.cores, vec![1, 2, 3, 4]);
        assert_eq!(o.space.schedulers.len(), 3);
        assert_eq!(o.space.len(), 2 * 2 * 4 * 3);
        assert_eq!(o.threads, Some(3));
        assert!(o.quiet);
    }

    #[test]
    fn strategy_flags_parse() {
        let args: Vec<String> = ["--strategy", "ga", "--budget", "64", "--stall", "16"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_explore_args(&args).unwrap();
        assert_eq!(o.strategy.as_ref().unwrap().name(), "ga");
        assert_eq!(o.budget, Some(64));
        assert_eq!(o.stall, Some(16));

        let exhaustive =
            parse_explore_args(&["--strategy".to_string(), "exhaustive".into()]).unwrap();
        assert!(exhaustive.strategy.is_none());

        assert!(parse_explore_args(&["--strategy".to_string(), "tabu".into()]).is_err());
        assert!(parse_explore_args(&["--budget".to_string(), "x".into()]).is_err());
        // Budget/stall without a strategy would be silently ignored —
        // rejected instead.
        let err = match parse_explore_args(&["--budget".to_string(), "64".into()]) {
            Err(e) => e,
            Ok(_) => panic!("--budget without --strategy must be rejected"),
        };
        assert!(err.contains("--strategy"), "{err}");
        assert!(parse_explore_args(&[
            "--strategy".to_string(),
            "exhaustive".into(),
            "--stall".into(),
            "8".into()
        ])
        .is_err());
    }

    #[test]
    fn store_flag_parses() {
        let o = parse_explore_args(&["--store".to_string(), "/tmp/argo-store".into()]).unwrap();
        assert_eq!(o.store.as_deref(), Some("/tmp/argo-store"));
        assert!(parse_explore_args(&["--store".to_string()]).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let args = vec!["--frobnicate".to_string()];
        assert!(parse_explore_args(&args).is_err());
    }
}
