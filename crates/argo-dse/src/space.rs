//! The configuration lattice: axes, points and the `DesignSpace` builder.
//!
//! A [`DesignSpace`] is the cartesian product of the paper's § III design
//! axes. [`DesignSpace::points`] enumerates it in a fixed axis order
//! (app, platform, cores, scheduler, granularity, chunking, SPM), which is
//! the order reports present rows in — independent of how many worker
//! threads evaluate them.

use argo_adl::Platform;
use argo_core::SchedulerKind;
use argo_htg::Granularity;
use argo_wcet::system::MhpMode;
use std::fmt;

/// The two target platform families of § III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Recore Xentium-style many-core on a WRR shared bus.
    Bus,
    /// KIT tile-based NoC (cores arranged on a near-square grid).
    Noc,
}

impl PlatformKind {
    /// Short label used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::Bus => "bus",
            PlatformKind::Noc => "noc",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Result<PlatformKind, String> {
        match s {
            "bus" => Ok(PlatformKind::Bus),
            "noc" => Ok(PlatformKind::Noc),
            other => Err(format!("unknown platform `{other}` (expected bus|noc)")),
        }
    }

    /// Builds the concrete platform for `cores` cores, optionally
    /// overriding every core's scratchpad capacity.
    pub fn build(&self, cores: usize, spm_bytes: Option<u64>) -> Platform {
        let mut platform = match self {
            PlatformKind::Bus => Platform::xentium_manycore(cores),
            PlatformKind::Noc => {
                let (rows, cols) = near_square_grid(cores);
                Platform::kit_tile_noc(rows, cols)
            }
        };
        if let Some(bytes) = spm_bytes {
            for core in &mut platform.cores {
                core.spm_bytes = bytes;
            }
        }
        platform
    }
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Factors `n` into the most square `rows × cols` grid with `rows ≤ cols`.
fn near_square_grid(n: usize) -> (usize, usize) {
    let n = n.max(1);
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

/// Report/CLI label for a scheduler kind (the canonical
/// [`SchedulerKind::label`]).
pub fn scheduler_label(kind: SchedulerKind) -> &'static str {
    kind.label()
}

/// Parses a scheduler CLI label.
pub fn parse_scheduler(s: &str) -> Result<SchedulerKind, String> {
    match s {
        "list" => Ok(SchedulerKind::List),
        "bnb" => Ok(SchedulerKind::BranchAndBound),
        "anneal" => Ok(SchedulerKind::Anneal),
        other => Err(format!(
            "unknown scheduler `{other}` (expected list|bnb|anneal)"
        )),
    }
}

/// Report/CLI label for a task granularity.
pub fn granularity_label(g: Granularity) -> &'static str {
    match g {
        Granularity::Loop => "loop",
        Granularity::Block => "block",
        Granularity::Stmt => "stmt",
    }
}

/// Parses a granularity CLI label.
pub fn parse_granularity(s: &str) -> Result<Granularity, String> {
    match s {
        "loop" => Ok(Granularity::Loop),
        "block" => Ok(Granularity::Block),
        "stmt" => Ok(Granularity::Stmt),
        other => Err(format!(
            "unknown granularity `{other}` (expected loop|block|stmt)"
        )),
    }
}

/// Parses an MHP-mode CLI label.
pub fn parse_mhp(s: &str) -> Result<MhpMode, String> {
    match s {
        "naive" => Ok(MhpMode::Naive),
        "static" => Ok(MhpMode::Static),
        "windows" => Ok(MhpMode::Windows),
        other => Err(format!(
            "unknown MHP mode `{other}` (expected naive|static|windows)"
        )),
    }
}

/// One fully-specified toolflow configuration to compile and analyze.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationPoint {
    /// Use-case / registered program name.
    pub app: String,
    /// Target platform family.
    pub platform: PlatformKind,
    /// Core count.
    pub cores: usize,
    /// Mapping/scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Task extraction granularity.
    pub granularity: Granularity,
    /// Whether DOALL loops are chunked to the core count.
    pub chunk_loops: bool,
    /// Per-core scratchpad override in bytes (`None` = platform default).
    pub spm_bytes: Option<u64>,
    /// MHP precision of the system-level analysis.
    pub mhp: MhpMode,
}

impl ExplorationPoint {
    /// Compact single-line descriptor, e.g.
    /// `egpws/bus/4c/list/loop/chunk/spm=default`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}c/{}/{}/{}/spm={}",
            self.app,
            self.platform,
            self.cores,
            scheduler_label(self.scheduler),
            granularity_label(self.granularity),
            if self.chunk_loops { "chunk" } else { "nochunk" },
            match self.spm_bytes {
                Some(b) => b.to_string(),
                None => "default".to_string(),
            },
        )
    }
}

/// Builder for the exploration lattice. Every axis defaults to a single
/// sensible value, so callers only widen the axes they sweep.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Use-case names (resolved by the [`crate::Explorer`]).
    pub apps: Vec<String>,
    /// Platform families.
    pub platforms: Vec<PlatformKind>,
    /// Core counts.
    pub cores: Vec<usize>,
    /// Scheduler kinds.
    pub schedulers: Vec<SchedulerKind>,
    /// Task granularities.
    pub granularities: Vec<Granularity>,
    /// Chunking on/off variants.
    pub chunking: Vec<bool>,
    /// Per-core SPM capacities (`None` = platform default).
    pub spm_capacities: Vec<Option<u64>>,
    /// MHP precision (single value — it only affects analysis, not code).
    pub mhp: MhpMode,
    /// Feedback iterations for every point.
    pub feedback_rounds: u32,
    /// Seed for synthetic use-case inputs.
    pub seed: u64,
}

impl Default for DesignSpace {
    fn default() -> DesignSpace {
        DesignSpace {
            apps: Vec::new(),
            platforms: vec![PlatformKind::Bus],
            cores: vec![4],
            schedulers: vec![SchedulerKind::List],
            granularities: vec![Granularity::Loop],
            chunking: vec![true],
            spm_capacities: vec![None],
            mhp: MhpMode::Static,
            feedback_rounds: 3,
            seed: 42,
        }
    }
}

impl DesignSpace {
    /// Empty space with default axes; add at least one app before use.
    pub fn new() -> DesignSpace {
        DesignSpace::default()
    }

    /// Adds one use case.
    pub fn app(mut self, name: &str) -> DesignSpace {
        self.apps.push(name.to_string());
        self
    }

    /// Replaces the use-case axis.
    pub fn apps<I: IntoIterator<Item = String>>(mut self, names: I) -> DesignSpace {
        self.apps = names.into_iter().collect();
        self
    }

    /// Replaces the platform axis.
    pub fn platforms(mut self, kinds: Vec<PlatformKind>) -> DesignSpace {
        self.platforms = kinds;
        self
    }

    /// Replaces the core-count axis.
    pub fn cores(mut self, counts: Vec<usize>) -> DesignSpace {
        self.cores = counts;
        self
    }

    /// Replaces the scheduler axis.
    pub fn schedulers(mut self, kinds: Vec<SchedulerKind>) -> DesignSpace {
        self.schedulers = kinds;
        self
    }

    /// Replaces the granularity axis.
    pub fn granularities(mut self, grans: Vec<Granularity>) -> DesignSpace {
        self.granularities = grans;
        self
    }

    /// Replaces the chunking axis.
    pub fn chunking(mut self, variants: Vec<bool>) -> DesignSpace {
        self.chunking = variants;
        self
    }

    /// Replaces the SPM-capacity axis.
    pub fn spm_capacities(mut self, caps: Vec<Option<u64>>) -> DesignSpace {
        self.spm_capacities = caps;
        self
    }

    /// Sets the MHP mode for every point.
    pub fn mhp(mut self, mode: MhpMode) -> DesignSpace {
        self.mhp = mode;
        self
    }

    /// Sets the feedback-round budget for every point.
    pub fn feedback_rounds(mut self, rounds: u32) -> DesignSpace {
        self.feedback_rounds = rounds;
        self
    }

    /// Sets the synthetic-input seed.
    pub fn seed(mut self, seed: u64) -> DesignSpace {
        self.seed = seed;
        self
    }

    /// Number of points the lattice enumerates.
    pub fn len(&self) -> usize {
        self.apps.len()
            * self.platforms.len()
            * self.cores.len()
            * self.schedulers.len()
            * self.granularities.len()
            * self.chunking.len()
            * self.spm_capacities.len()
    }

    /// Whether the lattice is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every point in deterministic axis order.
    pub fn points(&self) -> Vec<ExplorationPoint> {
        let mut out = Vec::with_capacity(self.len());
        for app in &self.apps {
            for &platform in &self.platforms {
                for &cores in &self.cores {
                    for &scheduler in &self.schedulers {
                        for &granularity in &self.granularities {
                            for &chunk_loops in &self.chunking {
                                for &spm_bytes in &self.spm_capacities {
                                    out.push(ExplorationPoint {
                                        app: app.clone(),
                                        platform,
                                        cores,
                                        scheduler,
                                        granularity,
                                        chunk_loops,
                                        spm_bytes,
                                        mhp: self.mhp,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_size_and_order() {
        let space = DesignSpace::new()
            .app("egpws")
            .platforms(vec![PlatformKind::Bus, PlatformKind::Noc])
            .cores(vec![1, 2, 4, 8])
            .schedulers(vec![
                SchedulerKind::List,
                SchedulerKind::BranchAndBound,
                SchedulerKind::Anneal,
            ]);
        let pts = space.points();
        assert_eq!(pts.len(), 24);
        assert_eq!(space.len(), 24);
        // Axis order: platform varies slowest of the swept axes after app.
        assert_eq!(pts[0].platform, PlatformKind::Bus);
        assert_eq!(pts[0].cores, 1);
        assert_eq!(pts[0].scheduler, SchedulerKind::List);
        assert_eq!(pts[1].scheduler, SchedulerKind::BranchAndBound);
        assert_eq!(pts[12].platform, PlatformKind::Noc);
    }

    #[test]
    fn near_square_grids_are_exact() {
        for n in 1..=32 {
            let (r, c) = near_square_grid(n);
            assert_eq!(r * c, n, "grid for {n}");
            assert!(r <= c);
        }
        assert_eq!(near_square_grid(4), (2, 2));
        assert_eq!(near_square_grid(8), (2, 4));
        assert_eq!(near_square_grid(7), (1, 7));
    }

    #[test]
    fn platform_build_applies_spm_override() {
        let p = PlatformKind::Bus.build(2, Some(4096));
        assert!(p.cores.iter().all(|c| c.spm_bytes == 4096));
        assert_eq!(p.core_count(), 2);
        let q = PlatformKind::Noc.build(6, None);
        assert_eq!(q.core_count(), 6);
        q.validate().unwrap();
    }

    #[test]
    fn labels_round_trip() {
        for k in [
            SchedulerKind::List,
            SchedulerKind::BranchAndBound,
            SchedulerKind::Anneal,
        ] {
            assert_eq!(parse_scheduler(scheduler_label(k)).unwrap(), k);
        }
        for g in [Granularity::Loop, Granularity::Block, Granularity::Stmt] {
            assert_eq!(parse_granularity(granularity_label(g)).unwrap(), g);
        }
        for p in [PlatformKind::Bus, PlatformKind::Noc] {
            assert_eq!(PlatformKind::parse(p.label()).unwrap(), p);
        }
        assert!(parse_scheduler("heft").is_err());
    }

    #[test]
    fn point_label_is_compact() {
        let p = ExplorationPoint {
            app: "egpws".into(),
            platform: PlatformKind::Bus,
            cores: 4,
            scheduler: SchedulerKind::List,
            granularity: Granularity::Loop,
            chunk_loops: true,
            spm_bytes: None,
            mhp: MhpMode::Static,
        };
        assert_eq!(p.label(), "egpws/bus/4c/list/loop/chunk/spm=default");
    }
}
