//! Content-hash keyed artifact cache for shared-prefix exploration points.
//!
//! The staged `argo_core` pipeline factors one compile into
//! `frontend → seed_costs → backend`. Only the backend depends on the
//! scheduler and the memory/interference configuration, so a sweep along
//! the scheduler axis (or any axis that leaves program and platform
//! alone) re-derives identical frontends and identical round-0 WCET
//! tables. This cache keys both artifact tiers by a content hash —
//! the printed program text plus every configuration field the stage
//! observes — rather than by axis position, so *any* two points that
//! would recompute the same artifact share one entry, even across
//! different `DesignSpace`s or repeated runs on one [`crate::Explorer`].
//!
//! Concurrency: each key maps to an `Arc<OnceLock>` slot; the map lock is
//! held only to find/create the slot, and the (expensive) build runs
//! under the slot's own once-initialization, so two workers never build
//! the same artifact twice and distinct keys never serialize each other.

use argo_core::{FrontendArtifact, TaskCosts, ToolchainError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// FNV-1a content fingerprint over labeled parts.
///
/// Parts are length-prefixed so `["ab","c"]` and `["a","bc"]` differ.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part.as_bytes());
    }
    h
}

/// Hit/miss counters for both cache tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend artifacts served from cache.
    pub frontend_hits: u64,
    /// Frontend artifacts built.
    pub frontend_misses: u64,
    /// Seed-cost tables served from cache.
    pub cost_hits: u64,
    /// Seed-cost tables built.
    pub cost_misses: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.frontend_hits + self.cost_hits
    }

    /// Total misses across both tiers.
    pub fn misses(&self) -> u64 {
        self.frontend_misses + self.cost_misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, ToolchainError>>>;

/// Two-tier artifact cache (frontend artifacts, seed-cost tables).
#[derive(Default)]
pub struct ArtifactCache {
    frontend: Mutex<HashMap<u64, Slot<FrontendArtifact>>>,
    costs: Mutex<HashMap<u64, Slot<TaskCosts>>>,
    frontend_hits: AtomicU64,
    frontend_misses: AtomicU64,
    cost_hits: AtomicU64,
    cost_misses: AtomicU64,
}

fn get_or_build<T>(
    map: &Mutex<HashMap<u64, Slot<T>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: u64,
    build: impl FnOnce() -> Result<T, ToolchainError>,
) -> Result<Arc<T>, ToolchainError> {
    let (slot, created) = {
        let mut map = map.lock().unwrap();
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot: Slot<T> = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if created {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    slot.get_or_init(|| build().map(Arc::new)).clone()
}

impl ArtifactCache {
    /// Empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Returns the frontend artifact for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`ToolchainError`]; failures are cached too,
    /// so a failing point does not rebuild per retry.
    pub fn frontend(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<FrontendArtifact, ToolchainError>,
    ) -> Result<Arc<FrontendArtifact>, ToolchainError> {
        get_or_build(
            &self.frontend,
            &self.frontend_hits,
            &self.frontend_misses,
            key,
            build,
        )
    }

    /// Returns the seed-cost table for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`ToolchainError`] (cached like a success).
    pub fn seed_costs(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<TaskCosts, ToolchainError>,
    ) -> Result<Arc<TaskCosts>, ToolchainError> {
        get_or_build(&self.costs, &self.cost_hits, &self.cost_misses, key, build)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frontend_hits: self.frontend_hits.load(Ordering::Relaxed),
            frontend_misses: self.frontend_misses.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            cost_misses: self.cost_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::{frontend, ToolchainConfig};
    use argo_ir::parse::parse_program;

    const SRC: &str = "void main(real a[8], real b[8]) {\n\
                       int i;\n\
                       for (i = 0; i < 8; i = i + 1) { b[i] = a[i] * 2.0; }\n\
                       }";

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
        assert_ne!(fingerprint(&[]), fingerprint(&[""]));
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let build = || frontend(parse_program(SRC).unwrap(), "main", 2, &cfg);
        let a = cache.frontend(7, build).unwrap();
        let b = cache.frontend(7, build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.frontend_hits, s.frontend_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        for key in [1u64, 2, 3] {
            cache
                .frontend(key, || {
                    frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                })
                .unwrap();
        }
        assert_eq!(cache.stats().frontend_misses, 3);
        assert_eq!(cache.stats().frontend_hits, 0);
    }

    #[test]
    fn failures_are_cached() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.frontend(9, || {
                calls += 1;
                frontend(parse_program(SRC).unwrap(), "nonexistent", 2, &cfg)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = ArtifactCache::new();
        let built = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let cfg = ToolchainConfig::default();
                    cache
                        .frontend(1, || {
                            built.fetch_add(1, Ordering::Relaxed);
                            frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.frontend_hits + s.frontend_misses, 8);
        assert_eq!(s.frontend_misses, 1);
    }
}
