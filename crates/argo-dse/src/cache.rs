//! Content-hash keyed artifact cache for shared-prefix exploration points.
//!
//! The staged `argo_core` pipeline factors one compile into
//! `frontend → seed_costs → backend`. Only the backend depends on the
//! scheduler and the memory/interference configuration, so a sweep along
//! the scheduler axis (or any axis that leaves program and platform
//! alone) re-derives identical frontends and identical round-0 WCET
//! tables. This cache keys both artifact tiers by the driver's canonical
//! [`Fingerprint`]s — [`argo_core::Toolflow::frontend_fingerprint`] and
//! [`argo_core::Toolflow::seed_cost_fingerprint`] — so *any* two points
//! that would recompute the same artifact share one entry, even across
//! different `DesignSpace`s or repeated runs on one [`crate::Explorer`].
//! Fingerprints are API-owned content hashes (stable across processes),
//! which is what makes persisting this cache between runs a follow-on
//! rather than a redesign.
//!
//! Concurrency: each key maps to an `Arc<OnceLock>` slot; the map lock is
//! held only to find/create the slot, and the (expensive) build runs
//! under the slot's own once-initialization, so two workers never build
//! the same artifact twice and distinct keys never serialize each other.

use argo_core::{CostTable, Diagnostic, Fingerprint, FrontendArtifact};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss counters for both cache tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend artifacts served from cache.
    pub frontend_hits: u64,
    /// Frontend artifacts built.
    pub frontend_misses: u64,
    /// Seed-cost tables served from cache.
    pub cost_hits: u64,
    /// Seed-cost tables built.
    pub cost_misses: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.frontend_hits + self.cost_hits
    }

    /// Total misses across both tiers.
    pub fn misses(&self) -> u64 {
        self.frontend_misses + self.cost_misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, Diagnostic>>>;

/// Two-tier artifact cache (frontend artifacts, seed-cost tables).
#[derive(Default)]
pub struct ArtifactCache {
    frontend: Mutex<HashMap<Fingerprint, Slot<FrontendArtifact>>>,
    costs: Mutex<HashMap<Fingerprint, Slot<CostTable>>>,
    frontend_hits: AtomicU64,
    frontend_misses: AtomicU64,
    cost_hits: AtomicU64,
    cost_misses: AtomicU64,
}

fn get_or_build<T>(
    map: &Mutex<HashMap<Fingerprint, Slot<T>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: Fingerprint,
    build: impl FnOnce() -> Result<T, Diagnostic>,
) -> Result<Arc<T>, Diagnostic> {
    let (slot, created) = {
        let mut map = map.lock().unwrap();
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot: Slot<T> = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if created {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    slot.get_or_init(|| build().map(Arc::new)).clone()
}

impl ArtifactCache {
    /// Empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Returns the frontend artifact for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`]; failures are cached too,
    /// so a failing point does not rebuild per retry.
    pub fn frontend(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<FrontendArtifact, Diagnostic>,
    ) -> Result<Arc<FrontendArtifact>, Diagnostic> {
        get_or_build(
            &self.frontend,
            &self.frontend_hits,
            &self.frontend_misses,
            key,
            build,
        )
    }

    /// Returns the seed-cost table for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`] (cached like a success).
    pub fn seed_costs(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<CostTable, Diagnostic>,
    ) -> Result<Arc<CostTable>, Diagnostic> {
        get_or_build(&self.costs, &self.cost_hits, &self.cost_misses, key, build)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frontend_hits: self.frontend_hits.load(Ordering::Relaxed),
            frontend_misses: self.frontend_misses.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            cost_misses: self.cost_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::{frontend, ToolchainConfig};
    use argo_ir::parse::parse_program;

    const SRC: &str = "void main(real a[8], real b[8]) {\n\
                       int i;\n\
                       for (i = 0; i < 8; i = i + 1) { b[i] = a[i] * 2.0; }\n\
                       }";

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let build = || frontend(parse_program(SRC).unwrap(), "main", 2, &cfg);
        let a = cache.frontend(Fingerprint(7), build).unwrap();
        let b = cache.frontend(Fingerprint(7), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.frontend_hits, s.frontend_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        for key in [1u64, 2, 3] {
            cache
                .frontend(Fingerprint(key), || {
                    frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                })
                .unwrap();
        }
        assert_eq!(cache.stats().frontend_misses, 3);
        assert_eq!(cache.stats().frontend_hits, 0);
    }

    #[test]
    fn failures_are_cached() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.frontend(Fingerprint(9), || {
                calls += 1;
                frontend(parse_program(SRC).unwrap(), "nonexistent", 2, &cfg)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = ArtifactCache::new();
        let built = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let cfg = ToolchainConfig::default();
                    cache
                        .frontend(Fingerprint(1), || {
                            built.fetch_add(1, Ordering::Relaxed);
                            frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.frontend_hits + s.frontend_misses, 8);
        assert_eq!(s.frontend_misses, 1);
    }
}
