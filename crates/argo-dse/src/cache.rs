//! Content-hash keyed artifact cache for shared-prefix exploration points.
//!
//! The staged `argo_core` pipeline factors one compile into
//! `frontend → seed_costs → backend`. Only the backend depends on the
//! scheduler and the memory/interference configuration, so a sweep along
//! the scheduler axis (or any axis that leaves program and platform
//! alone) re-derives identical frontends and identical round-0 WCET
//! tables. This cache keys both artifact tiers by the driver's canonical
//! [`Fingerprint`]s — [`argo_core::Toolflow::frontend_fingerprint`] and
//! [`argo_core::Toolflow::seed_cost_fingerprint`] — so *any* two points
//! that would recompute the same artifact share one entry, even across
//! different `DesignSpace`s or repeated runs on one [`crate::Explorer`].
//!
//! ## Persistent backing
//!
//! Fingerprints are API-owned content hashes, stable across processes —
//! which is what lets every tier optionally back onto an on-disk
//! [`Store`] ([`ArtifactCache::set_store`]): a memory miss first reads
//! the store (`frontend` / `seed-costs` / `schedule` namespaces) before
//! building, and a successful build writes through. A fourth,
//! store-only tier (`point` namespace, see [`ArtifactCache::point_get`])
//! archives whole per-point outcomes, so a cold process on an unchanged
//! workspace re-starts at ~100% combined hits without re-running any
//! stage — and after a program or platform edit, only the points whose
//! fingerprints changed are re-evaluated. Failures are cached in memory
//! but never persisted: only the point tier records diagnostics (as
//! part of the point outcome), so a transient environment problem can't
//! poison the store. *Transient* diagnostics
//! ([`argo_core::ErrorCode::is_transient`]: deadlines, caught panics,
//! leader failures) are not even memory-cached — their slot is dropped
//! after the failing build, so the next request re-evaluates instead of
//! replaying an infrastructure failure forever. Store reads validate checksums, schema versions
//! and (for artifact tiers) content fingerprints; anything invalid
//! degrades to a counted miss and the entry is rebuilt.
//!
//! Concurrency: each key maps to an `Arc<OnceLock>` slot; the map lock is
//! held only to find/create the slot, and the (expensive) build — and
//! any store read/write — runs under the slot's own once-initialization,
//! so two workers never build the same artifact twice and distinct keys
//! never serialize each other.

use argo_core::codec::Codec;
use argo_core::{Artifact, CostTable, Diagnostic, Fingerprint, FrontendArtifact, ScheduleCache};
use argo_sched::Schedule;
use argo_store::Store;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Store namespace of the frontend-artifact tier.
pub const NS_FRONTEND: &str = "frontend";
/// Store namespace of the seed-cost tier.
pub const NS_COSTS: &str = "seed-costs";
/// Store namespace of the schedule tier.
pub const NS_SCHEDULE: &str = "schedule";
/// Store namespace of the per-point outcome archive.
pub const NS_POINT: &str = "point";

/// Hit/miss counters for all cache tiers, in-memory and persistent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend artifacts served from memory.
    pub frontend_hits: u64,
    /// Frontend artifacts not in memory (store-read or built).
    pub frontend_misses: u64,
    /// Seed-cost tables served from memory.
    pub cost_hits: u64,
    /// Seed-cost tables not in memory (store-read or built).
    pub cost_misses: u64,
    /// Schedules served from memory (third tier, one lookup per backend
    /// feedback round).
    pub sched_hits: u64,
    /// Schedules not in memory (store-read or built).
    pub sched_misses: u64,
    /// Wall time spent building third-tier schedules, in nanoseconds
    /// (store reads are not builds and are not charged here).
    pub sched_build_ns: u64,
    /// Frontend artifacts read back from the persistent store.
    pub frontend_store_hits: u64,
    /// Frontend store lookups that fell through to a build.
    pub frontend_store_misses: u64,
    /// Seed-cost tables read back from the persistent store.
    pub cost_store_hits: u64,
    /// Seed-cost store lookups that fell through to a build.
    pub cost_store_misses: u64,
    /// Schedules read back from the persistent store.
    pub sched_store_hits: u64,
    /// Schedule store lookups that fell through to a build.
    pub sched_store_misses: u64,
    /// Whole point outcomes served from the persistent archive.
    pub point_store_hits: u64,
    /// Point-archive lookups that fell through to a full evaluation.
    pub point_store_misses: u64,
}

impl CacheStats {
    /// Total in-memory hits across the three stage tiers.
    pub fn hits(&self) -> u64 {
        self.frontend_hits + self.cost_hits + self.sched_hits
    }

    /// Total in-memory misses across the three stage tiers.
    pub fn misses(&self) -> u64 {
        self.frontend_misses + self.cost_misses + self.sched_misses
    }

    /// In-memory hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Total persistent-store hits across all four tiers.
    pub fn store_hits(&self) -> u64 {
        self.frontend_store_hits
            + self.cost_store_hits
            + self.sched_store_hits
            + self.point_store_hits
    }

    /// Total persistent-store misses across all four tiers.
    pub fn store_misses(&self) -> u64 {
        self.frontend_store_misses
            + self.cost_store_misses
            + self.sched_store_misses
            + self.point_store_misses
    }

    /// Combined hit rate over *logical* lookups: a stage-tier lookup is
    /// a hit if memory **or** the store served it (store reads happen
    /// exactly on memory misses, so `hits + misses` counts each logical
    /// stage lookup once), and a point-archive lookup is a hit if the
    /// store held the whole outcome. A warm process on an unchanged
    /// workspace scores ~1.0: every point is served from the archive.
    pub fn combined_hit_rate(&self) -> f64 {
        let lookups = self.hits() + self.misses() + self.point_store_hits + self.point_store_misses;
        if lookups == 0 {
            0.0
        } else {
            (self.hits() + self.store_hits()) as f64 / lookups as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, Diagnostic>>>;

/// One stage tier's counters plus its store namespace, bundled so
/// `get_or_build` stays generic over the tier it serves.
struct Tier<'a> {
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
    store_hits: &'a AtomicU64,
    store_misses: &'a AtomicU64,
    namespace: &'static str,
}

/// Four-tier artifact cache: frontend artifacts, seed-cost tables,
/// mapping-stage schedules (all in-memory, optionally store-backed) and
/// a store-only per-point outcome archive. The schedule tier implements
/// [`argo_core::ScheduleCache`], so binding the whole cache to a
/// session via [`argo_core::Toolflow::schedule_cache`] is enough to
/// share schedules across points whose feedback rounds re-derive
/// identical `(task graph, platform, scheduler)` inputs (ROADMAP item
/// (c)) — e.g. the MHP axis, or converged rounds within one backend.
#[derive(Default)]
pub struct ArtifactCache {
    store: Option<Arc<Store>>,
    frontend: Mutex<HashMap<Fingerprint, Slot<FrontendArtifact>>>,
    costs: Mutex<HashMap<Fingerprint, Slot<CostTable>>>,
    schedules: Mutex<HashMap<Fingerprint, Arc<OnceLock<Schedule>>>>,
    frontend_hits: AtomicU64,
    frontend_misses: AtomicU64,
    cost_hits: AtomicU64,
    cost_misses: AtomicU64,
    sched_hits: AtomicU64,
    sched_misses: AtomicU64,
    sched_build_ns: AtomicU64,
    frontend_store_hits: AtomicU64,
    frontend_store_misses: AtomicU64,
    cost_store_hits: AtomicU64,
    cost_store_misses: AtomicU64,
    sched_store_hits: AtomicU64,
    sched_store_misses: AtomicU64,
    point_store_hits: AtomicU64,
    point_store_misses: AtomicU64,
}

impl ArtifactCache {
    /// Empty, memory-only cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Backs every tier onto a persistent [`Store`]: memory misses read
    /// from it before building, successful builds write through, and
    /// the point archive ([`ArtifactCache::point_get`]) activates.
    pub fn set_store(&mut self, store: Arc<Store>) {
        self.store = Some(store);
    }

    /// The persistent store backing this cache, if one is attached.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    fn get_or_build<T: Codec + Artifact>(
        &self,
        map: &Mutex<HashMap<Fingerprint, Slot<T>>>,
        tier: Tier<'_>,
        key: Fingerprint,
        build: impl FnOnce() -> Result<T, Diagnostic>,
    ) -> Result<Arc<T>, Diagnostic> {
        let (slot, created) = {
            let mut map = map.lock().unwrap();
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot: Slot<T> = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if created {
            tier.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            tier.hits.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .get_or_init(|| {
                if let Some(store) = &self.store {
                    if let Some(value) = store.get_artifact::<T>(tier.namespace, key) {
                        tier.store_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(value));
                    }
                    tier.store_misses.fetch_add(1, Ordering::Relaxed);
                }
                let result = build().map(Arc::new);
                if let (Some(store), Ok(value)) = (&self.store, &result) {
                    store.put_artifact(tier.namespace, key, &**value);
                }
                result
            })
            .clone();
        if matches!(&result, Err(d) if d.code.is_transient()) {
            // Transient failures (deadline, caught panic, leader
            // failure) are not deterministic in the key — memoizing
            // one would replay it to every later request for this
            // artifact. Drop the slot so the next lookup rebuilds;
            // waiters already parked on this slot share the error,
            // which is itself transient and retryable.
            let mut map = map.lock().unwrap();
            if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                map.remove(&key);
            }
        }
        result
    }

    /// Returns the frontend artifact for `key`, building it at most once
    /// per process (and, with a store attached, at most once per
    /// workspace — write-through on build, read-back on a cold start).
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`]; failures are cached (in
    /// memory only), so a failing point does not rebuild per retry.
    pub fn frontend(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<FrontendArtifact, Diagnostic>,
    ) -> Result<Arc<FrontendArtifact>, Diagnostic> {
        self.get_or_build(
            &self.frontend,
            Tier {
                hits: &self.frontend_hits,
                misses: &self.frontend_misses,
                store_hits: &self.frontend_store_hits,
                store_misses: &self.frontend_store_misses,
                namespace: NS_FRONTEND,
            },
            key,
            build,
        )
    }

    /// Returns the seed-cost table for `key`, building it at most once
    /// (persistence as for [`ArtifactCache::frontend`]).
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`] (cached like a success).
    pub fn seed_costs(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<CostTable, Diagnostic>,
    ) -> Result<Arc<CostTable>, Diagnostic> {
        self.get_or_build(
            &self.costs,
            Tier {
                hits: &self.cost_hits,
                misses: &self.cost_misses,
                store_hits: &self.cost_store_hits,
                store_misses: &self.cost_store_misses,
                namespace: NS_COSTS,
            },
            key,
            build,
        )
    }

    /// Reads a whole point outcome from the persistent archive. Returns
    /// `None` (and counts nothing) when no store is attached; otherwise
    /// counts a point-tier store hit or miss.
    pub fn point_get<T: Codec>(&self, key: Fingerprint) -> Option<T> {
        let store = self.store.as_ref()?;
        match store.get_value::<T>(NS_POINT, key) {
            Some(value) => {
                self.point_store_hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.point_store_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Archives a whole point outcome (no-op without a store).
    pub fn point_put<T: Codec>(&self, key: Fingerprint, value: &T) {
        if let Some(store) = &self.store {
            store.put_value(NS_POINT, key, value);
        }
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frontend_hits: self.frontend_hits.load(Ordering::Relaxed),
            frontend_misses: self.frontend_misses.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            cost_misses: self.cost_misses.load(Ordering::Relaxed),
            sched_hits: self.sched_hits.load(Ordering::Relaxed),
            sched_misses: self.sched_misses.load(Ordering::Relaxed),
            sched_build_ns: self.sched_build_ns.load(Ordering::Relaxed),
            frontend_store_hits: self.frontend_store_hits.load(Ordering::Relaxed),
            frontend_store_misses: self.frontend_store_misses.load(Ordering::Relaxed),
            cost_store_hits: self.cost_store_hits.load(Ordering::Relaxed),
            cost_store_misses: self.cost_store_misses.load(Ordering::Relaxed),
            sched_store_hits: self.sched_store_hits.load(Ordering::Relaxed),
            sched_store_misses: self.sched_store_misses.load(Ordering::Relaxed),
            point_store_hits: self.point_store_hits.load(Ordering::Relaxed),
            point_store_misses: self.point_store_misses.load(Ordering::Relaxed),
        }
    }
}

/// The third tier: schedules never fail, so slots hold plain values;
/// build wall time is charged to `sched_build_ns` for the per-tier
/// timing attribution in exploration reports (store read-backs are not
/// builds and charge nothing).
impl ScheduleCache for ArtifactCache {
    fn schedule(&self, key: Fingerprint, build: &mut dyn FnMut() -> Schedule) -> Schedule {
        let (slot, created) = {
            let mut map = self.schedules.lock().unwrap();
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot: Arc<OnceLock<Schedule>> = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if created {
            self.sched_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sched_hits.fetch_add(1, Ordering::Relaxed);
        }
        slot.get_or_init(|| {
            if let Some(store) = &self.store {
                if let Some(schedule) = store.get_value::<Schedule>(NS_SCHEDULE, key) {
                    self.sched_store_hits.fetch_add(1, Ordering::Relaxed);
                    return schedule;
                }
                self.sched_store_misses.fetch_add(1, Ordering::Relaxed);
            }
            let t0 = Instant::now();
            let schedule = build();
            self.sched_build_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if let Some(store) = &self.store {
                store.put_value(NS_SCHEDULE, key, &schedule);
            }
            schedule
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::{frontend, ToolchainConfig};
    use argo_ir::parse::parse_program;

    const SRC: &str = "void main(real a[8], real b[8]) {\n\
                       int i;\n\
                       for (i = 0; i < 8; i = i + 1) { b[i] = a[i] * 2.0; }\n\
                       }";

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let build = || frontend(parse_program(SRC).unwrap(), "main", 2, &cfg);
        let a = cache.frontend(Fingerprint(7), build).unwrap();
        let b = cache.frontend(Fingerprint(7), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.frontend_hits, s.frontend_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        // Memory-only: the store tiers see no traffic, and the combined
        // rate collapses to the in-memory rate.
        assert_eq!(s.store_hits() + s.store_misses(), 0);
        assert!((s.combined_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        for key in [1u64, 2, 3] {
            cache
                .frontend(Fingerprint(key), || {
                    frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                })
                .unwrap();
        }
        assert_eq!(cache.stats().frontend_misses, 3);
        assert_eq!(cache.stats().frontend_hits, 0);
    }

    #[test]
    fn failures_are_cached() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.frontend(Fingerprint(9), || {
                calls += 1;
                frontend(parse_program(SRC).unwrap(), "nonexistent", 2, &cfg)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_failures_are_not_memoized() {
        use argo_core::{Diagnostic, ErrorCode, Stage};
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let mut calls = 0;
        // First build fails with a transient (infrastructure) code…
        let r = cache.frontend(Fingerprint(13), || {
            calls += 1;
            Err(Diagnostic::new(
                Stage::Frontend,
                ErrorCode::DeadlineExceeded,
                "request deadline elapsed",
            ))
        });
        assert_eq!(r.unwrap_err().code, ErrorCode::DeadlineExceeded);
        // …so the retry rebuilds — and its success is memoized again.
        for _ in 0..2 {
            cache
                .frontend(Fingerprint(13), || {
                    calls += 1;
                    frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                })
                .unwrap();
        }
        assert_eq!(calls, 2, "one transient failure, one rebuild");
    }

    #[test]
    fn schedule_tier_builds_once_and_charges_build_time() {
        let cache = ArtifactCache::new();
        let calls = std::cell::Cell::new(0);
        let mut build = || {
            calls.set(calls.get() + 1);
            Schedule {
                assignment: vec![argo_adl::CoreId(0)],
                start: vec![0],
                finish: vec![9],
            }
        };
        let a = cache.schedule(Fingerprint(5), &mut build);
        let b = cache.schedule(Fingerprint(5), &mut build);
        assert_eq!(calls.get(), 1, "second lookup must not rebuild");
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.sched_hits, s.sched_misses), (1, 1));
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        // Distinct key → distinct build.
        cache.schedule(Fingerprint(6), &mut build);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = ArtifactCache::new();
        let built = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let cfg = ToolchainConfig::default();
                    cache
                        .frontend(Fingerprint(1), || {
                            built.fetch_add(1, Ordering::Relaxed);
                            frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.frontend_hits + s.frontend_misses, 8);
        assert_eq!(s.frontend_misses, 1);
    }

    #[test]
    fn store_backed_tiers_survive_a_cold_cache() {
        let dir = std::env::temp_dir().join(format!("argo-dse-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let cfg = ToolchainConfig::default();
        let key = Fingerprint(0xf00d);

        let mut warm = ArtifactCache::new();
        warm.set_store(Arc::clone(&store));
        warm.frontend(key, || {
            frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
        })
        .unwrap();
        let s = warm.stats();
        assert_eq!((s.frontend_store_hits, s.frontend_store_misses), (0, 1));

        // A cold cache (new process, same workspace) reads the artifact
        // back instead of rebuilding.
        let mut cold = ArtifactCache::new();
        cold.set_store(Arc::clone(&store));
        let built = std::cell::Cell::new(false);
        let artifact = cold
            .frontend(key, || {
                built.set(true);
                frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
            })
            .unwrap();
        assert!(!built.get(), "cold cache must not rebuild");
        let s = cold.stats();
        assert_eq!((s.frontend_store_hits, s.frontend_store_misses), (1, 0));
        assert!((s.combined_hit_rate() - 1.0).abs() < 1e-9);
        let rebuilt = frontend(parse_program(SRC).unwrap(), "main", 2, &cfg).unwrap();
        assert_eq!(artifact.fingerprint(), rebuilt.fingerprint());

        // Failures are never persisted: a failing key touches the store
        // for the read but writes nothing.
        let fail_key = Fingerprint(0xdead);
        let r = cold.frontend(fail_key, || {
            frontend(parse_program(SRC).unwrap(), "nonexistent", 2, &cfg)
        });
        assert!(r.is_err());
        let mut colder = ArtifactCache::new();
        colder.set_store(Arc::clone(&store));
        assert!(colder
            .frontend(fail_key, || frontend(
                parse_program(SRC).unwrap(),
                "nonexistent",
                2,
                &cfg
            ))
            .is_err());
        assert_eq!(colder.stats().frontend_store_misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_tier_round_trips_through_the_store() {
        let dir = std::env::temp_dir().join(format!("argo-dse-sched-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let schedule = Schedule {
            assignment: vec![argo_adl::CoreId(0), argo_adl::CoreId(1)],
            start: vec![0, 3],
            finish: vec![3, 9],
        };
        let mut warm = ArtifactCache::new();
        warm.set_store(Arc::clone(&store));
        let mut build = || schedule.clone();
        warm.schedule(Fingerprint(0xcafe), &mut build);

        let mut cold = ArtifactCache::new();
        cold.set_store(store);
        let mut must_not_run = || panic!("cold schedule lookup must hit the store");
        let back = cold.schedule(Fingerprint(0xcafe), &mut must_not_run);
        assert_eq!(back, schedule);
        let s = cold.stats();
        assert_eq!((s.sched_store_hits, s.sched_store_misses), (1, 0));
        assert_eq!(s.sched_build_ns, 0, "store reads charge no build time");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
