//! Content-hash keyed artifact cache for shared-prefix exploration points.
//!
//! The staged `argo_core` pipeline factors one compile into
//! `frontend → seed_costs → backend`. Only the backend depends on the
//! scheduler and the memory/interference configuration, so a sweep along
//! the scheduler axis (or any axis that leaves program and platform
//! alone) re-derives identical frontends and identical round-0 WCET
//! tables. This cache keys both artifact tiers by the driver's canonical
//! [`Fingerprint`]s — [`argo_core::Toolflow::frontend_fingerprint`] and
//! [`argo_core::Toolflow::seed_cost_fingerprint`] — so *any* two points
//! that would recompute the same artifact share one entry, even across
//! different `DesignSpace`s or repeated runs on one [`crate::Explorer`].
//! Fingerprints are API-owned content hashes (stable across processes),
//! which is what makes persisting this cache between runs a follow-on
//! rather than a redesign.
//!
//! Concurrency: each key maps to an `Arc<OnceLock>` slot; the map lock is
//! held only to find/create the slot, and the (expensive) build runs
//! under the slot's own once-initialization, so two workers never build
//! the same artifact twice and distinct keys never serialize each other.

use argo_core::{CostTable, Diagnostic, Fingerprint, FrontendArtifact, ScheduleCache};
use argo_sched::Schedule;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hit/miss counters for all three cache tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend artifacts served from cache.
    pub frontend_hits: u64,
    /// Frontend artifacts built.
    pub frontend_misses: u64,
    /// Seed-cost tables served from cache.
    pub cost_hits: u64,
    /// Seed-cost tables built.
    pub cost_misses: u64,
    /// Schedules served from cache (third tier, one lookup per backend
    /// feedback round).
    pub sched_hits: u64,
    /// Schedules built (third-tier misses).
    pub sched_misses: u64,
    /// Wall time spent building third-tier schedules, in nanoseconds.
    pub sched_build_ns: u64,
}

impl CacheStats {
    /// Total hits across all tiers.
    pub fn hits(&self) -> u64 {
        self.frontend_hits + self.cost_hits + self.sched_hits
    }

    /// Total misses across all tiers.
    pub fn misses(&self) -> u64 {
        self.frontend_misses + self.cost_misses + self.sched_misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

type Slot<T> = Arc<OnceLock<Result<Arc<T>, Diagnostic>>>;

/// Three-tier artifact cache: frontend artifacts, seed-cost tables and
/// mapping-stage schedules. The schedule tier implements
/// [`argo_core::ScheduleCache`], so binding the whole cache to a
/// session via [`argo_core::Toolflow::schedule_cache`] is enough to
/// share schedules across points whose feedback rounds re-derive
/// identical `(task graph, platform, scheduler)` inputs (ROADMAP item
/// (c)) — e.g. the MHP axis, or converged rounds within one backend.
#[derive(Default)]
pub struct ArtifactCache {
    frontend: Mutex<HashMap<Fingerprint, Slot<FrontendArtifact>>>,
    costs: Mutex<HashMap<Fingerprint, Slot<CostTable>>>,
    schedules: Mutex<HashMap<Fingerprint, Arc<OnceLock<Schedule>>>>,
    frontend_hits: AtomicU64,
    frontend_misses: AtomicU64,
    cost_hits: AtomicU64,
    cost_misses: AtomicU64,
    sched_hits: AtomicU64,
    sched_misses: AtomicU64,
    sched_build_ns: AtomicU64,
}

fn get_or_build<T>(
    map: &Mutex<HashMap<Fingerprint, Slot<T>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: Fingerprint,
    build: impl FnOnce() -> Result<T, Diagnostic>,
) -> Result<Arc<T>, Diagnostic> {
    let (slot, created) = {
        let mut map = map.lock().unwrap();
        match map.get(&key) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot: Slot<T> = Arc::new(OnceLock::new());
                map.insert(key, Arc::clone(&slot));
                (slot, true)
            }
        }
    };
    if created {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    slot.get_or_init(|| build().map(Arc::new)).clone()
}

impl ArtifactCache {
    /// Empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Returns the frontend artifact for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`]; failures are cached too,
    /// so a failing point does not rebuild per retry.
    pub fn frontend(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<FrontendArtifact, Diagnostic>,
    ) -> Result<Arc<FrontendArtifact>, Diagnostic> {
        get_or_build(
            &self.frontend,
            &self.frontend_hits,
            &self.frontend_misses,
            key,
            build,
        )
    }

    /// Returns the seed-cost table for `key`, building it at most once.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`Diagnostic`] (cached like a success).
    pub fn seed_costs(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<CostTable, Diagnostic>,
    ) -> Result<Arc<CostTable>, Diagnostic> {
        get_or_build(&self.costs, &self.cost_hits, &self.cost_misses, key, build)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            frontend_hits: self.frontend_hits.load(Ordering::Relaxed),
            frontend_misses: self.frontend_misses.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            cost_misses: self.cost_misses.load(Ordering::Relaxed),
            sched_hits: self.sched_hits.load(Ordering::Relaxed),
            sched_misses: self.sched_misses.load(Ordering::Relaxed),
            sched_build_ns: self.sched_build_ns.load(Ordering::Relaxed),
        }
    }
}

/// The third tier: schedules never fail, so slots hold plain values;
/// build wall time is charged to `sched_build_ns` for the per-tier
/// timing attribution in exploration reports.
impl ScheduleCache for ArtifactCache {
    fn schedule(&self, key: Fingerprint, build: &mut dyn FnMut() -> Schedule) -> Schedule {
        let (slot, created) = {
            let mut map = self.schedules.lock().unwrap();
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot: Arc<OnceLock<Schedule>> = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if created {
            self.sched_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sched_hits.fetch_add(1, Ordering::Relaxed);
        }
        slot.get_or_init(|| {
            let t0 = Instant::now();
            let schedule = build();
            self.sched_build_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            schedule
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_core::{frontend, ToolchainConfig};
    use argo_ir::parse::parse_program;

    const SRC: &str = "void main(real a[8], real b[8]) {\n\
                       int i;\n\
                       for (i = 0; i < 8; i = i + 1) { b[i] = a[i] * 2.0; }\n\
                       }";

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let build = || frontend(parse_program(SRC).unwrap(), "main", 2, &cfg);
        let a = cache.frontend(Fingerprint(7), build).unwrap();
        let b = cache.frontend(Fingerprint(7), build).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.frontend_hits, s.frontend_misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        for key in [1u64, 2, 3] {
            cache
                .frontend(Fingerprint(key), || {
                    frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                })
                .unwrap();
        }
        assert_eq!(cache.stats().frontend_misses, 3);
        assert_eq!(cache.stats().frontend_hits, 0);
    }

    #[test]
    fn failures_are_cached() {
        let cache = ArtifactCache::new();
        let cfg = ToolchainConfig::default();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.frontend(Fingerprint(9), || {
                calls += 1;
                frontend(parse_program(SRC).unwrap(), "nonexistent", 2, &cfg)
            });
            assert!(r.is_err());
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn schedule_tier_builds_once_and_charges_build_time() {
        let cache = ArtifactCache::new();
        let calls = std::cell::Cell::new(0);
        let mut build = || {
            calls.set(calls.get() + 1);
            Schedule {
                assignment: vec![argo_adl::CoreId(0)],
                start: vec![0],
                finish: vec![9],
            }
        };
        let a = cache.schedule(Fingerprint(5), &mut build);
        let b = cache.schedule(Fingerprint(5), &mut build);
        assert_eq!(calls.get(), 1, "second lookup must not rebuild");
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.sched_hits, s.sched_misses), (1, 1));
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        // Distinct key → distinct build.
        cache.schedule(Fingerprint(6), &mut build);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = ArtifactCache::new();
        let built = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let cfg = ToolchainConfig::default();
                    cache
                        .frontend(Fingerprint(1), || {
                            built.fetch_add(1, Ordering::Relaxed);
                            frontend(parse_program(SRC).unwrap(), "main", 2, &cfg)
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.frontend_hits + s.frontend_misses, 8);
        assert_eq!(s.frontend_misses, 1);
    }
}
