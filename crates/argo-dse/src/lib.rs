//! # argo-dse — parallel design-space exploration over the ARGO toolflow
//!
//! The ARGO paper (§ III) describes a *toolflow*, not a single compiler
//! invocation: the parallelization result depends on a lattice of design
//! decisions — which platform family (§ III-B: the Recore Xentium
//! many-core bus architecture vs the KIT tile NoC), how many cores, which
//! mapping/scheduling strategy, which predictability transformations and
//! task granularity (§ III-C), and how much scratchpad memory each core
//! owns (WCET-directed SPM allocation). Navigating that lattice under
//! WCET constraints *is* the design process the paper advocates; this
//! crate makes it a first-class, parallel, cached subsystem:
//!
//! * [`space::DesignSpace`] — a builder enumerating [`space::ExplorationPoint`]s
//!   as the cartesian product of the axes above (use case × platform ×
//!   core count × scheduler × granularity × chunking × SPM capacity);
//! * [`executor`] — a work-stealing thread pool (std threads + channels
//!   only) that compiles and analyzes points concurrently while keeping
//!   result order deterministic, so reports are byte-stable regardless of
//!   thread count;
//! * [`cache::ArtifactCache`] — a content-hash keyed artifact store
//!   exploiting the staged [`argo_core`] pipeline: points sharing
//!   `(program, transforms, core count)` reuse one
//!   [`argo_core::FrontendArtifact`] (HTG extraction), and points sharing
//!   `(program, platform)` additionally reuse the round-0 code-level WCET
//!   table ([`argo_core::seed_costs`]). Hit/miss counters are surfaced in
//!   every report;
//! * [`pareto`] — extraction of the Pareto front over the objective
//!   triple (core count, guaranteed parallel WCET bound, SPM bytes),
//!   i.e. the § II-E trade-off between resources and guaranteed timing;
//! * [`report`] — text, JSON and CSV emission of the full sweep plus the
//!   front and the cache statistics;
//! * the `argo-dse` CLI binary, e.g.
//!   `argo-dse explore --app egpws --cores 1..8 --schedulers list,bnb,anneal`.
//!
//! The experiment drivers in `argo-bench` (E4 scheduler ablation, E5 SPM
//! sweep, E7 granularity sweep) run on top of this engine.

pub mod cache;
pub mod executor;
pub mod explore;
pub mod pareto;
pub mod report;
pub mod space;

pub use cache::{ArtifactCache, CacheStats};
pub use explore::Explorer;
pub use pareto::pareto_front;
pub use report::{ExplorationReport, PointMetrics, ReportRow};
pub use space::{DesignSpace, ExplorationPoint, PlatformKind};
