//! # argo-dse — parallel design-space exploration over the ARGO toolflow
//!
//! The ARGO paper (§ III) describes a *toolflow*, not a single compiler
//! invocation: the parallelization result depends on a lattice of design
//! decisions — which platform family (§ III-B: the Recore Xentium
//! many-core bus architecture vs the KIT tile NoC), how many cores, which
//! mapping/scheduling strategy, which predictability transformations and
//! task granularity (§ III-C), and how much scratchpad memory each core
//! owns (WCET-directed SPM allocation). Navigating that lattice under
//! WCET constraints *is* the design process the paper advocates; this
//! crate makes it a first-class, parallel, cached, *steerable* subsystem:
//!
//! * [`space::DesignSpace`] — a builder enumerating [`space::ExplorationPoint`]s
//!   as the cartesian product of the axes above (use case × platform ×
//!   core count × scheduler × granularity × chunking × SPM capacity);
//! * [`executor`] — a work-stealing thread pool (std threads + channels
//!   only) that compiles and analyzes points concurrently while keeping
//!   result order deterministic, so reports are byte-stable regardless of
//!   thread count;
//! * [`cache::ArtifactCache`] — a three-tier content-hash keyed artifact
//!   store exploiting the staged [`argo_core`] pipeline: points sharing
//!   `(program, transforms, core count)` reuse one
//!   [`argo_core::FrontendArtifact`] (HTG extraction), points sharing
//!   `(program, platform)` additionally reuse the round-0 code-level WCET
//!   table ([`argo_core::seed_costs`]), and backend feedback rounds
//!   sharing `(task graph, platform, scheduler)` reuse the mapping-stage
//!   schedule through the [`argo_core::ScheduleCache`] hook. Hit/miss
//!   counters for every tier are surfaced in every report;
//! * [`Explorer::explore`] / [`Explorer::search`] — the exhaustive sweep
//!   and the budgeted steered sweep: `search` hands point selection to an
//!   `argo-search` [`argo_search::SearchStrategy`] (genetic, simulated
//!   annealing, successive halving) under an [`argo_search::Budget`],
//!   evaluating only a promising fraction of large lattices while
//!   recovering the exhaustive Pareto front; both are layered on the
//!   reusable per-point API [`Explorer::evaluate_point`];
//! * [`observe`] — a [`argo_core::StageObserver`] wired into every
//!   point's session, so reports attribute wall time per pipeline stage
//!   and per cache tier;
//! * [`pareto`] — re-exported from `argo-search` (dominance, fronts,
//!   NSGA-II ranks/crowding) over the objective triple (core count,
//!   guaranteed parallel WCET bound, SPM bytes), i.e. the § II-E
//!   trade-off between resources and guaranteed timing;
//! * [`report`] — text, JSON and CSV emission of the sweep, the front,
//!   per-stage timing, failure-class aggregation over structured
//!   [`argo_core::Diagnostic`]s, and the search metadata;
//! * the `argo-dse` CLI binary, e.g.
//!   `argo-dse explore --app egpws --cores 1..8 --schedulers list,bnb,anneal`
//!   or, steered,
//!   `argo-dse explore --app egpws --cores 1..8 --spm default,0,4096,16384 \
//!    --strategy ga --budget 64 --seed 7`.
//!
//! The experiment drivers in `argo-bench` (E4 scheduler ablation, E5 SPM
//! sweep, E7 granularity sweep, E9 search-vs-exhaustive front quality)
//! run on top of this engine.

pub mod cache;
pub mod executor;
pub mod explore;
pub mod observe;
pub mod report;
pub mod space;

pub use argo_search::pareto;

pub use cache::{ArtifactCache, CacheStats};
pub use explore::Explorer;
pub use observe::{StageTimings, TierTiming, TimingObserver};
pub use pareto::pareto_front;
pub use report::{ExplorationReport, PointMetrics, ReportRow, SearchInfo};
pub use space::{DesignSpace, ExplorationPoint, PlatformKind};
