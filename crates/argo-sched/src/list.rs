//! HEFT-style list scheduling.
//!
//! The workhorse heuristic: tasks are prioritised by *upward rank* (the
//! longest cost+comm path to a sink) and greedily placed on the core that
//! gives the earliest finish time, with insertion into idle gaps. This is
//! the "advanced heuristics" leg of the paper's § III-C strategy; for
//! homogeneous ARGO platforms the computation cost term of classical HEFT
//! degenerates to the task WCET.

use crate::{SchedCtx, Schedule, Scheduler, TaskGraph, TaskGraphIndex};
use argo_adl::CoreId;

/// HEFT-style list scheduler with gap insertion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScheduler {
    /// When `true`, tasks may be inserted into idle gaps between already
    /// scheduled tasks (classical HEFT insertion policy).
    pub insertion: bool,
}

impl ListScheduler {
    /// Creates the default (insertion-enabled) list scheduler.
    pub fn new() -> ListScheduler {
        ListScheduler { insertion: true }
    }

    /// Upward ranks: `rank(t) = cost(t) + max over succs (comm + rank)`.
    /// Communication is averaged over distinct core pairs, per HEFT.
    ///
    /// Builds the adjacency index on each call; callers that already
    /// hold one should use [`ListScheduler::upward_ranks_indexed`].
    pub fn upward_ranks(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Vec<f64> {
        self.upward_ranks_indexed(g, &g.index(), ctx)
    }

    /// [`ListScheduler::upward_ranks`] over a prebuilt index.
    pub fn upward_ranks_indexed(
        &self,
        g: &TaskGraph,
        idx: &TaskGraphIndex,
        ctx: &SchedCtx<'_>,
    ) -> Vec<f64> {
        let mut rank = vec![0f64; g.len()];
        let cores = ctx.cores();
        // Mean cross-core communication cost per byte-volume edge.
        let mean_comm = |bytes: u64| -> f64 {
            if cores < 2 {
                return 0.0;
            }
            // Representative pair (0, 1); homogeneous interconnects make
            // this exact for buses, a good proxy for meshes.
            ctx.comm_cost(CoreId(0), CoreId(1), bytes) as f64 * (cores as f64 - 1.0) / cores as f64
        };
        for &t in idx.topo_order().iter().rev() {
            let down = idx
                .succs(t)
                .iter()
                .map(|&(s, bytes)| mean_comm(bytes) + rank[s])
                .fold(0f64, f64::max);
            rank[t] = g.cost[t] as f64 + down;
        }
        rank
    }

    /// [`Scheduler::schedule`] over a prebuilt index.
    pub fn schedule_indexed(
        &self,
        g: &TaskGraph,
        idx: &TaskGraphIndex,
        ctx: &SchedCtx<'_>,
    ) -> Schedule {
        let n = g.len();
        let cores = ctx.cores();
        let rank = self.upward_ranks_indexed(g, idx, ctx);

        // Priority order: descending rank, ties by index (deterministic).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| rank[b].partial_cmp(&rank[a]).unwrap().then(a.cmp(&b)));

        let mut assignment = vec![CoreId(0); n];
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut scheduled = vec![false; n];
        // Per-core sorted list of (start, finish) busy intervals.
        let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cores];

        for &t in &order {
            // HEFT requires preds scheduled first; descending upward rank
            // guarantees it on DAGs.
            debug_assert!(idx.preds(t).iter().all(|&(p, _)| scheduled[p]));
            let mut best: Option<(u64, u64, usize)> = None; // (finish, start, core)
            for (c, busy_c) in busy.iter().enumerate() {
                let mut ready = 0u64;
                for &(p, bytes) in idx.preds(t) {
                    let comm = if assignment[p] == CoreId(c) {
                        0
                    } else {
                        ctx.comm_cost(assignment[p], CoreId(c), bytes)
                    };
                    ready = ready.max(finish[p] + comm);
                }
                let st = self.earliest_slot(busy_c, ready, g.cost[t]);
                let fin = st + g.cost[t];
                let cand = (fin, st, c);
                if best.is_none() || cand < best.unwrap() {
                    best = Some(cand);
                }
            }
            let (fin, st, c) = best.expect("at least one core");
            assignment[t] = CoreId(c);
            start[t] = st;
            finish[t] = fin;
            scheduled[t] = true;
            let pos = busy[c].partition_point(|&(s, _)| s < st);
            busy[c].insert(pos, (st, fin));
        }
        Schedule {
            assignment,
            start,
            finish,
        }
    }

    /// Earliest start ≥ `ready` where a task of length `len` fits on a
    /// core with the given busy intervals.
    fn earliest_slot(&self, busy: &[(u64, u64)], ready: u64, len: u64) -> u64 {
        if !self.insertion {
            let last = busy.last().map_or(0, |&(_, f)| f);
            return ready.max(last);
        }
        let mut cand = ready;
        for &(s, f) in busy {
            if cand + len <= s {
                return cand;
            }
            cand = cand.max(f);
        }
        cand
    }
}

impl Scheduler for ListScheduler {
    fn schedule(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule {
        self.schedule_indexed(g, &g.index(), ctx)
    }

    fn name(&self) -> &'static str {
        "list-heft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_graphs::{diamond, fork_join};
    use crate::{sequential_schedule, CommModel};
    use argo_adl::Platform;

    #[test]
    fn produces_valid_schedules() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx::new(&p);
        for g in [diamond(), fork_join(8, 100)] {
            let s = ListScheduler::new().schedule(&g, &ctx);
            s.validate(&g, &ctx).unwrap();
        }
    }

    #[test]
    fn parallelises_fork_join() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = fork_join(8, 1000);
        let s = ListScheduler::new().schedule(&g, &ctx);
        let seq = sequential_schedule(&g, &ctx);
        // 8 equal tasks on 4 cores: near-4x on the middle stage.
        assert!(s.makespan() <= seq.makespan() / 3);
        // Lower bound: critical path.
        assert!(s.makespan() >= g.critical_path());
    }

    #[test]
    fn keeps_chain_on_one_core_when_comm_is_costly() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx::new(&p);
        // A pure chain with heavy data: splitting would only add comm.
        let g = TaskGraph {
            cost: vec![100, 100, 100],
            edges: vec![(0, 1, 4096), (1, 2, 4096)],
            names: vec!["a".into(), "b".into(), "c".into()],
            htg_ids: vec![],
        };
        let s = ListScheduler::new().schedule(&g, &ctx);
        s.validate(&g, &ctx).unwrap();
        assert_eq!(s.assignment[0], s.assignment[1]);
        assert_eq!(s.assignment[1], s.assignment[2]);
        assert_eq!(s.makespan(), 300);
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let r = ListScheduler::new().upward_ranks(&g, &ctx);
        for &(f, t, _) in &g.edges {
            assert!(r[f] > r[t]);
        }
    }

    #[test]
    fn insertion_never_hurts() {
        let p = Platform::xentium_manycore(3);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = fork_join(7, 350);
        let with_ins = ListScheduler { insertion: true }.schedule(&g, &ctx);
        let without = ListScheduler { insertion: false }.schedule(&g, &ctx);
        with_ins.validate(&g, &ctx).unwrap();
        without.validate(&g, &ctx).unwrap();
        assert!(with_ins.makespan() <= without.makespan());
    }

    #[test]
    fn single_core_equals_sequential() {
        let p = Platform::xentium_manycore(1);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = ListScheduler::new().schedule(&g, &ctx);
        assert_eq!(s.makespan(), g.total_work());
    }

    #[test]
    fn empty_graph_is_fine() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = TaskGraph::default();
        let s = ListScheduler::new().schedule(&g, &ctx);
        assert_eq!(s.makespan(), 0);
    }
}
