//! Seeded random task-graph generation for the scheduler ablation (E4).
//!
//! Generates layered DAGs — the shape real HTGs take after loop chunking:
//! a few layers of parallel tasks with cross-layer dependences.

use crate::TaskGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random layered-DAG generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomGraphParams {
    /// Total number of tasks.
    pub tasks: usize,
    /// Number of layers (≥ 1); tasks are distributed round-robin.
    pub layers: usize,
    /// Probability of an edge between tasks in adjacent layers.
    pub edge_prob: f64,
    /// Task cost range (inclusive).
    pub cost_range: (u64, u64),
    /// Edge communication volume range in bytes (inclusive).
    pub bytes_range: (u64, u64),
}

impl Default for RandomGraphParams {
    fn default() -> RandomGraphParams {
        RandomGraphParams {
            tasks: 12,
            layers: 4,
            edge_prob: 0.4,
            cost_range: (50, 500),
            bytes_range: (8, 2048),
        }
    }
}

/// Generates a random layered DAG with the given seed.
///
/// Tasks in layer `k` may depend only on tasks in layer `k-1`, so the
/// result is acyclic by construction; every non-first-layer task gets at
/// least one predecessor (no spurious extra sources).
pub fn random_task_graph(seed: u64, params: &RandomGraphParams) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.tasks;
    let layers = params.layers.max(1);
    let layer_of: Vec<usize> = (0..n).map(|i| i * layers / n.max(1)).collect();
    let mut g = TaskGraph {
        cost: (0..n)
            .map(|_| rng.gen_range(params.cost_range.0..=params.cost_range.1))
            .collect(),
        edges: Vec::new(),
        names: (0..n).map(|i| format!("r{i}")).collect(),
        htg_ids: vec![],
    };
    for t in 0..n {
        if layer_of[t] == 0 {
            continue;
        }
        let preds: Vec<usize> = (0..n).filter(|&p| layer_of[p] == layer_of[t] - 1).collect();
        if preds.is_empty() {
            continue;
        }
        let mut got_one = false;
        for &p in &preds {
            if rng.gen_bool(params.edge_prob) {
                let bytes = rng.gen_range(params.bytes_range.0..=params.bytes_range.1);
                g.edges.push((p, t, bytes));
                got_one = true;
            }
        }
        if !got_one {
            let p = preds[rng.gen_range(0..preds.len())];
            let bytes = rng.gen_range(params.bytes_range.0..=params.bytes_range.1);
            g.edges.push((p, t, bytes));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_acyclic_and_sized() {
        for seed in 0..20 {
            let g = random_task_graph(seed, &RandomGraphParams::default());
            assert_eq!(g.len(), 12);
            // topo_order panics on cycles.
            assert_eq!(g.topo_order().len(), 12);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let p = RandomGraphParams::default();
        assert_eq!(random_task_graph(42, &p), random_task_graph(42, &p));
        assert_ne!(random_task_graph(42, &p), random_task_graph(43, &p));
    }

    #[test]
    fn costs_within_range() {
        let p = RandomGraphParams {
            cost_range: (10, 20),
            ..Default::default()
        };
        let g = random_task_graph(1, &p);
        assert!(g.cost.iter().all(|&c| (10..=20).contains(&c)));
    }

    #[test]
    fn non_source_tasks_have_predecessors() {
        let p = RandomGraphParams {
            tasks: 20,
            layers: 5,
            edge_prob: 0.05,
            ..Default::default()
        };
        let g = random_task_graph(9, &p);
        let layer_of: Vec<usize> = (0..20).map(|i| i * 5 / 20).collect();
        let preds = g.preds();
        for t in 0..20 {
            if layer_of[t] > 0 {
                assert!(
                    !preds[t].is_empty(),
                    "task {t} in layer {} has no preds",
                    layer_of[t]
                );
            }
        }
    }
}
