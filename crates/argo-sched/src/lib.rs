//! # argo-sched — WCET-aware static scheduling and mapping
//!
//! "Parallelizing a real-time application on a multi-core involves a static
//! scheduling and mapping stage. Such a problem is known to be a
//! challenging (NP-hard) combinatorial optimization problem … we envision
//! an approach using a combination of exact techniques and advanced
//! heuristics." (paper § III-C)
//!
//! This crate provides exactly that combination:
//!
//! * [`list::ListScheduler`] — a HEFT-style upward-rank list scheduler
//!   (polynomial, scales to thousands of tasks);
//! * [`bnb::BranchAndBound`] — an exact depth-first branch-and-bound
//!   solver with critical-path lower bounds (small graphs);
//! * [`anneal::SimulatedAnnealing`] — a metaheuristic that refines the
//!   list schedule.
//!
//! All schedulers consume a flattened [`TaskGraph`] (derived from the
//! top level of an HTG plus per-task WCETs) through its precomputed
//! [`TaskGraphIndex`] (CSR adjacency + cached topological order, built
//! once per graph instead of once per call) and produce a [`Schedule`]
//! whose makespan *is* the parallel WCET estimate before system-level
//! interference inflation. Because the schedule is fully static, "at any
//! point in time, all shared resource contenders are known" (§ II) — the
//! property the system-level WCET analysis exploits.

pub mod anneal;
pub mod bnb;
pub mod list;
pub mod random;

use argo_adl::{CoreId, Platform};
use argo_htg::{Htg, TaskId};
use std::collections::BTreeMap;
use std::fmt;

/// A flattened task DAG: the scheduling view of one HTG hierarchy level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    /// Per-task WCET in cycles (code-level, isolation).
    pub cost: Vec<u64>,
    /// Directed edges `(from, to, bytes)`. The graph must be acyclic.
    pub edges: Vec<(usize, usize, u64)>,
    /// Human-readable task names (same length as `cost`).
    pub names: Vec<String>,
    /// Original HTG task ids (empty when the graph is synthetic).
    pub htg_ids: Vec<TaskId>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Builds the scheduling view of the top level of an HTG.
    ///
    /// `costs` maps every top-level HTG task to its code-level WCET.
    /// Callers that re-cost the same HTG repeatedly (the backend's
    /// feedback loop) should build one [`TaskGraph::skeleton_from_htg`]
    /// and call [`TaskGraph::set_costs`] per round instead — the
    /// skeleton (names, ids, edges) never changes between rounds.
    ///
    /// # Panics
    ///
    /// Panics if a top-level task has no cost entry.
    pub fn from_htg(htg: &Htg, costs: &BTreeMap<TaskId, u64>) -> TaskGraph {
        let mut g = TaskGraph::skeleton_from_htg(htg);
        g.set_costs(costs);
        g
    }

    /// Builds the cost-free scheduling skeleton of an HTG's top level:
    /// names, HTG ids and edges, with every cost zero. The edge
    /// endpoints are mapped through a dense `TaskId`-indexed table
    /// rather than a per-call `BTreeMap`, and task names are cloned
    /// exactly once per skeleton.
    pub fn skeleton_from_htg(htg: &Htg) -> TaskGraph {
        // Dense TaskId → task-graph index map (TaskIds index htg.tasks).
        let mut idx_of = vec![u32::MAX; htg.tasks.len()];
        let mut g = TaskGraph::default();
        g.cost.resize(htg.top_level.len(), 0);
        g.names.reserve(htg.top_level.len());
        g.htg_ids.reserve(htg.top_level.len());
        for (i, &t) in htg.top_level.iter().enumerate() {
            idx_of[t.0] = i as u32;
            g.names.push(htg.task(t).name.clone());
            g.htg_ids.push(t);
        }
        for e in &htg.edges {
            let (f, t) = (idx_of[e.from.0], idx_of[e.to.0]);
            if f != u32::MAX && t != u32::MAX {
                g.edges.push((f as usize, t as usize, e.bytes));
            }
        }
        g
    }

    /// Overwrites the per-task costs from an HTG cost table, in place.
    ///
    /// # Panics
    ///
    /// Panics if a task has no cost entry.
    pub fn set_costs(&mut self, costs: &BTreeMap<TaskId, u64>) {
        for (slot, tid) in self.cost.iter_mut().zip(&self.htg_ids) {
            *slot = costs[tid];
        }
    }

    /// Predecessor list per task as `(pred, bytes)`.
    ///
    /// Convenience allocation; hot paths should use
    /// [`TaskGraph::index`] instead, which builds CSR adjacency once.
    pub fn preds(&self) -> Vec<Vec<(usize, u64)>> {
        let mut p = vec![Vec::new(); self.len()];
        for &(f, t, b) in &self.edges {
            p[t].push((f, b));
        }
        p
    }

    /// Successor list per task as `(succ, bytes)`.
    ///
    /// Convenience allocation; hot paths should use
    /// [`TaskGraph::index`].
    pub fn succs(&self) -> Vec<Vec<(usize, u64)>> {
        let mut s = vec![Vec::new(); self.len()];
        for &(f, t, b) in &self.edges {
            s[f].push((t, b));
        }
        s
    }

    /// A topological order of the tasks.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle.
    pub fn topo_order(&self) -> Vec<usize> {
        self.index().topo_order().to_vec()
    }

    /// Builds the precomputed adjacency index (CSR predecessor and
    /// successor lists, indegrees and a cached topological order) that
    /// the schedulers and the assignment evaluator consume.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle.
    pub fn index(&self) -> TaskGraphIndex {
        TaskGraphIndex::new(self)
    }

    /// Length of the critical path ignoring communication — a lower bound
    /// on any schedule's makespan.
    pub fn critical_path(&self) -> u64 {
        let idx = self.index();
        let mut dist = vec![0u64; self.len()];
        let mut best = 0;
        for &t in idx.topo_order() {
            let in_max = idx
                .preds(t)
                .iter()
                .map(|&(p, _)| dist[p])
                .max()
                .unwrap_or(0);
            dist[t] = in_max + self.cost[t];
            best = best.max(dist[t]);
        }
        best
    }

    /// Sum of all task costs — the single-core makespan.
    pub fn total_work(&self) -> u64 {
        self.cost.iter().sum()
    }
}

/// Precomputed adjacency index of a [`TaskGraph`]: CSR predecessor and
/// successor lists, initial indegrees and a cached topological order.
///
/// Every scheduler used to rebuild `preds()`/`succs()`/`topo_order()`
/// `Vec<Vec<_>>` adjacency on each call — the annealer did so once per
/// *proposal*. Building the index once per graph and sharing it across
/// the schedule evaluation kernel removes those allocations from the
/// inner loop entirely.
#[derive(Debug, Clone)]
pub struct TaskGraphIndex {
    pred_off: Vec<u32>,
    pred_adj: Vec<(usize, u64)>,
    succ_off: Vec<u32>,
    succ_adj: Vec<(usize, u64)>,
    indeg: Vec<u32>,
    topo: Vec<usize>,
}

impl TaskGraphIndex {
    /// Builds the index for `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle.
    pub fn new(g: &TaskGraph) -> TaskGraphIndex {
        let n = g.len();
        let mut pred_off = vec![0u32; n + 1];
        let mut succ_off = vec![0u32; n + 1];
        for &(f, t, _) in &g.edges {
            pred_off[t + 1] += 1;
            succ_off[f + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
            succ_off[i + 1] += succ_off[i];
        }
        let mut pred_adj = vec![(0usize, 0u64); g.edges.len()];
        let mut succ_adj = vec![(0usize, 0u64); g.edges.len()];
        let mut pred_cur: Vec<u32> = pred_off[..n].to_vec();
        let mut succ_cur: Vec<u32> = succ_off[..n].to_vec();
        for &(f, t, b) in &g.edges {
            pred_adj[pred_cur[t] as usize] = (f, b);
            pred_cur[t] += 1;
            succ_adj[succ_cur[f] as usize] = (t, b);
            succ_cur[f] += 1;
        }
        let indeg: Vec<u32> = (0..n).map(|i| pred_off[i + 1] - pred_off[i]).collect();
        // Cached topological order (identical pop discipline to the
        // historical `TaskGraph::topo_order`).
        let mut remaining = indeg.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(t) = queue.pop() {
            topo.push(t);
            let lo = succ_off[t] as usize;
            let hi = succ_off[t + 1] as usize;
            for &(s, _) in &succ_adj[lo..hi] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(topo.len(), n, "task graph contains a cycle");
        TaskGraphIndex {
            pred_off,
            pred_adj,
            succ_off,
            succ_adj,
            indeg,
            topo,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.indeg.len()
    }

    /// Returns `true` for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.indeg.is_empty()
    }

    /// Predecessors of `t` as `(pred, bytes)`.
    #[inline]
    pub fn preds(&self, t: usize) -> &[(usize, u64)] {
        &self.pred_adj[self.pred_off[t] as usize..self.pred_off[t + 1] as usize]
    }

    /// Successors of `t` as `(succ, bytes)`.
    #[inline]
    pub fn succs(&self, t: usize) -> &[(usize, u64)] {
        &self.succ_adj[self.succ_off[t] as usize..self.succ_off[t + 1] as usize]
    }

    /// Initial indegree of `t`.
    #[inline]
    pub fn indegree(&self, t: usize) -> usize {
        self.indeg[t] as usize
    }

    /// The cached topological order.
    #[inline]
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }
}

/// Communication-cost model used during scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// Communication is free (ideal shared memory; useful as an ablation).
    Free,
    /// Worst-case platform communication with all cores as contenders
    /// (conservative but sound before the system-level analysis refines
    /// contender sets). Use for abstract task graphs whose node costs do
    /// NOT already include the data movement.
    PlatformWorstCase,
    /// Only the synchronization handshake is charged (flag write + flag
    /// read through shared memory), independent of the data volume. This
    /// is the correct model when task WCETs were computed from real code
    /// with a memory map: the producer's writes and the consumer's reads
    /// of the shared buffer are already inside the task WCETs, and
    /// charging volume-proportional costs again would double-count.
    SignalOnly,
}

/// Scheduling context: the target platform plus cost-model knobs.
#[derive(Debug, Clone)]
pub struct SchedCtx<'a> {
    /// The target platform (core count, comm costs).
    pub platform: &'a Platform,
    /// Communication model.
    pub comm: CommModel,
}

impl<'a> SchedCtx<'a> {
    /// Creates a context with the conservative platform comm model.
    pub fn new(platform: &'a Platform) -> SchedCtx<'a> {
        SchedCtx {
            platform,
            comm: CommModel::PlatformWorstCase,
        }
    }

    /// Cost of moving `bytes` from `from` to `to`.
    pub fn comm_cost(&self, from: CoreId, to: CoreId, bytes: u64) -> u64 {
        match self.comm {
            CommModel::Free => 0,
            CommModel::PlatformWorstCase => {
                self.platform
                    .worst_case_comm(from, to, bytes, self.platform.core_count())
            }
            CommModel::SignalOnly => {
                let k = self.platform.core_count();
                self.platform.worst_case_shared_access(from, k)
                    + self.platform.worst_case_shared_access(to, k)
            }
        }
    }

    /// Number of cores available.
    pub fn cores(&self) -> usize {
        self.platform.core_count()
    }
}

/// A static schedule: mapping + start times.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Task → core.
    pub assignment: Vec<CoreId>,
    /// Task → start cycle.
    pub start: Vec<u64>,
    /// Task → finish cycle.
    pub finish: Vec<u64>,
}

impl Schedule {
    /// The schedule makespan (parallel WCET before interference
    /// inflation).
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Tasks assigned to `core`, ordered by start time.
    pub fn tasks_on(&self, core: CoreId) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.assignment.len())
            .filter(|&t| self.assignment[t] == core)
            .collect();
        v.sort_by_key(|&t| (self.start[t], t));
        v
    }

    /// Checks precedence and per-core exclusivity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Result<(), String> {
        if self.assignment.len() != g.len() {
            return Err("assignment length mismatch".into());
        }
        for t in 0..g.len() {
            if self.finish[t] != self.start[t] + g.cost[t] {
                return Err(format!("task {t}: finish != start + cost"));
            }
        }
        for &(f, t, bytes) in &g.edges {
            let comm = if self.assignment[f] == self.assignment[t] {
                0
            } else {
                ctx.comm_cost(self.assignment[f], self.assignment[t], bytes)
            };
            if self.start[t] < self.finish[f] + comm {
                return Err(format!(
                    "precedence violated: task {t} starts at {} but pred {f} \
                     finishes at {} (+{comm} comm)",
                    self.start[t], self.finish[f]
                ));
            }
        }
        for core in 0..ctx.cores() {
            let tasks = self.tasks_on(CoreId(core));
            for w in tasks.windows(2) {
                if self.start[w[1]] < self.finish[w[0]] {
                    return Err(format!("core {core}: tasks {} and {} overlap", w[0], w[1]));
                }
            }
        }
        Ok(())
    }

    /// Per-core utilisation: busy cycles / makespan.
    pub fn utilisation(&self, g: &TaskGraph, cores: usize) -> Vec<f64> {
        let ms = self.makespan().max(1) as f64;
        (0..cores)
            .map(|c| {
                let busy: u64 = (0..g.len())
                    .filter(|&t| self.assignment[t] == CoreId(c))
                    .map(|t| g.cost[t])
                    .sum();
                busy as f64 / ms
            })
            .collect()
    }
}

/// Evaluates a fixed task→core `assignment` into a full [`Schedule`] by
/// dispatching tasks in topological order, as early as possible.
///
/// Builds the adjacency index on each call; callers evaluating many
/// assignments of one graph (the annealer, the exact solver) should
/// build the index once and use [`evaluate_assignment_indexed`].
pub fn evaluate_assignment(g: &TaskGraph, ctx: &SchedCtx<'_>, assignment: &[CoreId]) -> Schedule {
    evaluate_assignment_indexed(g, &g.index(), ctx, assignment)
}

/// [`evaluate_assignment`] over a prebuilt [`TaskGraphIndex`] — the
/// shared, allocation-light evaluation kernel of the annealer and the
/// exact solver; deterministic (ready ties broken by task index).
pub fn evaluate_assignment_indexed(
    g: &TaskGraph,
    idx: &TaskGraphIndex,
    ctx: &SchedCtx<'_>,
    assignment: &[CoreId],
) -> Schedule {
    let mut start = vec![0u64; g.len()];
    let mut finish = vec![0u64; g.len()];
    let mut core_avail = vec![0u64; ctx.cores()];
    let mut indeg: Vec<u32> = (0..g.len()).map(|t| idx.indegree(t) as u32).collect();
    let mut ready: Vec<usize> = (0..g.len()).filter(|&i| indeg[i] == 0).collect();
    while !ready.is_empty() {
        ready.sort_unstable();
        let t = ready.remove(0);
        let core = assignment[t];
        let mut est = core_avail[core.0];
        for &(p, bytes) in idx.preds(t) {
            let comm = if assignment[p] == core {
                0
            } else {
                ctx.comm_cost(assignment[p], core, bytes)
            };
            est = est.max(finish[p] + comm);
        }
        start[t] = est;
        finish[t] = est + g.cost[t];
        core_avail[core.0] = finish[t];
        for &(s, _) in idx.succs(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    Schedule {
        assignment: assignment.to_vec(),
        start,
        finish,
    }
}

/// The common scheduler interface.
pub trait Scheduler {
    /// Computes a schedule of `g` on the context platform.
    fn schedule(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

/// The trivial single-core schedule (baseline for WCET speedup numbers).
pub fn sequential_schedule(g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule {
    evaluate_assignment(g, ctx, &vec![CoreId(0); g.len()])
}

/// Error type for scheduler configuration problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheduling error: {}", self.msg)
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
pub(crate) mod test_graphs {
    use super::TaskGraph;

    /// A diamond: 0 → {1, 2} → 3.
    pub fn diamond() -> TaskGraph {
        TaskGraph {
            cost: vec![10, 20, 20, 10],
            edges: vec![(0, 1, 64), (0, 2, 64), (1, 3, 64), (2, 3, 64)],
            names: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            htg_ids: vec![],
        }
    }

    /// A wide fork-join: 0 → {1..=w} → w+1, each middle task `cost`.
    pub fn fork_join(w: usize, cost: u64) -> TaskGraph {
        let n = w + 2;
        let mut g = TaskGraph {
            cost: vec![1; n],
            edges: Vec::new(),
            names: (0..n).map(|i| format!("t{i}")).collect(),
            htg_ids: vec![],
        };
        for i in 1..=w {
            g.cost[i] = cost;
            g.edges.push((0, i, 8));
            g.edges.push((i, w + 1, 8));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::test_graphs::diamond;
    use super::*;

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let order = g.topo_order();
        let pos: BTreeMap<usize, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for &(f, t, _) in &g.edges {
            assert!(pos[&f] < pos[&t]);
        }
    }

    #[test]
    fn critical_path_and_total_work() {
        let g = diamond();
        assert_eq!(g.critical_path(), 40);
        assert_eq!(g.total_work(), 60);
    }

    #[test]
    fn sequential_schedule_is_total_work() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = sequential_schedule(&g, &ctx);
        assert_eq!(s.makespan(), g.total_work());
        s.validate(&g, &ctx).unwrap();
    }

    #[test]
    fn evaluate_assignment_respects_comm() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let a = vec![CoreId(0), CoreId(0), CoreId(1), CoreId(0)];
        let s = evaluate_assignment(&g, &ctx, &a);
        s.validate(&g, &ctx).unwrap();
        let comm = ctx.comm_cost(CoreId(0), CoreId(1), 64);
        assert!(comm > 0);
        assert!(s.start[2] >= s.finish[0] + comm);
    }

    #[test]
    fn free_comm_model_is_cheaper() {
        let p = Platform::xentium_manycore(2);
        let ctx_wc = SchedCtx::new(&p);
        let ctx_free = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = diamond();
        let a = vec![CoreId(0), CoreId(0), CoreId(1), CoreId(0)];
        let s_wc = evaluate_assignment(&g, &ctx_wc, &a);
        let s_free = evaluate_assignment(&g, &ctx_free, &a);
        assert!(s_free.makespan() <= s_wc.makespan());
    }

    #[test]
    fn validate_catches_overlap() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let mut s = sequential_schedule(&g, &ctx);
        s.start[1] = s.start[0];
        s.finish[1] = s.start[1] + g.cost[1];
        assert!(s.validate(&g, &ctx).is_err());
    }

    #[test]
    fn utilisation_accounts_busy_time() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = sequential_schedule(&g, &ctx);
        let u = s.utilisation(&g, 2);
        assert!((u[0] - 1.0).abs() < 1e-9);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_graph_panics() {
        let g = TaskGraph {
            cost: vec![1, 1],
            edges: vec![(0, 1, 0), (1, 0, 0)],
            names: vec!["x".into(), "y".into()],
            htg_ids: vec![],
        };
        g.topo_order();
    }
}
