//! # argo-sched — WCET-aware static scheduling and mapping
//!
//! "Parallelizing a real-time application on a multi-core involves a static
//! scheduling and mapping stage. Such a problem is known to be a
//! challenging (NP-hard) combinatorial optimization problem … we envision
//! an approach using a combination of exact techniques and advanced
//! heuristics." (paper § III-C)
//!
//! This crate provides exactly that combination:
//!
//! * [`list::ListScheduler`] — a HEFT-style upward-rank list scheduler
//!   (polynomial, scales to thousands of tasks);
//! * [`bnb::BranchAndBound`] — an exact depth-first branch-and-bound
//!   solver with critical-path lower bounds (small graphs);
//! * [`anneal::SimulatedAnnealing`] — a metaheuristic that refines the
//!   list schedule.
//!
//! All schedulers consume a flattened [`TaskGraph`] (derived from the
//! top level of an HTG plus per-task WCETs) and produce a [`Schedule`]
//! whose makespan *is* the parallel WCET estimate before system-level
//! interference inflation. Because the schedule is fully static, "at any
//! point in time, all shared resource contenders are known" (§ II) — the
//! property the system-level WCET analysis exploits.

pub mod anneal;
pub mod bnb;
pub mod list;
pub mod random;

use argo_adl::{CoreId, Platform};
use argo_htg::{Htg, TaskId};
use std::collections::BTreeMap;
use std::fmt;

/// A flattened task DAG: the scheduling view of one HTG hierarchy level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    /// Per-task WCET in cycles (code-level, isolation).
    pub cost: Vec<u64>,
    /// Directed edges `(from, to, bytes)`. The graph must be acyclic.
    pub edges: Vec<(usize, usize, u64)>,
    /// Human-readable task names (same length as `cost`).
    pub names: Vec<String>,
    /// Original HTG task ids (empty when the graph is synthetic).
    pub htg_ids: Vec<TaskId>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Builds the scheduling view of the top level of an HTG.
    ///
    /// `costs` maps every top-level HTG task to its code-level WCET.
    ///
    /// # Panics
    ///
    /// Panics if a top-level task has no cost entry.
    pub fn from_htg(htg: &Htg, costs: &BTreeMap<TaskId, u64>) -> TaskGraph {
        let index: BTreeMap<TaskId, usize> = htg
            .top_level
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let mut g = TaskGraph::default();
        for &t in &htg.top_level {
            g.cost.push(costs[&t]);
            g.names.push(htg.task(t).name.clone());
            g.htg_ids.push(t);
        }
        for e in htg.top_level_edges() {
            g.edges.push((index[&e.from], index[&e.to], e.bytes));
        }
        g
    }

    /// Predecessor list per task as `(pred, bytes)`.
    pub fn preds(&self) -> Vec<Vec<(usize, u64)>> {
        let mut p = vec![Vec::new(); self.len()];
        for &(f, t, b) in &self.edges {
            p[t].push((f, b));
        }
        p
    }

    /// Successor list per task as `(succ, bytes)`.
    pub fn succs(&self) -> Vec<Vec<(usize, u64)>> {
        let mut s = vec![Vec::new(); self.len()];
        for &(f, t, b) in &self.edges {
            s[f].push((t, b));
        }
        s
    }

    /// A topological order of the tasks.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.len()];
        for &(_, t, _) in &self.edges {
            indeg[t] += 1;
        }
        let succs = self.succs();
        let mut queue: Vec<usize> = (0..self.len()).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(t) = queue.pop() {
            order.push(t);
            for &(s, _) in &succs[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(order.len(), self.len(), "task graph contains a cycle");
        order
    }

    /// Length of the critical path ignoring communication — a lower bound
    /// on any schedule's makespan.
    pub fn critical_path(&self) -> u64 {
        let order = self.topo_order();
        let preds = self.preds();
        let mut dist = vec![0u64; self.len()];
        let mut best = 0;
        for &t in &order {
            let in_max = preds[t].iter().map(|&(p, _)| dist[p]).max().unwrap_or(0);
            dist[t] = in_max + self.cost[t];
            best = best.max(dist[t]);
        }
        best
    }

    /// Sum of all task costs — the single-core makespan.
    pub fn total_work(&self) -> u64 {
        self.cost.iter().sum()
    }
}

/// Communication-cost model used during scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// Communication is free (ideal shared memory; useful as an ablation).
    Free,
    /// Worst-case platform communication with all cores as contenders
    /// (conservative but sound before the system-level analysis refines
    /// contender sets). Use for abstract task graphs whose node costs do
    /// NOT already include the data movement.
    PlatformWorstCase,
    /// Only the synchronization handshake is charged (flag write + flag
    /// read through shared memory), independent of the data volume. This
    /// is the correct model when task WCETs were computed from real code
    /// with a memory map: the producer's writes and the consumer's reads
    /// of the shared buffer are already inside the task WCETs, and
    /// charging volume-proportional costs again would double-count.
    SignalOnly,
}

/// Scheduling context: the target platform plus cost-model knobs.
#[derive(Debug, Clone)]
pub struct SchedCtx<'a> {
    /// The target platform (core count, comm costs).
    pub platform: &'a Platform,
    /// Communication model.
    pub comm: CommModel,
}

impl<'a> SchedCtx<'a> {
    /// Creates a context with the conservative platform comm model.
    pub fn new(platform: &'a Platform) -> SchedCtx<'a> {
        SchedCtx {
            platform,
            comm: CommModel::PlatformWorstCase,
        }
    }

    /// Cost of moving `bytes` from `from` to `to`.
    pub fn comm_cost(&self, from: CoreId, to: CoreId, bytes: u64) -> u64 {
        match self.comm {
            CommModel::Free => 0,
            CommModel::PlatformWorstCase => {
                self.platform
                    .worst_case_comm(from, to, bytes, self.platform.core_count())
            }
            CommModel::SignalOnly => {
                let k = self.platform.core_count();
                self.platform.worst_case_shared_access(from, k)
                    + self.platform.worst_case_shared_access(to, k)
            }
        }
    }

    /// Number of cores available.
    pub fn cores(&self) -> usize {
        self.platform.core_count()
    }
}

/// A static schedule: mapping + start times.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Task → core.
    pub assignment: Vec<CoreId>,
    /// Task → start cycle.
    pub start: Vec<u64>,
    /// Task → finish cycle.
    pub finish: Vec<u64>,
}

impl Schedule {
    /// The schedule makespan (parallel WCET before interference
    /// inflation).
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Tasks assigned to `core`, ordered by start time.
    pub fn tasks_on(&self, core: CoreId) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.assignment.len())
            .filter(|&t| self.assignment[t] == core)
            .collect();
        v.sort_by_key(|&t| (self.start[t], t));
        v
    }

    /// Checks precedence and per-core exclusivity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Result<(), String> {
        if self.assignment.len() != g.len() {
            return Err("assignment length mismatch".into());
        }
        for t in 0..g.len() {
            if self.finish[t] != self.start[t] + g.cost[t] {
                return Err(format!("task {t}: finish != start + cost"));
            }
        }
        for &(f, t, bytes) in &g.edges {
            let comm = if self.assignment[f] == self.assignment[t] {
                0
            } else {
                ctx.comm_cost(self.assignment[f], self.assignment[t], bytes)
            };
            if self.start[t] < self.finish[f] + comm {
                return Err(format!(
                    "precedence violated: task {t} starts at {} but pred {f} \
                     finishes at {} (+{comm} comm)",
                    self.start[t], self.finish[f]
                ));
            }
        }
        for core in 0..ctx.cores() {
            let tasks = self.tasks_on(CoreId(core));
            for w in tasks.windows(2) {
                if self.start[w[1]] < self.finish[w[0]] {
                    return Err(format!("core {core}: tasks {} and {} overlap", w[0], w[1]));
                }
            }
        }
        Ok(())
    }

    /// Per-core utilisation: busy cycles / makespan.
    pub fn utilisation(&self, g: &TaskGraph, cores: usize) -> Vec<f64> {
        let ms = self.makespan().max(1) as f64;
        (0..cores)
            .map(|c| {
                let busy: u64 = (0..g.len())
                    .filter(|&t| self.assignment[t] == CoreId(c))
                    .map(|t| g.cost[t])
                    .sum();
                busy as f64 / ms
            })
            .collect()
    }
}

/// Evaluates a fixed task→core `assignment` into a full [`Schedule`] by
/// dispatching tasks in topological order, as early as possible.
///
/// This is the shared evaluation kernel of the annealer and the exact
/// solver; it is deterministic (ready ties broken by task index).
pub fn evaluate_assignment(g: &TaskGraph, ctx: &SchedCtx<'_>, assignment: &[CoreId]) -> Schedule {
    let preds = g.preds();
    let succs = g.succs();
    let mut start = vec![0u64; g.len()];
    let mut finish = vec![0u64; g.len()];
    let mut core_avail = vec![0u64; ctx.cores()];
    let mut indeg = vec![0usize; g.len()];
    for &(_, t, _) in &g.edges {
        indeg[t] += 1;
    }
    let mut ready: Vec<usize> = (0..g.len()).filter(|&i| indeg[i] == 0).collect();
    while !ready.is_empty() {
        ready.sort_unstable();
        let t = ready.remove(0);
        let core = assignment[t];
        let mut est = core_avail[core.0];
        for &(p, bytes) in &preds[t] {
            let comm = if assignment[p] == core {
                0
            } else {
                ctx.comm_cost(assignment[p], core, bytes)
            };
            est = est.max(finish[p] + comm);
        }
        start[t] = est;
        finish[t] = est + g.cost[t];
        core_avail[core.0] = finish[t];
        for &(s, _) in &succs[t] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    Schedule {
        assignment: assignment.to_vec(),
        start,
        finish,
    }
}

/// The common scheduler interface.
pub trait Scheduler {
    /// Computes a schedule of `g` on the context platform.
    fn schedule(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule;

    /// Short identifier for reports.
    fn name(&self) -> &'static str;
}

/// The trivial single-core schedule (baseline for WCET speedup numbers).
pub fn sequential_schedule(g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule {
    evaluate_assignment(g, ctx, &vec![CoreId(0); g.len()])
}

/// Error type for scheduler configuration problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheduling error: {}", self.msg)
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
pub(crate) mod test_graphs {
    use super::TaskGraph;

    /// A diamond: 0 → {1, 2} → 3.
    pub fn diamond() -> TaskGraph {
        TaskGraph {
            cost: vec![10, 20, 20, 10],
            edges: vec![(0, 1, 64), (0, 2, 64), (1, 3, 64), (2, 3, 64)],
            names: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            htg_ids: vec![],
        }
    }

    /// A wide fork-join: 0 → {1..=w} → w+1, each middle task `cost`.
    pub fn fork_join(w: usize, cost: u64) -> TaskGraph {
        let n = w + 2;
        let mut g = TaskGraph {
            cost: vec![1; n],
            edges: Vec::new(),
            names: (0..n).map(|i| format!("t{i}")).collect(),
            htg_ids: vec![],
        };
        for i in 1..=w {
            g.cost[i] = cost;
            g.edges.push((0, i, 8));
            g.edges.push((i, w + 1, 8));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::test_graphs::diamond;
    use super::*;

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let order = g.topo_order();
        let pos: BTreeMap<usize, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for &(f, t, _) in &g.edges {
            assert!(pos[&f] < pos[&t]);
        }
    }

    #[test]
    fn critical_path_and_total_work() {
        let g = diamond();
        assert_eq!(g.critical_path(), 40);
        assert_eq!(g.total_work(), 60);
    }

    #[test]
    fn sequential_schedule_is_total_work() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = sequential_schedule(&g, &ctx);
        assert_eq!(s.makespan(), g.total_work());
        s.validate(&g, &ctx).unwrap();
    }

    #[test]
    fn evaluate_assignment_respects_comm() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let a = vec![CoreId(0), CoreId(0), CoreId(1), CoreId(0)];
        let s = evaluate_assignment(&g, &ctx, &a);
        s.validate(&g, &ctx).unwrap();
        let comm = ctx.comm_cost(CoreId(0), CoreId(1), 64);
        assert!(comm > 0);
        assert!(s.start[2] >= s.finish[0] + comm);
    }

    #[test]
    fn free_comm_model_is_cheaper() {
        let p = Platform::xentium_manycore(2);
        let ctx_wc = SchedCtx::new(&p);
        let ctx_free = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = diamond();
        let a = vec![CoreId(0), CoreId(0), CoreId(1), CoreId(0)];
        let s_wc = evaluate_assignment(&g, &ctx_wc, &a);
        let s_free = evaluate_assignment(&g, &ctx_free, &a);
        assert!(s_free.makespan() <= s_wc.makespan());
    }

    #[test]
    fn validate_catches_overlap() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let mut s = sequential_schedule(&g, &ctx);
        s.start[1] = s.start[0];
        s.finish[1] = s.start[1] + g.cost[1];
        assert!(s.validate(&g, &ctx).is_err());
    }

    #[test]
    fn utilisation_accounts_busy_time() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = sequential_schedule(&g, &ctx);
        let u = s.utilisation(&g, 2);
        assert!((u[0] - 1.0).abs() < 1e-9);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_graph_panics() {
        let g = TaskGraph {
            cost: vec![1, 1],
            edges: vec![(0, 1, 0), (1, 0, 0)],
            names: vec!["x".into(), "y".into()],
            htg_ids: vec![],
        };
        g.topo_order();
    }
}
