//! Simulated-annealing schedule refinement.
//!
//! Starts from the list schedule and explores the assignment space with
//! single-task core moves and task swaps, accepting uphill moves with the
//! Metropolis criterion. Deterministic for a fixed seed — important both
//! for reproducibility of the benches and for the tool-chain's iterative
//! optimisation loop (§ II-E), which re-runs the scheduler with inflated
//! costs and must not jitter.

use crate::list::ListScheduler;
use crate::{evaluate_assignment_indexed, SchedCtx, Schedule, Scheduler, TaskGraph};
use argo_adl::CoreId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// RNG seed (fixed ⇒ deterministic result).
    pub seed: u64,
    /// Number of proposal iterations.
    pub iterations: u32,
    /// Initial temperature as a fraction of the seed makespan.
    pub initial_temp_frac: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> SimulatedAnnealing {
        SimulatedAnnealing {
            seed: 0xA6_60,
            iterations: 4000,
            initial_temp_frac: 0.1,
        }
    }
}

impl SimulatedAnnealing {
    /// Creates an annealer with the default parameters.
    pub fn new() -> SimulatedAnnealing {
        SimulatedAnnealing::default()
    }

    /// Creates an annealer with an explicit seed.
    pub fn with_seed(seed: u64) -> SimulatedAnnealing {
        SimulatedAnnealing {
            seed,
            ..SimulatedAnnealing::default()
        }
    }
}

impl Scheduler for SimulatedAnnealing {
    fn schedule(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule {
        let n = g.len();
        // One adjacency index for the seed schedule and every proposal
        // evaluation — the annealer used to rebuild preds/succs/indeg
        // adjacency on all `iterations` proposals.
        let idx = g.index();
        if n == 0 {
            return evaluate_assignment_indexed(g, &idx, ctx, &[]);
        }
        let cores = ctx.cores();
        let seed_sched = ListScheduler::new().schedule_indexed(g, &idx, ctx);
        if cores < 2 {
            return seed_sched;
        }
        let mut current = seed_sched.assignment.clone();
        // Evaluate the seed assignment with the same (non-insertion)
        // kernel the proposals use, so acceptance is consistent.
        let mut current_ms = evaluate_assignment_indexed(g, &idx, ctx, &current).makespan();
        let mut best = current.clone();
        let mut best_ms = current_ms;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let t0 = (current_ms as f64 * self.initial_temp_frac).max(1.0);

        // Counted in locals, published once after the loop when the
        // metrics gate is on — the proposal loop stays free of shared
        // memory traffic either way.
        let mut accepts = 0u64;
        for it in 0..self.iterations {
            let temp = t0 * (1.0 - it as f64 / self.iterations as f64).max(1e-6);
            let mut cand = current.clone();
            if n >= 2 && rng.gen_bool(0.3) {
                // Swap the cores of two tasks.
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                cand.swap(a, b);
            } else {
                // Move one task to a random other core.
                let t = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..cores);
                if CoreId(c) == cand[t] {
                    c = (c + 1) % cores;
                }
                cand[t] = CoreId(c);
            }
            let ms = evaluate_assignment_indexed(g, &idx, ctx, &cand).makespan();
            let accept = ms <= current_ms || {
                let delta = (ms - current_ms) as f64;
                rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0))
            };
            if accept {
                accepts += 1;
                current = cand;
                current_ms = ms;
                if ms < best_ms {
                    best_ms = ms;
                    best = current.clone();
                }
            }
        }
        if argo_trace::metrics_on() {
            let m = argo_trace::metrics();
            m.counter("argo_sched_anneal_proposals_total")
                .add(self.iterations as u64);
            m.counter("argo_sched_anneal_accepts_total").add(accepts);
        }
        let annealed = evaluate_assignment_indexed(g, &idx, ctx, &best);
        // The list seed uses gap insertion, which the plain evaluation
        // kernel cannot reproduce; never return worse than the seed.
        if annealed.makespan() <= seed_sched.makespan() {
            annealed
        } else {
            seed_sched
        }
    }

    fn name(&self) -> &'static str {
        "sim-anneal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_graphs::{diamond, fork_join};
    use crate::CommModel;
    use argo_adl::Platform;

    #[test]
    fn produces_valid_schedules() {
        let p = Platform::xentium_manycore(3);
        let ctx = SchedCtx::new(&p);
        for g in [diamond(), fork_join(6, 120)] {
            let s = SimulatedAnnealing::new().schedule(&g, &ctx);
            s.validate(&g, &ctx).unwrap();
        }
    }

    #[test]
    fn never_worse_than_list_seed() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx::new(&p);
        for g in [diamond(), fork_join(9, 333), fork_join(5, 50)] {
            let sa = SimulatedAnnealing::new().schedule(&g, &ctx);
            let ls = ListScheduler::new().schedule(&g, &ctx);
            assert!(sa.makespan() <= ls.makespan());
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = Platform::xentium_manycore(3);
        let ctx = SchedCtx::new(&p);
        let g = fork_join(7, 99);
        let a = SimulatedAnnealing::with_seed(7).schedule(&g, &ctx);
        let b = SimulatedAnnealing::with_seed(7).schedule(&g, &ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn improves_a_deliberately_unbalanced_case() {
        // Independent tasks with unequal sizes: list scheduling by rank is
        // already decent, but SA must find a balanced split too.
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = TaskGraph {
            cost: vec![8, 7, 6, 5, 4, 3, 3],
            edges: vec![],
            names: (0..7).map(|i| format!("t{i}")).collect(),
            htg_ids: vec![],
        };
        let s = SimulatedAnnealing::new().schedule(&g, &ctx);
        // Total 36, optimum 18.
        assert_eq!(s.makespan(), 18);
    }

    #[test]
    fn single_core_returns_seed() {
        let p = Platform::xentium_manycore(1);
        let ctx = SchedCtx::new(&p);
        let g = diamond();
        let s = SimulatedAnnealing::new().schedule(&g, &ctx);
        assert_eq!(s.makespan(), g.total_work());
    }
}
