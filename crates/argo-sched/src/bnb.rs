//! Exact branch-and-bound scheduler.
//!
//! The "exact techniques" leg of § III-C. Depth-first search over
//! task→core assignments in a fixed topological order, pruned by a
//! critical-path/work lower bound and seeded with the list-scheduling
//! makespan as the incumbent. Exponential in the worst case — intended
//! for graphs of up to ~16 tasks (exactly the regime where the paper's
//! fine-grain decomposition needs exact answers to calibrate heuristics).

use crate::list::ListScheduler;
use crate::{
    evaluate_assignment_indexed, SchedCtx, Schedule, Scheduler, TaskGraph, TaskGraphIndex,
};
use argo_adl::CoreId;

/// Exact branch-and-bound scheduler with a node-expansion budget.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Maximum number of search-tree nodes to expand before falling back
    /// to the best incumbent (keeps worst-case runtime bounded).
    pub node_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> BranchAndBound {
        BranchAndBound {
            node_budget: 2_000_000,
        }
    }
}

impl BranchAndBound {
    /// Creates a solver with the default node budget.
    pub fn new() -> BranchAndBound {
        BranchAndBound::default()
    }

    /// Returns the number of nodes expanded on the last call — exposed via
    /// the return of [`BranchAndBound::schedule_counted`].
    pub fn schedule_counted(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> (Schedule, u64) {
        let n = g.len();
        let idx = g.index();
        if n == 0 {
            return (evaluate_assignment_indexed(g, &idx, ctx, &[]), 0);
        }
        // Incumbent from the list scheduler.
        let seed = ListScheduler::new().schedule_indexed(g, &idx, ctx);
        let mut best = seed.makespan();
        let mut best_assignment = seed.assignment.clone();

        let order = {
            // Deterministic topological order, prioritising long ranks to
            // tighten pruning early: Kahn with max-rank pops keeps
            // topological validity while visiting critical tasks first.
            let ranks = ListScheduler::new().upward_ranks_indexed(g, &idx, ctx);
            topo_by_rank(&idx, &ranks)
        };
        let cores = ctx.cores();

        // Remaining-work tail sums for the work-based lower bound.
        let mut tail_work = vec![0u64; n + 1];
        for i in (0..n).rev() {
            tail_work[i] = tail_work[i + 1] + g.cost[order[i]];
        }

        struct Frame {
            depth: usize,
            core: usize,
        }
        let mut assignment = vec![CoreId(0); n];
        let mut start = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut core_avail_stack: Vec<Vec<u64>> = vec![vec![0u64; cores]];
        let mut stack: Vec<Frame> = vec![Frame { depth: 0, core: 0 }];
        let mut expanded = 0u64;
        let mut pruned = 0u64;

        while let Some(frame) = stack.pop() {
            let Frame { depth, core } = frame;
            if core >= cores {
                core_avail_stack.truncate(depth + 1);
                continue;
            }
            // Queue the sibling branch.
            stack.push(Frame {
                depth,
                core: core + 1,
            });
            expanded += 1;
            if expanded > self.node_budget {
                break;
            }

            let t = order[depth];
            let avail = core_avail_stack[depth].clone();
            let mut est = avail[core];
            for &(p, bytes) in idx.preds(t) {
                let comm = if assignment[p] == CoreId(core) {
                    0
                } else {
                    ctx.comm_cost(assignment[p], CoreId(core), bytes)
                };
                est = est.max(finish[p] + comm);
            }
            let fin = est + g.cost[t];
            // Lower bound: the partial makespan, plus remaining work
            // spread perfectly over all cores.
            let partial_ms = finish[..0].iter().copied().max().unwrap_or(0);
            let _ = partial_ms;
            let cur_ms = fin.max(avail.iter().copied().max().unwrap_or(0));
            let remaining = tail_work[depth + 1];
            let lb = cur_ms.max(avail.iter().sum::<u64>().saturating_add(remaining) / cores as u64);
            if lb >= best {
                pruned += 1;
                continue; // prune
            }
            assignment[t] = CoreId(core);
            start[t] = est;
            finish[t] = fin;
            let mut new_avail = avail;
            new_avail[core] = fin;

            if depth + 1 == n {
                let ms = finish.iter().copied().max().unwrap_or(0);
                if ms < best {
                    best = ms;
                    best_assignment = assignment.clone();
                }
                continue;
            }
            core_avail_stack.truncate(depth + 1);
            core_avail_stack.push(new_avail);
            stack.push(Frame {
                depth: depth + 1,
                core: 0,
            });
        }

        // Locals published once per call, behind the metrics gate —
        // the search loop itself stays free of shared memory traffic.
        if argo_trace::metrics_on() {
            let m = argo_trace::metrics();
            m.counter("argo_sched_bnb_expanded_total").add(expanded);
            m.counter("argo_sched_bnb_pruned_total").add(pruned);
        }
        let result = evaluate_assignment_indexed(g, &idx, ctx, &best_assignment);
        // The list seed uses gap insertion, which plain re-evaluation of
        // the same assignment cannot always reproduce; never return a
        // schedule worse than the seed.
        if result.makespan() <= seed.makespan() {
            (result, expanded)
        } else {
            (seed, expanded)
        }
    }
}

/// Kahn's algorithm popping the highest-rank ready task first.
fn topo_by_rank(idx: &TaskGraphIndex, ranks: &[f64]) -> Vec<usize> {
    let mut indeg: Vec<usize> = (0..idx.len()).map(|t| idx.indegree(t)).collect();
    let mut ready: Vec<usize> = (0..idx.len()).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(idx.len());
    while !ready.is_empty() {
        ready.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap().then(a.cmp(&b)));
        let t = ready.remove(0);
        order.push(t);
        for &(s, _) in idx.succs(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

impl Scheduler for BranchAndBound {
    fn schedule(&self, g: &TaskGraph, ctx: &SchedCtx<'_>) -> Schedule {
        self.schedule_counted(g, ctx).0
    }

    fn name(&self) -> &'static str {
        "bnb-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_graphs::{diamond, fork_join};
    use crate::{sequential_schedule, CommModel};
    use argo_adl::Platform;

    #[test]
    fn produces_valid_schedules() {
        let p = Platform::xentium_manycore(3);
        let ctx = SchedCtx::new(&p);
        for g in [diamond(), fork_join(5, 77)] {
            let s = BranchAndBound::new().schedule(&g, &ctx);
            s.validate(&g, &ctx).unwrap();
        }
    }

    #[test]
    fn never_worse_than_list() {
        let p = Platform::xentium_manycore(3);
        let ctx = SchedCtx::new(&p);
        for g in [diamond(), fork_join(6, 200), fork_join(4, 13)] {
            let exact = BranchAndBound::new().schedule(&g, &ctx);
            let heur = ListScheduler::new().schedule(&g, &ctx);
            assert!(
                exact.makespan() <= heur.makespan(),
                "exact {} vs list {}",
                exact.makespan(),
                heur.makespan()
            );
        }
    }

    #[test]
    fn optimal_on_independent_tasks() {
        // 4 independent unit tasks on 2 cores: optimum = 2 per core.
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = TaskGraph {
            cost: vec![10, 10, 10, 10],
            edges: vec![],
            names: (0..4).map(|i| format!("t{i}")).collect(),
            htg_ids: vec![],
        };
        let s = BranchAndBound::new().schedule(&g, &ctx);
        assert_eq!(s.makespan(), 20);
    }

    #[test]
    fn optimal_on_asymmetric_loads() {
        // Costs 7,5,4,4,3 on 2 cores; total 23, optimum = 12 (7+5 | 4+4+3).
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = TaskGraph {
            cost: vec![7, 5, 4, 4, 3],
            edges: vec![],
            names: (0..5).map(|i| format!("t{i}")).collect(),
            htg_ids: vec![],
        };
        let s = BranchAndBound::new().schedule(&g, &ctx);
        assert_eq!(s.makespan(), 12);
    }

    #[test]
    fn respects_critical_path_bound() {
        let p = Platform::xentium_manycore(4);
        let ctx = SchedCtx {
            platform: &p,
            comm: CommModel::Free,
        };
        let g = diamond();
        let s = BranchAndBound::new().schedule(&g, &ctx);
        assert!(s.makespan() >= g.critical_path());
        assert!(s.makespan() <= sequential_schedule(&g, &ctx).makespan());
    }

    #[test]
    fn budget_exhaustion_still_returns_valid_schedule() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let g = fork_join(10, 50);
        let s = BranchAndBound { node_budget: 10 }.schedule(&g, &ctx);
        s.validate(&g, &ctx).unwrap();
    }

    #[test]
    fn empty_graph() {
        let p = Platform::xentium_manycore(2);
        let ctx = SchedCtx::new(&p);
        let (s, nodes) = BranchAndBound::new().schedule_counted(&TaskGraph::default(), &ctx);
        assert_eq!(s.makespan(), 0);
        assert_eq!(nodes, 0);
    }
}
