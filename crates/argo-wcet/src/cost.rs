//! The worst-case cost model: cycles per operation and per memory access.
//!
//! [`CostCtx`] mirrors, statically, exactly what the platform simulator
//! charges dynamically through the interpreter's `ExecHook`: the same
//! per-operation latencies (from the core's `CoreTiming`) and the same
//! access-cost rules (from the `MemoryMap` and platform interference
//! bounds). Keeping the two sides structurally identical is what makes the
//! `observed ≤ bound` soundness tests meaningful rather than vacuous.

use argo_adl::{CoreId, MemSpace, MemoryMap, Platform};
use argo_ir::ast::*;
use argo_ir::interp::OpClass;
use argo_ir::types::Scalar;
use argo_ir::validate::{symbol_table, SymbolTable};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Per-function symbol tables of a whole program — computed once per
/// program and shareable across every [`CostCtx`] built from it (the
/// backend's feedback loop builds one context per task per round).
pub type ProgramSymbols = BTreeMap<String, SymbolTable>;

/// Builds the symbol tables of every function in `program`.
pub fn program_symbols(program: &Program) -> ProgramSymbols {
    program
        .functions
        .iter()
        .map(|f| (f.name.clone(), symbol_table(f)))
        .collect()
}

/// Static cost-model context for one core.
#[derive(Debug, Clone)]
pub struct CostCtx<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// The target platform.
    pub platform: &'a Platform,
    /// The core the analysed code runs on.
    pub core: CoreId,
    /// Assumed number of concurrent shared-resource contenders
    /// (1 = isolated code-level analysis; the system-level analysis
    /// re-runs with refined counts).
    pub contenders: usize,
    /// Variable placements.
    pub mem: &'a MemoryMap,
    /// Per-variable access-cost overrides (used by the cache persistence
    /// refinement); takes precedence over the memory map.
    pub overrides: BTreeMap<String, u64>,
    /// Per-function symbol tables (owned, or borrowed from a shared
    /// [`ProgramSymbols`]).
    symbols: Cow<'a, ProgramSymbols>,
}

impl<'a> CostCtx<'a> {
    /// Creates a context, computing the symbol tables of every
    /// function. Sweep drivers constructing many contexts for one
    /// program should compute [`program_symbols`] once and use
    /// [`CostCtx::with_symbols`].
    pub fn new(
        program: &'a Program,
        platform: &'a Platform,
        core: CoreId,
        contenders: usize,
        mem: &'a MemoryMap,
    ) -> CostCtx<'a> {
        CostCtx {
            program,
            platform,
            core,
            contenders,
            mem,
            overrides: BTreeMap::new(),
            symbols: Cow::Owned(program_symbols(program)),
        }
    }

    /// Creates a context borrowing precomputed symbol tables (which
    /// must have been built from the same `program`).
    pub fn with_symbols(
        program: &'a Program,
        platform: &'a Platform,
        core: CoreId,
        contenders: usize,
        mem: &'a MemoryMap,
        symbols: &'a ProgramSymbols,
    ) -> CostCtx<'a> {
        CostCtx {
            program,
            platform,
            core,
            contenders,
            mem,
            overrides: BTreeMap::new(),
            symbols: Cow::Borrowed(symbols),
        }
    }

    /// The timing table of the analysed core.
    pub fn timing(&self) -> &argo_adl::CoreTiming {
        &self.platform.core(self.core).timing
    }

    /// Symbol table of `func`.
    ///
    /// # Panics
    ///
    /// Panics if `func` is unknown (programs are validated beforehand).
    pub fn symbols(&self, func: &str) -> &SymbolTable {
        &self.symbols[func]
    }

    /// Worst-case cost of one access to `var` from this core.
    pub fn access_cost(&self, var: &str) -> u64 {
        if let Some(&c) = self.overrides.get(var) {
            return c;
        }
        match self.mem.space_of(var) {
            MemSpace::Local => self.timing().local_access,
            MemSpace::Spm(owner) => {
                // Remote SPM access is not modelled: placement guarantees
                // owner == core; if not, fall back to shared cost (sound).
                if owner == self.core {
                    self.platform.core(owner).spm_latency
                } else {
                    self.shared_access_cost()
                }
            }
            MemSpace::Shared => self.shared_access_cost(),
        }
    }

    /// Worst-case shared-memory access cost under the assumed contenders,
    /// through the data cache when the core has one (conservatively a
    /// miss unless an override says otherwise).
    pub fn shared_access_cost(&self) -> u64 {
        let base = self
            .platform
            .worst_case_shared_access(self.core, self.contenders);
        match self.platform.core(self.core).cache {
            Some(cache) => cache.hit_cycles + cache.miss_penalty + base,
            None => base,
        }
    }

    /// Worst-case latency of an operation class.
    pub fn op_cost(&self, op: OpClass) -> u64 {
        let t = self.timing();
        match op {
            OpClass::IntAlu => t.int_alu,
            OpClass::IntMul => t.int_mul,
            OpClass::IntDiv => t.int_div,
            OpClass::FloatAdd => t.float_add,
            OpClass::FloatMul => t.float_mul,
            OpClass::FloatDiv => t.float_div,
            OpClass::Cmp => t.cmp,
            OpClass::Logic => t.logic,
            OpClass::Cast => t.cast,
            // Intrinsic cost is charged by name (`intrinsic_cost`).
            OpClass::Intrinsic => 0,
            OpClass::Branch => t.branch,
            OpClass::LoopOverhead => t.loop_overhead,
            OpClass::CallOverhead => t.call_overhead,
        }
    }

    /// Worst-case latency of a named intrinsic.
    pub fn intrinsic_cost(&self, name: &str) -> u64 {
        self.timing().intrinsic(name)
    }

    /// The scalar type of an expression inside `func` (programs are
    /// assumed validated, so this cannot fail meaningfully).
    pub fn expr_type(&self, e: &Expr, func: &str) -> Scalar {
        let syms = &self.symbols[func];
        expr_type_in(e, syms, self.program)
    }

    /// Worst-case cycles to evaluate expression `e` inside `func`,
    /// *excluding* user-function call bodies: the cost of each user call
    /// is `call_overhead + scalar-arg evaluation`, and the callee's body
    /// cost is reported separately through `calls_out` so the schema can
    /// add memoized function WCETs.
    pub fn expr_cost(&self, e: &Expr, func: &str, calls_out: &mut Vec<String>) -> u64 {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => 0,
            Expr::Var(n) => self.access_cost(n),
            Expr::ArrayElem { array, indices } => {
                let idx: u64 = indices
                    .iter()
                    .map(|i| self.expr_cost(i, func, calls_out) + self.op_cost(OpClass::IntAlu))
                    .sum();
                idx + self.access_cost(array)
            }
            Expr::Unary { op, arg } => {
                let a = self.expr_cost(arg, func, calls_out);
                let oc = match op {
                    UnOp::Neg => {
                        if self.expr_type(arg, func) == Scalar::Real {
                            OpClass::FloatAdd
                        } else {
                            OpClass::IntAlu
                        }
                    }
                    UnOp::Not => OpClass::Logic,
                };
                a + self.op_cost(oc)
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.expr_cost(lhs, func, calls_out);
                let r = self.expr_cost(rhs, func, calls_out);
                l + r + self.op_cost(self.binop_class(*op, lhs, rhs, func))
            }
            Expr::Call { name, args } => {
                if argo_ir::intrinsics::is_intrinsic(name) {
                    let a: u64 = args
                        .iter()
                        .map(|x| self.expr_cost(x, func, calls_out))
                        .sum();
                    return a + self.intrinsic_cost(name);
                }
                calls_out.push(name.clone());
                let callee = self.program.function(name);
                let mut total = self.op_cost(OpClass::CallOverhead);
                for (i, a) in args.iter().enumerate() {
                    let is_array_param = callee
                        .and_then(|f| f.params.get(i))
                        .is_some_and(|p| p.ty.is_array());
                    if !is_array_param {
                        total += self.expr_cost(a, func, calls_out);
                    }
                }
                total
            }
            Expr::Cast { arg, .. } => {
                self.expr_cost(arg, func, calls_out) + self.op_cost(OpClass::Cast)
            }
        }
    }

    fn binop_class(&self, op: BinOp, lhs: &Expr, rhs: &Expr, func: &str) -> OpClass {
        if op.is_logical() {
            return OpClass::Logic;
        }
        if op.is_comparison() {
            return OpClass::Cmp;
        }
        let real =
            self.expr_type(lhs, func) == Scalar::Real || self.expr_type(rhs, func) == Scalar::Real;
        match (op, real) {
            (BinOp::Add | BinOp::Sub, false) => OpClass::IntAlu,
            (BinOp::Add | BinOp::Sub, true) => OpClass::FloatAdd,
            (BinOp::Mul, false) => OpClass::IntMul,
            (BinOp::Mul, true) => OpClass::FloatMul,
            (BinOp::Div, false) | (BinOp::Rem, _) => OpClass::IntDiv,
            (BinOp::Div, true) => OpClass::FloatDiv,
            _ => OpClass::IntAlu,
        }
    }
}

fn expr_type_in(e: &Expr, syms: &SymbolTable, program: &Program) -> Scalar {
    match e {
        Expr::IntLit(_) => Scalar::Int,
        Expr::RealLit(_) => Scalar::Real,
        Expr::BoolLit(_) => Scalar::Bool,
        Expr::Var(n) => syms.get(n).map_or(Scalar::Int, |t| t.elem()),
        Expr::ArrayElem { array, .. } => syms.get(array).map_or(Scalar::Real, |t| t.elem()),
        Expr::Unary { op, arg } => match op {
            UnOp::Neg => expr_type_in(arg, syms, program),
            UnOp::Not => Scalar::Bool,
        },
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison() || op.is_logical() {
                Scalar::Bool
            } else {
                let l = expr_type_in(lhs, syms, program);
                let r = expr_type_in(rhs, syms, program);
                if l == Scalar::Real || r == Scalar::Real {
                    Scalar::Real
                } else {
                    Scalar::Int
                }
            }
        }
        Expr::Call { name, .. } => {
            if let Some(sig) = argo_ir::intrinsics::lookup(name) {
                sig.ret
            } else {
                program
                    .function(name)
                    .and_then(|f| f.ret)
                    .unwrap_or(Scalar::Int)
            }
        }
        Expr::Cast { to, .. } => *to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo_ir::parse::{parse_expr, parse_program};

    fn ctx_fixture() -> (Program, Platform, MemoryMap) {
        let p =
            parse_program("real f(real a[8], int i, real x) { return a[i] * x + 1.0; }").unwrap();
        let platform = Platform::xentium_manycore(2);
        let mem = MemoryMap::new();
        (p, platform, mem)
    }

    #[test]
    fn literals_cost_nothing() {
        let (p, platform, mem) = ctx_fixture();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let mut calls = Vec::new();
        assert_eq!(ctx.expr_cost(&Expr::int(5), "f", &mut calls), 0);
        assert_eq!(ctx.expr_cost(&Expr::real(2.5), "f", &mut calls), 0);
    }

    #[test]
    fn float_ops_cost_more_than_int_on_leon3() {
        let p = parse_program("real f(real x, int n) { return x; }").unwrap();
        let platform = Platform::kit_tile_noc(1, 2);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let mut calls = Vec::new();
        let fexpr = parse_expr("x + x").unwrap();
        let iexpr = parse_expr("n + n").unwrap();
        let fc = ctx.expr_cost(&fexpr, "f", &mut calls);
        let ic = ctx.expr_cost(&iexpr, "f", &mut calls);
        // Same access pattern, so difference is pure op cost.
        assert!(fc > ic);
    }

    #[test]
    fn array_access_includes_index_cost() {
        let (p, platform, mem) = ctx_fixture();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let mut calls = Vec::new();
        let simple = parse_expr("x").unwrap();
        let indexed = parse_expr("a[i]").unwrap();
        assert!(ctx.expr_cost(&indexed, "f", &mut calls) > ctx.expr_cost(&simple, "f", &mut calls));
    }

    #[test]
    fn shared_placement_is_expensive_and_contention_dependent() {
        let (p, platform, mut mem) = ctx_fixture();
        mem.insert(
            "a",
            argo_adl::Placement {
                space: MemSpace::Shared,
                base_addr: 0,
                size_bytes: 64,
            },
        );
        let ctx1 = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let ctx2 = CostCtx::new(&p, &platform, CoreId(0), 2, &mem);
        let e = parse_expr("a[0]").unwrap();
        let mut calls = Vec::new();
        let c1 = ctx1.expr_cost(&e, "f", &mut calls);
        let c2 = ctx2.expr_cost(&e, "f", &mut calls);
        assert!(c2 > c1, "more contenders ⇒ higher worst-case access");
        assert!(c1 > ctx1.timing().local_access);
    }

    #[test]
    fn overrides_take_precedence() {
        let (p, platform, mut mem) = ctx_fixture();
        mem.insert(
            "a",
            argo_adl::Placement {
                space: MemSpace::Shared,
                base_addr: 0,
                size_bytes: 64,
            },
        );
        let mut ctx = CostCtx::new(&p, &platform, CoreId(0), 4, &mem);
        ctx.overrides.insert("a".into(), 1);
        assert_eq!(ctx.access_cost("a"), 1);
    }

    #[test]
    fn intrinsics_charge_by_name() {
        let (p, platform, mem) = ctx_fixture();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let mut calls = Vec::new();
        let sqrt = parse_expr("sqrt(x)").unwrap();
        let fmax = parse_expr("fmax(x, x)").unwrap();
        let cs = ctx.expr_cost(&sqrt, "f", &mut calls);
        let cf = ctx.expr_cost(&fmax, "f", &mut calls);
        // sqrt costs 20 on xentium, fmax 2; both also read x.
        assert!(cs > cf);
        assert!(calls.is_empty(), "intrinsics are not user calls");
    }

    #[test]
    fn user_calls_are_reported() {
        let p = parse_program(
            "real g(real y) { return y + 1.0; } real f(real x) { return g(x) * 2.0; }",
        )
        .unwrap();
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let mut calls = Vec::new();
        let e = parse_expr("g(x) * 2.0").unwrap();
        let c = ctx.expr_cost(&e, "f", &mut calls);
        assert_eq!(calls, vec!["g".to_string()]);
        assert!(c >= ctx.op_cost(OpClass::CallOverhead));
    }

    #[test]
    fn cache_makes_shared_accesses_dearer() {
        let (p, platform, mut mem) = ctx_fixture();
        mem.insert(
            "a",
            argo_adl::Placement {
                space: MemSpace::Shared,
                base_addr: 0,
                size_bytes: 64,
            },
        );
        let cached = platform.clone().with_caches(argo_adl::CacheConfig::small());
        let ctx_plain = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let ctx_cache = CostCtx::new(&p, &cached, CoreId(0), 1, &mem);
        assert!(ctx_cache.shared_access_cost() > ctx_plain.shared_access_cost());
    }
}
