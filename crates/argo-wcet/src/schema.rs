//! Tree-based (timing-schema) code-level WCET.
//!
//! The structured mini-C AST admits the classical compositional WCET
//! rules: sequences add, conditionals take the conditional cost plus the
//! maximum branch, loops multiply the body by the loop bound. Every
//! charge mirrors one event the interpreter reports to its hook, so the
//! bound dominates any simulated execution by construction.
//!
//! Function WCETs are computed bottom-up over the (acyclic) call graph.

use crate::cache::{loop_fill_cost, loop_is_persistent};
use crate::cost::CostCtx;
use crate::value::LoopBounds;
use crate::WcetError;
use argo_adl::MemSpace;
use argo_ir::ast::*;
use argo_ir::interp::OpClass;
use argo_ir::StmtId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-function WCETs (body cost, excluding caller-side call overhead).
pub type FunctionWcets = BTreeMap<String, u64>;

/// Computes the WCET of every function, bottom-up over the call DAG.
///
/// # Errors
///
/// Returns [`WcetError`] if a loop bound is missing for some loop (run
/// [`crate::value::loop_bounds`] first or rely on literal bounds).
pub fn function_wcets(ctx: &CostCtx<'_>, bounds: &LoopBounds) -> Result<FunctionWcets, WcetError> {
    let mut done = FunctionWcets::new();
    // Iterate until all functions are resolved (call DAG: each pass
    // resolves at least the leaves).
    let mut remaining: Vec<&Function> = ctx.program.functions.iter().collect();
    let mut guard = 0;
    while !remaining.is_empty() {
        guard += 1;
        if guard > ctx.program.functions.len() + 1 {
            return Err(WcetError::new("call graph is not acyclic"));
        }
        let mut next = Vec::new();
        for f in remaining {
            match body_wcet(ctx, bounds, &done, f) {
                Ok(w) => {
                    done.insert(f.name.clone(), w);
                }
                Err(e) if e.msg.starts_with("unresolved-callee:") => next.push(f),
                Err(e) => return Err(e),
            }
        }
        remaining = next;
    }
    Ok(done)
}

fn body_wcet(
    ctx: &CostCtx<'_>,
    bounds: &LoopBounds,
    fn_wcets: &FunctionWcets,
    f: &Function,
) -> Result<u64, WcetError> {
    stmts_wcet(ctx, bounds, fn_wcets, &f.name, &f.body.stmts)
}

/// WCET of a statement sequence inside `func`.
///
/// # Errors
///
/// See [`function_wcets`].
pub fn stmts_wcet(
    ctx: &CostCtx<'_>,
    bounds: &LoopBounds,
    fn_wcets: &FunctionWcets,
    func: &str,
    stmts: &[Stmt],
) -> Result<u64, WcetError> {
    let mut total = 0u64;
    for s in stmts {
        total = total.saturating_add(stmt_wcet(ctx, bounds, fn_wcets, func, s)?);
    }
    Ok(total)
}

/// WCET of a single statement (with its whole subtree).
///
/// # Errors
///
/// See [`function_wcets`].
pub fn stmt_wcet(
    ctx: &CostCtx<'_>,
    bounds: &LoopBounds,
    fn_wcets: &FunctionWcets,
    func: &str,
    s: &Stmt,
) -> Result<u64, WcetError> {
    let mut calls = Vec::new();
    let base = match &s.kind {
        StmtKind::Decl { name, init, .. } => match init {
            Some(e) => ctx.expr_cost(e, func, &mut calls) + ctx.access_cost(name),
            None => 0,
        },
        StmtKind::Assign { target, value } => {
            let v = ctx.expr_cost(value, func, &mut calls);
            let t = match target {
                LValue::Var(n) => ctx.access_cost(n),
                LValue::ArrayElem { array, indices } => {
                    let idx: u64 = indices
                        .iter()
                        .map(|i| ctx.expr_cost(i, func, &mut calls) + ctx.op_cost(OpClass::IntAlu))
                        .sum();
                    idx + ctx.access_cost(array)
                }
            };
            v + t
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let c = ctx.expr_cost(cond, func, &mut calls);
            let t = stmts_wcet(ctx, bounds, fn_wcets, func, &then_blk.stmts)?;
            let e = stmts_wcet(ctx, bounds, fn_wcets, func, &else_blk.stmts)?;
            c + ctx.op_cost(OpClass::Branch) + t.max(e)
        }
        StmtKind::For {
            var, lo, hi, body, ..
        } => {
            let b = loop_bound_of(ctx, bounds, s)?;
            let head = ctx.expr_cost(lo, func, &mut calls) + ctx.expr_cost(hi, func, &mut calls);
            // Cache persistence refinement: if this loop's data fits the
            // core's cache for sure, body accesses to those arrays cost a
            // hit and the fill is charged once.
            let (body_ctx, fill) = cache_refined_ctx(ctx, func, s);
            let body_cost = stmts_wcet(&body_ctx, bounds, fn_wcets, func, &body.stmts)?;
            let per_iter = ctx.op_cost(OpClass::LoopOverhead) + ctx.access_cost(var) + body_cost;
            head + fill + b.saturating_mul(per_iter) + ctx.op_cost(OpClass::LoopOverhead)
        }
        StmtKind::While { cond, body, .. } => {
            let b = loop_bound_of(ctx, bounds, s)?;
            let c = ctx.expr_cost(cond, func, &mut calls) + ctx.op_cost(OpClass::Branch);
            let body_cost = stmts_wcet(ctx, bounds, fn_wcets, func, &body.stmts)?;
            (b + 1).saturating_mul(c) + b.saturating_mul(body_cost)
        }
        StmtKind::Call { name, args } => {
            let e = Expr::Call {
                name: name.clone(),
                args: args.clone(),
            };
            ctx.expr_cost(&e, func, &mut calls)
        }
        StmtKind::Return { value } => match value {
            Some(e) => ctx.expr_cost(e, func, &mut calls),
            None => 0,
        },
    };
    // Add memoized callee bodies for every user call in this statement's
    // own expressions.
    let mut total = base;
    for callee in calls {
        match fn_wcets.get(&callee) {
            Some(w) => total = total.saturating_add(*w),
            None => return Err(WcetError::new(format!("unresolved-callee:{callee}"))),
        }
    }
    Ok(total)
}

/// WCET of the statements with the given ids inside `func` — the per-task
/// WCET entry point used by the scheduler.
///
/// # Errors
///
/// Returns [`WcetError`] if an id does not exist in the function.
pub fn stmt_ids_wcet(
    ctx: &CostCtx<'_>,
    bounds: &LoopBounds,
    fn_wcets: &FunctionWcets,
    func: &str,
    ids: &[StmtId],
) -> Result<u64, WcetError> {
    let f = ctx
        .program
        .function(func)
        .ok_or_else(|| WcetError::new(format!("no function `{func}`")))?;
    let mut index: BTreeMap<StmtId, &Stmt> = BTreeMap::new();
    argo_ir::visit::walk_stmts(&f.body, &mut |s| {
        index.insert(s.id, s);
    });
    let mut total = 0u64;
    for id in ids {
        let s = index
            .get(id)
            .ok_or_else(|| WcetError::new(format!("no statement {id} in `{func}`")))?;
        total = total.saturating_add(stmt_wcet(ctx, bounds, fn_wcets, func, s)?);
    }
    Ok(total)
}

fn loop_bound_of(_ctx: &CostCtx<'_>, bounds: &LoopBounds, s: &Stmt) -> Result<u64, WcetError> {
    if let Some(b) = bounds.get(&s.id) {
        return Ok(*b);
    }
    match &s.kind {
        StmtKind::For { lo, hi, step, .. } => match (lo.as_int_const(), hi.as_int_const()) {
            (Some(l), Some(h)) if h > l => Ok(((h - l) as u64).div_ceil(*step as u64)),
            (Some(l), Some(h)) if h <= l => Ok(0),
            _ => Err(WcetError::new(format!(
                "no loop bound for {} (run the value analysis)",
                s.id
            ))),
        },
        StmtKind::While { bound, .. } => Ok(*bound),
        _ => Err(WcetError::new(format!("{} is not a loop", s.id))),
    }
}

/// Builds a body context with cache-persistence overrides for a `for`
/// loop, plus the one-time fill cost. Returns the unchanged context and
/// zero fill when the core has no cache, the loop's footprint is not
/// provably persistent, or the refinement is already active.
fn cache_refined_ctx<'a>(ctx: &CostCtx<'a>, func: &str, loop_stmt: &Stmt) -> (CostCtx<'a>, u64) {
    let Some(cache) = ctx.platform.core(ctx.core).cache else {
        return (ctx.clone(), 0);
    };
    // Collect shared arrays accessed in the loop subtree.
    let (reads, writes) = argo_ir::visit::stmt_rw(loop_stmt);
    let syms = ctx.symbols(func);
    let mut arrays: Vec<(String, u64, u64)> = Vec::new(); // (name, base, size)
    let mut seen = BTreeSet::new();
    for v in reads.union(&writes) {
        if !seen.insert(v.clone()) {
            continue;
        }
        if !syms.get(v).is_some_and(|t| t.is_array()) {
            continue;
        }
        if ctx.mem.space_of(v) != MemSpace::Shared {
            continue;
        }
        if ctx.overrides.contains_key(v) {
            // Already refined by an enclosing loop.
            return (ctx.clone(), 0);
        }
        let p = ctx.mem.placement(v);
        let (base, size) = p.map_or((0, 0), |p| (p.base_addr, p.size_bytes));
        arrays.push((v.clone(), base, size));
    }
    if arrays.is_empty() || !loop_is_persistent(&arrays, &cache) {
        return (ctx.clone(), 0);
    }
    let mut refined = ctx.clone();
    for (name, _, _) in &arrays {
        refined.overrides.insert(name.clone(), cache.hit_cycles);
    }
    let miss_cost = cache.hit_cycles
        + cache.miss_penalty
        + ctx
            .platform
            .worst_case_shared_access(ctx.core, ctx.contenders);
    let fill = loop_fill_cost(&arrays, &cache, miss_cost);
    (refined, fill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{loop_bounds, ValueCtx};
    use argo_adl::{CoreId, MemoryMap, Platform};
    use argo_ir::parse::parse_program;

    fn wcet_of(src: &str) -> u64 {
        let p = parse_program(src).unwrap();
        argo_ir::validate::validate(&p).unwrap();
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        function_wcets(&ctx, &bounds).unwrap()["main"]
    }

    #[test]
    fn straight_line_adds_costs() {
        // x = 1 (write 1) ; y = x + 2 (read 1 + alu 1 + write 1).
        let w = wcet_of("void main() { int x; int y; x = 1; y = x + 2; }");
        assert_eq!(w, 1 + (1 + 1 + 1));
    }

    #[test]
    fn conditional_takes_max_branch() {
        let w = wcet_of(
            "void main(bool c) { real x; \
             if (c) { x = sqrt(2.0); } else { x = 1.0; } }",
        );
        // cond read (1) + branch (2) + max(sqrt 20 + write 1, write 1).
        assert_eq!(w, 1 + 2 + 21);
    }

    #[test]
    fn loop_multiplies_body() {
        let w8 = wcet_of("void main() { int s; int i; s = 0; for (i=0;i<8;i=i+1) { s = s + 1; } }");
        let w16 =
            wcet_of("void main() { int s; int i; s = 0; for (i=0;i<16;i=i+1) { s = s + 1; } }");
        // Doubling the trip roughly doubles the loop part.
        assert!(w16 > w8);
        assert!(w16 < 2 * w8 + 10);
    }

    #[test]
    fn nested_loops_multiply() {
        let w = wcet_of(
            "void main(real a[4][4]) { int i; int j; \
             for (i=0;i<4;i=i+1) { for (j=0;j<4;j=j+1) { a[i][j] = 0.0; } } }",
        );
        let w_flat = wcet_of(
            "void main(real a[4][4]) { int i; int j; \
             for (i=0;i<4;i=i+1) { } for (j=0;j<4;j=j+1) { } }",
        );
        assert!(w > w_flat);
    }

    #[test]
    fn function_calls_add_callee_wcet() {
        let w_inline = wcet_of("void main() { real x; x = sqrt(4.0) + sqrt(9.0); }");
        let w_called = wcet_of(
            "real s2(real v) { return sqrt(v); } \
             void main() { real x; x = s2(4.0) + s2(9.0); }",
        );
        // Called version pays call overhead twice.
        assert!(w_called > w_inline);
    }

    #[test]
    fn while_uses_declared_bound() {
        let w = wcet_of(
            "void main() { int x; x = 0; #pragma bound 5\n \
             while (x < 3) { x = x + 1; } }",
        );
        // Bound 5 dominates actual 3 iterations — WCET uses 5.
        let w_smaller = wcet_of(
            "void main() { int x; x = 0; #pragma bound 3\n \
             while (x < 3) { x = x + 1; } }",
        );
        assert!(w > w_smaller);
    }

    #[test]
    fn missing_bound_is_an_error() {
        let p = parse_program(
            "void main(real a[64], int n) { int i; for (i=0;i<n;i=i+1) { a[i] = 0.0; } }",
        )
        .unwrap();
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let err = function_wcets(&ctx, &LoopBounds::new()).unwrap_err();
        assert!(err.msg.contains("no loop bound"));
    }

    #[test]
    fn leon3_wcet_exceeds_xentium_for_float_kernels() {
        let src = "void main(real a[32]) { int i; \
             for (i=0;i<32;i=i+1) { a[i] = a[i] * 2.0 + 1.0; } }";
        let p = parse_program(src).unwrap();
        let mem = MemoryMap::new();
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        let x = Platform::xentium_manycore(1);
        let l = Platform::kit_tile_noc(1, 1);
        let wx =
            function_wcets(&CostCtx::new(&p, &x, CoreId(0), 1, &mem), &bounds).unwrap()["main"];
        let wl =
            function_wcets(&CostCtx::new(&p, &l, CoreId(0), 1, &mem), &bounds).unwrap()["main"];
        assert!(wl > wx);
    }

    #[test]
    fn task_level_wcet_via_ids() {
        let src = "void main(real a[16], real b[16]) { int i; \
             for (i=0;i<16;i=i+1) { a[i] = 0.0; } \
             for (i=0;i<16;i=i+1) { b[i] = 1.0; } }";
        let p = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        let fw = function_wcets(&ctx, &bounds).unwrap();
        let f = p.function("main").unwrap();
        let loop_ids: Vec<StmtId> = f
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::For { .. }))
            .map(|s| s.id)
            .collect();
        let t1 = stmt_ids_wcet(&ctx, &bounds, &fw, "main", &loop_ids[..1]).unwrap();
        let t2 = stmt_ids_wcet(&ctx, &bounds, &fw, "main", &loop_ids[1..]).unwrap();
        let whole = fw["main"];
        // The two loop tasks together account for the whole body.
        assert!(t1 + t2 <= whole);
        assert!(t1 + t2 >= whole - 5, "decl statements cost ~0");
    }

    #[test]
    fn shared_contention_inflates_task_wcet() {
        let src = "void main(real a[16]) { int i; \
             for (i=0;i<16;i=i+1) { a[i] = a[i] + 1.0; } }";
        let p = parse_program(src).unwrap();
        let platform = Platform::xentium_manycore(4);
        let mut mem = MemoryMap::new();
        mem.insert(
            "a",
            argo_adl::Placement {
                space: argo_adl::MemSpace::Shared,
                base_addr: 0,
                size_bytes: 128,
            },
        );
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        let w1 = function_wcets(&CostCtx::new(&p, &platform, CoreId(0), 1, &mem), &bounds).unwrap()
            ["main"];
        let w4 = function_wcets(&CostCtx::new(&p, &platform, CoreId(0), 4, &mem), &bounds).unwrap()
            ["main"];
        assert!(w4 > w1, "contenders inflate WCET: {w1} vs {w4}");
    }
}
