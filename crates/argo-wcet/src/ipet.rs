//! IPET-style WCET on the control-flow graph.
//!
//! The classical implicit-path-enumeration formulation reduces, on the
//! reducible CFGs our structured language produces, to innermost-first
//! *loop collapsing*: compute the longest path through each loop body,
//! multiply by the loop bound, replace the loop by a super-node, and
//! finish with a DAG longest path from entry to exit.
//!
//! The engine is deliberately independent from the timing-schema engine
//! ([`crate::schema`]) so the two can cross-validate: on structured
//! programs they must agree exactly, and the test suite asserts it.

use crate::cost::CostCtx;
use crate::schema::FunctionWcets;
use crate::value::LoopBounds;
use crate::WcetError;
use argo_ir::ast::*;
use argo_ir::cfg::{Cfg, CfgItem, NodeId};
use argo_ir::interp::OpClass;
use argo_ir::StmtId;
use std::collections::{BTreeMap, HashSet};

/// Computes the WCET of `func` by CFG longest path with loop collapsing.
///
/// # Errors
///
/// Returns [`WcetError`] on missing loop bounds or unknown functions.
pub fn function_wcet_ipet(
    ctx: &CostCtx<'_>,
    bounds: &LoopBounds,
    fn_wcets: &FunctionWcets,
    func: &str,
) -> Result<u64, WcetError> {
    let f = ctx
        .program
        .function(func)
        .ok_or_else(|| WcetError::new(format!("no function `{func}`")))?;
    let cfg = Cfg::build(f);
    let stmts = index_stmts(f);

    // Per-item costs.
    let item_cost = |item: &CfgItem| -> Result<u64, WcetError> {
        let s = stmts
            .get(&item.stmt_id())
            .ok_or_else(|| WcetError::new("dangling stmt id in CFG"))?;
        let mut calls = Vec::new();
        let c = match item {
            CfgItem::Stmt(_) => {
                // Simple statements only (Decl/Assign/Call/Return).
                return crate::schema::stmt_wcet(ctx, bounds, fn_wcets, func, s);
            }
            CfgItem::Cond(_) => match &s.kind {
                StmtKind::If { cond, .. } => {
                    ctx.expr_cost(cond, func, &mut calls) + ctx.op_cost(OpClass::Branch)
                }
                _ => return Err(WcetError::new("Cond item on non-if")),
            },
            CfgItem::LoopTest(_) => match &s.kind {
                StmtKind::For { var, .. } => {
                    ctx.op_cost(OpClass::LoopOverhead) + ctx.access_cost(var)
                }
                StmtKind::While { cond, .. } => {
                    ctx.expr_cost(cond, func, &mut calls) + ctx.op_cost(OpClass::Branch)
                }
                _ => return Err(WcetError::new("LoopTest item on non-loop")),
            },
        };
        let mut total = c;
        for callee in calls {
            total += fn_wcets
                .get(&callee)
                .copied()
                .ok_or_else(|| WcetError::new(format!("unresolved callee `{callee}`")))?;
        }
        Ok(total)
    };

    let mut node_cost = vec![0u64; cfg.len()];
    for (n, b) in cfg.blocks.iter().enumerate() {
        let mut c = 0u64;
        for it in &b.items {
            c = c.saturating_add(item_cost(it)?);
        }
        node_cost[n] = c;
    }

    // Loop pre-costs (bound-expression evaluation, charged once).
    let mut pre_cost: BTreeMap<StmtId, u64> = BTreeMap::new();
    for l in &cfg.loops {
        if let Some(s) = stmts.get(&l.stmt) {
            if let StmtKind::For { lo, hi, .. } = &s.kind {
                let mut calls = Vec::new();
                let mut c =
                    ctx.expr_cost(lo, func, &mut calls) + ctx.expr_cost(hi, func, &mut calls);
                for callee in calls {
                    c += fn_wcets.get(&callee).copied().unwrap_or(0);
                }
                pre_cost.insert(l.stmt, c);
            }
        }
    }

    let back: HashSet<(NodeId, NodeId)> = cfg.back_edges().into_iter().collect();
    let rpo = cfg.reverse_postorder();

    // Collapse loops innermost-first (children are discovered after their
    // parents, so reverse discovery order visits children first).
    let mut collapsed: BTreeMap<NodeId, (u64, NodeId)> = BTreeMap::new(); // header -> (cost, exit)
    for li in (0..cfg.loops.len()).rev() {
        let l = &cfg.loops[li];
        let bound = bounds
            .get(&l.stmt)
            .copied()
            .or(l.bound_hint)
            .ok_or_else(|| WcetError::new(format!("no loop bound for {} (IPET)", l.stmt)))?;
        // Level membership: in l.nodes, and not strictly inside a child
        // (child headers allowed — they act as super-nodes).
        let child_headers: HashSet<NodeId> =
            l.children.iter().map(|&c| cfg.loops[c].header).collect();
        let strictly_inner: HashSet<NodeId> = l
            .children
            .iter()
            .flat_map(|&c| cfg.loops[c].nodes.iter().copied())
            .filter(|n| !child_headers.contains(n))
            .collect();
        let in_level = |n: NodeId| l.nodes.contains(&n) && !strictly_inner.contains(&n);

        let dist = level_distances(
            &cfg, &rpo, &node_cost, &collapsed, &back, l.header, &in_level,
        );
        // One iteration costs at most the longest path from the header to
        // the latch — or, when the body can leave the loop early (a
        // `return` jumping to the function exit), to any node with an
        // out-of-loop successor: any real iteration follows one of these
        // prefixes, so their maximum is a sound per-iteration bound.
        let mut iter_path = dist[l.latch];
        for &n in &l.nodes {
            if !in_level(n) || dist[n].is_none() {
                continue;
            }
            let escapes = cfg.blocks[n]
                .succs
                .iter()
                .any(|s| !l.nodes.contains(s) && *s != l.exit);
            if escapes {
                iter_path = match (iter_path, dist[n]) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (None, d) => d,
                    (d, None) => d,
                };
            }
        }
        let path = iter_path.ok_or_else(|| WcetError::new("loop latch unreachable from header"))?;
        // The failing (exiting) test: a `for` header only re-evaluates the
        // bound bookkeeping; a `while` header evaluates the condition.
        let exit_test = match stmts.get(&l.stmt).map(|s| &s.kind) {
            Some(StmtKind::For { .. }) => ctx.op_cost(OpClass::LoopOverhead),
            _ => node_cost[l.header],
        };
        let pre = pre_cost.get(&l.stmt).copied().unwrap_or(0);
        let total = pre
            .saturating_add(bound.saturating_mul(path))
            .saturating_add(exit_test);
        collapsed.insert(l.header, (total, l.exit));
    }

    // Top level: everything not strictly inside a top loop.
    let top_headers: HashSet<NodeId> = cfg.top_loops.iter().map(|&t| cfg.loops[t].header).collect();
    let strictly_inner: HashSet<NodeId> = cfg
        .top_loops
        .iter()
        .flat_map(|&t| cfg.loops[t].nodes.iter().copied())
        .filter(|n| !top_headers.contains(n))
        .collect();
    let in_level = |n: NodeId| !strictly_inner.contains(&n);
    let dist = level_distances(
        &cfg, &rpo, &node_cost, &collapsed, &back, cfg.entry, &in_level,
    );
    dist[cfg.exit].ok_or_else(|| WcetError::new("exit unreachable from entry"))
}

/// Longest-path distances from `from` over level nodes, treating collapsed
/// loop headers as super-nodes that jump to their exit. `dist[n]` includes
/// the cost of `n` itself (or its collapsed total).
fn level_distances(
    cfg: &Cfg,
    rpo: &[NodeId],
    node_cost: &[u64],
    collapsed: &BTreeMap<NodeId, (u64, NodeId)>,
    back: &HashSet<(NodeId, NodeId)>,
    from: NodeId,
    in_level: &dyn Fn(NodeId) -> bool,
) -> Vec<Option<u64>> {
    // `from` is never a collapsed header at its own level.
    let mut dist: Vec<Option<u64>> = vec![None; cfg.len()];
    let enter_cost = |n: NodeId| -> u64 { collapsed.get(&n).map_or(node_cost[n], |&(c, _)| c) };
    dist[from] = Some(node_cost[from]);
    for &n in rpo {
        if !in_level(n) && n != from {
            continue;
        }
        let Some(d) = dist[n] else { continue };
        // Successors: collapsed headers jump straight to their loop exit.
        let succs: Vec<NodeId> = if n != from && collapsed.contains_key(&n) {
            vec![collapsed[&n].1]
        } else {
            cfg.blocks[n]
                .succs
                .iter()
                .copied()
                .filter(|&s| !back.contains(&(n, s)))
                .collect()
        };
        for s in succs {
            if !in_level(s) {
                continue;
            }
            let cand = d.saturating_add(enter_cost(s));
            if dist[s].is_none_or(|cur| cand > cur) {
                dist[s] = Some(cand);
            }
        }
    }
    dist
}

fn index_stmts(f: &Function) -> BTreeMap<StmtId, &Stmt> {
    let mut m = BTreeMap::new();
    argo_ir::visit::walk_stmts(&f.body, &mut |s| {
        m.insert(s.id, s);
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::function_wcets;
    use crate::value::{loop_bounds, ValueCtx};
    use argo_adl::{CoreId, MemoryMap, Platform};
    use argo_ir::parse::parse_program;

    fn both_wcets(src: &str) -> (u64, u64) {
        let p = parse_program(src).unwrap();
        argo_ir::validate::validate(&p).unwrap();
        let platform = Platform::xentium_manycore(1);
        let mem = MemoryMap::new();
        let ctx = CostCtx::new(&p, &platform, CoreId(0), 1, &mem);
        let bounds = loop_bounds(&p, "main", &ValueCtx::default()).unwrap();
        let fw = function_wcets(&ctx, &bounds).unwrap();
        let schema = fw["main"];
        let ipet = function_wcet_ipet(&ctx, &bounds, &fw, "main").unwrap();
        (schema, ipet)
    }

    #[test]
    fn agrees_with_schema_on_straight_line() {
        let (s, i) = both_wcets("void main() { int x; int y; x = 1; y = x * 3; }");
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_with_schema_on_conditionals() {
        let (s, i) = both_wcets(
            "void main(bool c, real v) { real x; \
             if (c) { x = sqrt(v); } else { x = v + 1.0; } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_with_schema_on_loops() {
        let (s, i) = both_wcets(
            "void main(real a[32]) { int k; \
             for (k=0;k<32;k=k+1) { a[k] = a[k] * 2.0; } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_with_schema_on_nested_loops_with_branches() {
        let (s, i) = both_wcets(
            "void main(real m[8][8], bool flag) { int r; int c; \
             for (r=0;r<8;r=r+1) { \
               for (c=0;c<8;c=c+1) { \
                 if (flag) { m[r][c] = 1.0; } else { m[r][c] = m[r][c] + 0.5; } \
               } \
             } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_with_schema_on_sequential_loops() {
        let (s, i) = both_wcets(
            "void main(real a[16], real b[16]) { int k; \
             for (k=0;k<16;k=k+1) { a[k] = 0.0; } \
             for (k=0;k<16;k=k+1) { b[k] = 1.0; } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_with_schema_on_calls() {
        let (s, i) = both_wcets(
            "real square(real x) { return x * x; } \
             void main(real a[8]) { int k; \
             for (k=0;k<8;k=k+1) { a[k] = square(a[k]); } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn agrees_on_while_loops() {
        let (s, i) = both_wcets(
            "void main() { int x; x = 0; #pragma bound 9\n \
             while (x < 9) { x = x + 1; } }",
        );
        assert_eq!(s, i);
    }

    #[test]
    fn early_return_is_bounded_by_full_path() {
        // IPET may be ≥ the true longest path but never below schema's
        // (which assumes no early exit). They agree here because both
        // take the full-loop path.
        let (s, i) = both_wcets(
            "int main(real a[16]) { int k; \
             for (k=0;k<16;k=k+1) { if (a[k] > 0.5) { return k; } } \
             return -1; }",
        );
        assert_eq!(s, i);
    }
}
