//! Static data-cache classification (persistence analysis).
//!
//! Supports the § III-B ablation: "scratchpad memories are preferred to
//! caches because they enable more precise WCET estimation". The analysis
//! answers one question per loop: *can every memory block accessed inside
//! the loop stay resident once loaded?* If yes (the loop is *persistent*),
//! each block misses at most once per loop entry and all further accesses
//! are hits; otherwise every access must be assumed a miss.
//!
//! Residency is checked exactly against the set-associative geometry:
//! concrete base addresses from the memory map are folded into cache sets
//! and the per-set occupancy must not exceed the associativity — total
//! footprint alone is NOT sufficient for LRU set-associative caches
//! (conflict misses), and using it would be unsound.

use argo_adl::CacheConfig;

/// Returns `true` if all blocks of the given `(name, base, size)` regions
/// fit simultaneously: every cache set holds at most `ways` of them.
pub fn loop_is_persistent(arrays: &[(String, u64, u64)], cfg: &CacheConfig) -> bool {
    let mut per_set = vec![0usize; cfg.sets];
    for (_, base, size) in arrays {
        if *size == 0 {
            continue;
        }
        let first = cfg.block_of(*base);
        let last = cfg.block_of(base + size - 1);
        for b in first..=last {
            let s = cfg.set_of(b);
            per_set[s] += 1;
            if per_set[s] > cfg.ways {
                return false;
            }
        }
    }
    true
}

/// Total number of distinct blocks covered by the regions.
pub fn block_count(arrays: &[(String, u64, u64)], cfg: &CacheConfig) -> u64 {
    arrays
        .iter()
        .filter(|(_, _, size)| *size > 0)
        .map(|(_, base, size)| cfg.block_of(base + size - 1) - cfg.block_of(*base) + 1)
        .sum()
}

/// One-time fill cost for a persistent loop: every block misses once.
pub fn loop_fill_cost(arrays: &[(String, u64, u64)], cfg: &CacheConfig, miss_cost: u64) -> u64 {
    block_count(arrays, cfg) * miss_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(specs: &[(u64, u64)]) -> Vec<(String, u64, u64)> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(base, size))| (format!("a{i}"), base, size))
            .collect()
    }

    #[test]
    fn small_footprint_is_persistent() {
        let cfg = CacheConfig::small(); // 1 KiB, 16 sets, 2-way, 32 B lines
        let r = regions(&[(0, 256), (512, 256)]);
        assert!(loop_is_persistent(&r, &cfg));
        assert_eq!(block_count(&r, &cfg), 16);
    }

    #[test]
    fn capacity_overflow_is_not_persistent() {
        let cfg = CacheConfig::small();
        let r = regions(&[(0, 2048)]); // 2 KiB > 1 KiB capacity
        assert!(!loop_is_persistent(&r, &cfg));
    }

    #[test]
    fn conflict_misses_detected_despite_small_footprint() {
        // Three 32-byte blocks mapping to the same set of a 2-way cache:
        // total footprint 96 B ≪ capacity, but not persistent.
        let cfg = CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 32,
            hit_cycles: 1,
            miss_penalty: 10,
        };
        let set_stride = cfg.sets as u64 * cfg.line_bytes; // 512
        let r = regions(&[(0, 32), (set_stride, 32), (2 * set_stride, 32)]);
        assert!(!loop_is_persistent(&r, &cfg));
        // Two of them are fine.
        let r2 = regions(&[(0, 32), (set_stride, 32)]);
        assert!(loop_is_persistent(&r2, &cfg));
    }

    #[test]
    fn fill_cost_scales_with_blocks() {
        let cfg = CacheConfig::small();
        let r = regions(&[(0, 320)]); // 10 blocks
        assert_eq!(loop_fill_cost(&r, &cfg, 13), 130);
    }

    #[test]
    fn unaligned_regions_count_straddled_blocks() {
        let cfg = CacheConfig::small();
        // 40 bytes starting at 16: straddles blocks 0 and 1.
        let r = regions(&[(16, 40)]);
        assert_eq!(block_count(&r, &cfg), 2);
    }

    #[test]
    fn empty_regions_are_trivially_persistent() {
        let cfg = CacheConfig::small();
        assert!(loop_is_persistent(&[], &cfg));
        assert_eq!(block_count(&[], &cfg), 0);
    }
}
